//! `gals-mcd` — a reproduction of *Dynamically Trading Frequency for
//! Complexity in a GALS Microprocessor* (Dropsho, Semeraro, Albonesi,
//! Magklis, Scott — MICRO-37, 2004) as a Rust workspace.
//!
//! This facade crate re-exports the public API of the workspace members:
//!
//! * [`timing`] — CACTI/Palacharla-style frequency models (Figures 2–4).
//! * [`clock`] — jittered domain clocks, PLL relock, synchronization.
//! * [`isa`] / [`workloads`] — the synthetic dynamic-instruction substrate
//!   standing in for MediaBench / Olden / SPEC2000 (Tables 6–8).
//! * [`cache`] — the Accounting Cache and the Table 4 cost model.
//! * [`predictor`] — the hybrid gshare/local/meta predictor.
//! * [`control`] — the policy-pluggable adaptation subsystem (the §3
//!   controllers and their alternatives behind a trait boundary).
//! * [`core`] — the four-domain adaptive MCD pipeline and the fully
//!   synchronous baseline machine.
//! * [`explore`] — the §4 design-space sweeps with persistent caching.
//!
//! # Quickstart
//!
//! ```
//! use gals_mcd::prelude::*;
//!
//! let spec = suite::by_name("gcc").expect("gcc is in the suite");
//! let sync = Simulator::new(MachineConfig::best_synchronous())
//!     .run(&mut spec.stream(), 20_000);
//! let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
//!     .run(&mut spec.stream(), 20_000);
//! println!(
//!     "gcc: phase-adaptive is {:+.1}% vs best synchronous",
//!     (sync.runtime_ns() / phase.runtime_ns() - 1.0) * 100.0
//! );
//! ```

#![warn(missing_docs)]

pub use gals_cache as cache;
pub use gals_clock as clock;
pub use gals_common as common;
pub use gals_control as control;
pub use gals_core as core;
pub use gals_explore as explore;
pub use gals_isa as isa;
pub use gals_predictor as predictor;
pub use gals_timing as timing;
pub use gals_workloads as workloads;

/// The most commonly used items, for `use gals_mcd::prelude::*`.
pub mod prelude {
    pub use gals_common::{Femtos, Hertz};
    pub use gals_core::{
        ControlPolicy, Dl2Config, ICacheConfig, IqSize, MachineConfig, McdConfig, SimResult,
        Simulator, SyncConfig, SyncICacheOption, TimingModel,
    };
    pub use gals_explore::Explorer;
    pub use gals_isa::InstructionStream;
    pub use gals_workloads::{suite, BenchmarkSpec};
}
