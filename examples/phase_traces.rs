//! Phase adaptation in action: reproduce the Figure 7 reconfiguration
//! traces and render them as ASCII timelines.
//!
//! ```text
//! cargo run --release --example phase_traces
//! ```
//!
//! apsi's data working set swings periodically, so the D/L2 controller
//! walks up and down the configuration ladder (Figure 7a); art cycles
//! through ILP regimes, so the integer issue queue steps through its four
//! sizes (Figure 7b).

use gals_mcd::core::{ReconfigKind, Simulator as Sim};
use gals_mcd::prelude::*;

fn main() {
    let window: u64 = std::env::args()
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or(200_000);

    trace(
        "apsi",
        window,
        "D/L2 configuration",
        &[
            "32k1W/256k1W",
            "64k2W/512k2W",
            "128k4W/1024k4W",
            "256k8W/2048k8W",
        ],
        |k| match k {
            ReconfigKind::Dl2(c) => Some(c.index()),
            _ => None,
        },
    );

    trace(
        "art",
        window,
        "integer issue-queue size",
        &["16", "32", "48", "64"],
        |k| match k {
            ReconfigKind::IqInt(s) => Some(s.index()),
            _ => None,
        },
    );
}

fn trace(
    name: &str,
    window: u64,
    what: &str,
    levels: &[&str],
    select: impl Fn(ReconfigKind) -> Option<usize>,
) {
    let spec = suite::by_name(name).expect("benchmark in suite");
    let result = Sim::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);

    println!("\n== {name}: {what} over {window} committed instructions");
    // Build a step trace: (committed, level).
    let mut steps = vec![(0u64, 0usize)];
    for ev in &result.reconfigs {
        if let Some(level) = select(ev.kind) {
            steps.push((ev.at_committed, level));
        }
    }
    steps.push((window, steps.last().unwrap().1));

    // Render one row per level, Figure 7 style.
    const COLS: usize = 100;
    for (li, label) in levels.iter().enumerate().rev() {
        let mut row = vec![' '; COLS];
        for pair in steps.windows(2) {
            let (from, level) = pair[0];
            let (to, _) = pair[1];
            if level == li {
                let a = (from as usize * COLS / window as usize).min(COLS - 1);
                let b = (to as usize * COLS / window as usize).clamp(a + 1, COLS);
                for cell in &mut row[a..b] {
                    *cell = '#';
                }
            }
        }
        println!("{label:>16} |{}|", row.iter().collect::<String>());
    }
    println!(
        "{:>16}  0 {:>width$}",
        "committed:",
        window,
        width = COLS - 2
    );
    println!(
        "  ({} reconfigurations total, final frequencies: fe {} / int {} / fp {} / ls {})",
        result.reconfigs.len(),
        result.final_freqs[0],
        result.final_freqs[1],
        result.final_freqs[2],
        result.final_freqs[3],
    );
}
