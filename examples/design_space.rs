//! Mini design-space exploration for one benchmark: sweep all 256
//! adaptive-MCD configurations and show how structure choices trade
//! frequency for complexity.
//!
//! ```text
//! cargo run --release --example design_space [benchmark] [window]
//! ```

use gals_mcd::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "em3d".to_string());
    let window: u64 = args.next().and_then(|w| w.parse().ok()).unwrap_or(20_000);
    let spec = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(1);
    });

    println!("sweeping 256 adaptive-MCD configurations on {name} ({window} insts each)...");
    let mut results: Vec<(McdConfig, f64)> = McdConfig::enumerate()
        .into_iter()
        .map(|cfg| {
            let r = Simulator::new(MachineConfig::program_adaptive(cfg))
                .run(&mut spec.stream(), window);
            (cfg, r.runtime_ns())
        })
        .collect();
    results.sort_by(|a, b| a.1.total_cmp(&b.1));

    let sync = Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), window);

    println!("\nbest 8 configurations:");
    for (cfg, ns) in results.iter().take(8) {
        println!(
            "  {:34} {:>12.1} ns   {:+.1}% vs best sync",
            cfg.key(),
            ns,
            (sync.runtime_ns() / ns - 1.0) * 100.0
        );
    }
    println!("\nworst 3:");
    for (cfg, ns) in results.iter().rev().take(3) {
        println!("  {:34} {:>12.1} ns", cfg.key(), ns);
    }

    let (best, best_ns) = results[0];
    println!(
        "\n{name}: Program-Adaptive would choose {} ({:+.1}% over the best synchronous machine)",
        best.key(),
        (sync.runtime_ns() / best_ns - 1.0) * 100.0
    );
}
