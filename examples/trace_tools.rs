//! Record a synthetic benchmark to a binary trace and replay it through
//! the simulator — demonstrating the trace interchange path for users
//! who want to bring their own traces.
//!
//! ```text
//! cargo run --release --example trace_tools [benchmark] [n]
//! ```

use gals_mcd::prelude::*;
use gals_mcd::workloads::{record, TraceReplay};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gzip".to_string());
    let n: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let spec = suite::by_name(&name).ok_or("unknown benchmark")?;

    // Record n instructions to an in-memory trace (write a File to keep
    // it on disk instead).
    let mut buf = Vec::new();
    record(&mut spec.stream(), n, &mut buf)?;
    println!(
        "recorded {n} instructions of {name}: {} bytes ({:.2} B/inst)",
        buf.len(),
        buf.len() as f64 / n as f64
    );

    // Replay through the simulator and compare with the generator path.
    let mut replay = TraceReplay::load(format!("{name}-trace"), buf.as_slice())?;
    let from_trace = Simulator::new(MachineConfig::best_synchronous()).run(&mut replay, n);
    let from_generator =
        Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), n);
    println!(
        "replay from trace: {:.1} ns   from generator: {:.1} ns",
        from_trace.runtime_ns(),
        from_generator.runtime_ns()
    );
    assert_eq!(
        from_trace.runtime, from_generator.runtime,
        "trace replay must be timing-identical to the generator"
    );
    println!("identical timing — replay is exact");
    Ok(())
}
