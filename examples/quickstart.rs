//! Quickstart: compare the three machine styles on one benchmark.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [window]
//! ```
//!
//! Runs the best-overall fully synchronous baseline, the adaptive MCD at
//! its base (smallest/fastest) configuration, and the Phase-Adaptive MCD
//! with its on-line controllers, and reports Figure 6-style improvements.

use gals_mcd::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gcc".to_string());
    let window: u64 = args.next().and_then(|w| w.parse().ok()).unwrap_or(80_000);

    let Some(spec) = suite::by_name(&name) else {
        eprintln!("unknown benchmark '{name}'; available:");
        for n in suite::names() {
            eprintln!("  {n}");
        }
        std::process::exit(1);
    };

    println!("benchmark: {name} ({} instructions)\n", window);

    let sync = Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), window);
    println!(
        "fully synchronous (64k1W I$, 32k/256k D/L2, 16/16 IQ @ {}):",
        sync.final_freqs[0]
    );
    report(&sync, None);

    let prog = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);
    println!("\nadaptive MCD, base configuration (everything smallest/fastest):");
    report(&prog, Some(&sync));

    let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);
    println!("\nPhase-Adaptive MCD (on-line controllers):");
    report(&phase, Some(&sync));
    if !phase.reconfigs.is_empty() {
        println!("  reconfigurations:");
        for ev in phase.reconfigs.iter().take(12) {
            println!("    @{:>7} committed: {:?}", ev.at_committed, ev.kind);
        }
        if phase.reconfigs.len() > 12 {
            println!("    ... {} more", phase.reconfigs.len() - 12);
        }
    }
}

fn report(r: &SimResult, baseline: Option<&SimResult>) {
    println!(
        "  runtime {:>12.1} ns   {:.2} BIPS   branch-mr {:.1}%   I$ miss {:.1}%   D$ miss {:.1}%   L2 miss {:.1}%",
        r.runtime_ns(),
        r.bips(),
        r.mispredict_rate() * 100.0,
        r.icache.miss_rate() * 100.0,
        r.l1d.miss_rate() * 100.0,
        r.l2.miss_rate() * 100.0,
    );
    if let Some(b) = baseline {
        println!(
            "  improvement over synchronous: {:+.1}%",
            (b.runtime_ns() / r.runtime_ns() - 1.0) * 100.0
        );
    }
}
