//! Build a custom synthetic workload with the `BenchmarkSpec` builder and
//! watch the Phase-Adaptive controllers react to its phases.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The workload alternates between a cache-friendly, high-ILP phase and a
//! pointer-chasing phase with a large working set — the D/L2 controller
//! should upsize for the second phase and downsize again for the first.

use gals_mcd::prelude::*;
use gals_mcd::workloads::{AccessPattern, DataSegment, IlpModel, PhaseOverrides, Suite};

fn main() {
    let seg = |bytes: u64, weight: f64, pattern| DataSegment {
        bytes,
        weight,
        pattern,
    };

    let spec = BenchmarkSpec::builder("custom-phased", Suite::SpecFp)
        .mix(gals_mcd::workloads::OpMix::floating_point())
        .code(12 * 1024, 48, 0.01)
        .branches(0.08, 0.6, 12)
        .ilp(10, 12, 0.1)
        .flat_frac(0.25)
        .segments(vec![seg(16 * 1024, 1.0, AccessPattern::Random)])
        // Phase 1: small, L1-resident working set.
        .phase(
            40_000,
            PhaseOverrides {
                segments: Some(vec![seg(16 * 1024, 1.0, AccessPattern::Random)]),
                ..PhaseOverrides::default()
            },
        )
        // Phase 2: 700 KB of pointer chasing with a serial chain profile.
        .phase(
            40_000,
            PhaseOverrides {
                segments: Some(vec![
                    seg(700 * 1024, 4.0, AccessPattern::PointerChase),
                    seg(16 * 1024, 1.0, AccessPattern::Random),
                ]),
                ilp: Some(IlpModel {
                    chains_int: 6,
                    chains_fp: 4,
                    serial_frac: 0.3,
                    flat_frac: 0.1,
                }),
                ..PhaseOverrides::default()
            },
        )
        .build()
        .expect("valid spec");

    let window = 240_000;
    let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);
    let sync = Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), window);

    println!("custom workload, {window} instructions:");
    println!(
        "  best synchronous: {:>12.1} ns   phase-adaptive MCD: {:>12.1} ns   ({:+.1}%)",
        sync.runtime_ns(),
        phase.runtime_ns(),
        (sync.runtime_ns() / phase.runtime_ns() - 1.0) * 100.0
    );
    println!("  controller decisions:");
    for ev in &phase.reconfigs {
        println!("    @{:>7} committed: {:?}", ev.at_committed, ev.kind);
    }
    println!(
        "  D$: {:.1}% A-hits, {:.1}% B-hits, {:.1}% misses",
        pct(phase.l1d.a_hits, phase.l1d.accesses),
        pct(phase.l1d.b_hits, phase.l1d.accesses),
        phase.l1d.miss_rate() * 100.0,
    );
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64 * 100.0
    }
}
