//! End-to-end integration tests spanning the whole workspace: workloads →
//! simulator → results, across all three machine styles.

use gals_mcd::prelude::*;

const WINDOW: u64 = 30_000;

fn run_sync(name: &str) -> SimResult {
    let spec = suite::by_name(name).expect("benchmark exists");
    Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), WINDOW)
}

fn run_prog(name: &str, cfg: McdConfig) -> SimResult {
    let spec = suite::by_name(name).expect("benchmark exists");
    Simulator::new(MachineConfig::program_adaptive(cfg)).run(&mut spec.stream(), WINDOW)
}

fn run_phase(name: &str, window: u64) -> SimResult {
    let spec = suite::by_name(name).expect("benchmark exists");
    Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window)
}

#[test]
fn every_benchmark_runs_on_every_machine_style() {
    for spec in suite::all() {
        let w = 4_000;
        let sync = Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), w);
        assert_eq!(sync.committed, w, "{} sync", spec.name());
        let prog = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), w);
        assert_eq!(prog.committed, w, "{} prog", spec.name());
        let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), w);
        assert_eq!(phase.committed, w, "{} phase", spec.name());
        for r in [&sync, &prog, &phase] {
            assert!(r.runtime_ns() > 0.0);
            assert!(r.icache.accesses > 0, "{}", spec.name());
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_phase("apsi", 20_000);
    let b = run_phase("apsi", 20_000);
    assert_eq!(a.runtime, b.runtime);
    assert_eq!(a.mispredicts, b.mispredicts);
    assert_eq!(a.reconfigs, b.reconfigs);
}

#[test]
fn memory_bound_benchmark_prefers_large_caches() {
    // em3d's ~1.5 MB pointer-chased working set: the largest D/L2
    // configuration must beat the smallest despite its slower clock.
    let small = run_prog("em3d", McdConfig::smallest());
    let big = run_prog(
        "em3d",
        McdConfig {
            dl2: Dl2Config::K256W8,
            ..McdConfig::smallest()
        },
    );
    assert!(
        big.runtime < small.runtime,
        "em3d should prefer the big D/L2: {} vs {}",
        big.runtime_ns(),
        small.runtime_ns()
    );
}

#[test]
fn kernel_benchmark_prefers_smallest_configuration() {
    // adpcm's 2 KB kernel and 4 KB data: upsizing only costs clock rate.
    let small = run_prog("adpcm_encode", McdConfig::smallest());
    let big = run_prog("adpcm_encode", McdConfig::largest());
    assert!(
        small.runtime < big.runtime,
        "adpcm should prefer the base config: {} vs {}",
        small.runtime_ns(),
        big.runtime_ns()
    );
}

#[test]
fn large_code_footprint_pressures_small_icache() {
    // crafty's 64 KB code footprint thrashes a 16 KB I-cache but fits
    // the 64 KB 4-way configuration. A long window is needed so capacity
    // misses dominate compulsory ones.
    let window = 150_000;
    let spec = suite::by_name("crafty").unwrap();
    let small = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);
    let big_ic = Simulator::new(MachineConfig::program_adaptive(McdConfig {
        icache: ICacheConfig::K64W4,
        ..McdConfig::smallest()
    }))
    .run(&mut spec.stream(), window);
    assert!(
        big_ic.icache.miss_rate() < small.icache.miss_rate() / 2.0,
        "64 KB I$ should cut crafty's miss rate: {:.3} vs {:.3}",
        big_ic.icache.miss_rate(),
        small.icache.miss_rate()
    );
}

#[test]
fn phase_adaptive_reconfigures_on_phased_benchmarks() {
    let r = run_phase("apsi", 150_000);
    let dl2_events = r
        .reconfigs
        .iter()
        .filter(|e| matches!(e.kind, gals_mcd::core::ReconfigKind::Dl2(_)))
        .count();
    assert!(
        dl2_events >= 2,
        "apsi's working-set phases should move the D/L2 config (got {dl2_events})"
    );
}

#[test]
fn issue_queues_adapt_without_thrashing() {
    // apsi's ILP phases must still move the integer queue — but at the
    // adaptation-interval cadence, not the per-tracking-interval thrash
    // that the decision-cadence fix removed (pre-fix, a 300K-instruction
    // window racked up dozens of IQ relocks on measurement noise).
    let r = run_phase("apsi", 300_000);
    let iq_events = r
        .reconfigs
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                gals_mcd::core::ReconfigKind::IqInt(_) | gals_mcd::core::ReconfigKind::IqFp(_)
            )
        })
        .count();
    assert!(
        (1..=6).contains(&iq_events),
        "apsi should resize its issue queues a handful of times, not thrash (got {iq_events})"
    );
}

#[test]
fn adaptation_beats_static_on_phase_heterogeneous_benchmarks() {
    // The BENCH_policy.json regression: on benchmarks whose working set
    // or ILP shifts between phases, the paper's adaptive controllers
    // must beat (or at worst match) the same MCD machine frozen at the
    // base configuration. Pre-fix, issue-queue decision thrash made
    // Static win across the suite.
    for bench in ["gzip", "art"] {
        let spec = suite::by_name(bench).expect("benchmark exists");
        let adaptive = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), 120_000);
        let static_ = Simulator::new(
            MachineConfig::phase_adaptive(McdConfig::smallest())
                .with_control(ControlPolicy::Static),
        )
        .run(&mut spec.stream(), 120_000);
        assert!(
            adaptive.runtime <= static_.runtime,
            "{bench}: adaptation must not lose to static ({} vs {} ns)",
            adaptive.runtime_ns(),
            static_.runtime_ns()
        );
    }
}

#[test]
fn sync_baseline_statistics_are_sane() {
    let r = run_sync("crafty");
    assert!(r.branches > 1_000);
    let rate = r.mispredict_rate();
    assert!((0.005..0.5).contains(&rate), "mispredict rate {rate}");
    assert!(r.l1d.accesses > 1_000);
    // All four domains share one clock.
    assert_eq!(r.final_freqs[0], r.final_freqs[1]);
    assert_eq!(r.final_freqs[1], r.final_freqs[3]);
}

#[test]
fn mcd_base_outclocks_sync_everywhere() {
    let sync = MachineConfig::best_synchronous().initial_frequencies();
    let mcd = MachineConfig::program_adaptive(McdConfig::smallest()).initial_frequencies();
    for (m, s) in mcd.iter().zip(sync.iter()) {
        assert!(
            m > s,
            "every MCD base domain outclocks the sync global clock"
        );
    }
}
