//! Reproduction "shape" checks: qualitative properties the paper reports
//! that must hold in this reproduction (who wins, in which direction,
//! with which mechanism). Absolute magnitudes are recorded in
//! EXPERIMENTS.md instead.

use gals_mcd::prelude::*;

#[test]
fn frequency_anchors_hold() {
    let m = TimingModel::default();
    // §2.2: DM -> 2-way adaptive I-cache costs ≈31% of frequency.
    let dm = m.icache_frequency(ICacheConfig::K16W1).as_ghz();
    let w2 = m.icache_frequency(ICacheConfig::K32W2).as_ghz();
    assert!((0.28..=0.34).contains(&(1.0 - w2 / dm)));
    // §4: optimal 64 KB DM is ≈27% faster than adaptive 64 KB.
    let opt = m
        .sync_icache_frequency(SyncICacheOption::paper_best())
        .as_ghz();
    let adapt = m.icache_frequency(ICacheConfig::K64W4).as_ghz();
    assert!((0.22..=0.32).contains(&(opt / adapt - 1.0)));
}

#[test]
fn sweep_best_sync_config_beats_rival_configs_on_suite_average() {
    // Not the full 1,024-config sweep (that is the bench harness's job):
    // spot-check that the sweep's best-overall synchronous machine (32 KB
    // DM I$, smallest D/L2, 16/16 IQs — see EXPERIMENTS.md) beats
    // plausible rivals on a suite subset average.
    let subset = [
        "gcc",
        "crafty",
        "gsm_encode",
        "adpcm_encode",
        "em3d",
        "twolf",
    ];
    let window = 12_000;

    let run = |cfg: SyncConfig| -> f64 {
        let runtimes: Vec<f64> = subset
            .iter()
            .map(|n| {
                let spec = suite::by_name(n).unwrap();
                Simulator::new(MachineConfig::synchronous(cfg))
                    .run(&mut spec.stream(), window)
                    .runtime_ns()
            })
            .collect();
        gals_mcd::common::stats::geomean(&runtimes).unwrap()
    };

    let sweep_best = SyncConfig {
        icache: SyncICacheOption::new(32, 1).unwrap(),
        ..SyncConfig::paper_best()
    };
    let best = run(sweep_best);
    // Rival: set-associative I-cache (slower clock, little benefit for
    // instruction streams — §2.2).
    let assoc_ic = run(SyncConfig {
        icache: SyncICacheOption::new(32, 4).unwrap(),
        ..sweep_best
    });
    // Rival: large issue queues (slow clock, no ILP to exploit).
    let big_iq = run(SyncConfig {
        iq_int: IqSize::Q64,
        iq_fp: IqSize::Q64,
        ..sweep_best
    });
    assert!(
        best < assoc_ic,
        "DM I$ should beat 4-way: {best} vs {assoc_ic}"
    );
    assert!(
        best < big_iq,
        "16-entry IQs should beat 64-entry: {best} vs {big_iq}"
    );
}

#[test]
fn phase_adaptive_beats_sync_on_memory_phased_apps() {
    for name in ["em3d", "apsi"] {
        let spec = suite::by_name(name).unwrap();
        let window = 90_000;
        let sync =
            Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), window);
        let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), window);
        assert!(
            phase.runtime < sync.runtime,
            "{name}: phase {} vs sync {}",
            phase.runtime_ns(),
            sync.runtime_ns()
        );
    }
}

#[test]
fn b_partition_converts_misses_to_b_hits() {
    // The Accounting Cache's defining behaviour at system level: a
    // working set larger than the A partition but within the physical
    // array is served by B hits in phase mode, misses in fixed mode.
    let spec = suite::by_name("vpr").unwrap(); // data > 32 KB hot set
    let window = 30_000;
    let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);
    let fixed = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
        .run(&mut spec.stream(), window);
    assert!(phase.l1d.b_hits > 0, "phase mode uses the B partition");
    assert_eq!(fixed.l1d.b_hits, 0, "fixed mode has no B partition");
    assert!(phase.l1d.miss_rate() <= fixed.l1d.miss_rate());
}

#[test]
fn adaptive_mispredict_penalty_is_higher() {
    // §2: the adaptive MCD is over-pipelined; Table 5 charges it 10+9
    // against the synchronous 9+7.
    let sync = MachineConfig::best_synchronous();
    let mcd = MachineConfig::phase_adaptive(McdConfig::smallest());
    assert!(mcd.params.mispredict_fe_cycles > sync.params.mispredict_fe_cycles);
    assert!(mcd.params.mispredict_int_cycles > sync.params.mispredict_int_cycles);
}
