//! Integration tests for the exploration pipeline (sweeps, caching,
//! Figure 6 plumbing) at miniature scale.

use gals_mcd::explore::{CacheKey, Explorer, ResultCache};
use gals_mcd::prelude::*;

#[test]
fn program_sweep_picks_sensible_configs() {
    // Tiny windows: only the plumbing and the small-kernel case are
    // checkable here (a memory-bound app's reuse distance exceeds any
    // test-sized window, so its capacity preference cannot appear —
    // see EXPERIMENTS.md "Windows" note).
    let mut ex = Explorer::with_cache(1_500, 3_000, ResultCache::in_memory());
    let suite: Vec<BenchmarkSpec> = ["adpcm_encode", "power"]
        .iter()
        .map(|n| suite::by_name(n).unwrap())
        .collect();
    let choices = ex.program_sweep(&suite).unwrap();
    assert_eq!(choices.len(), 2);

    let adpcm = &choices[0];
    assert_eq!(adpcm.benchmark, "adpcm_encode");
    // adpcm's kernel never needs the largest caches.
    assert_ne!(adpcm.best.dl2, Dl2Config::K256W8);
    // Both kernels run fastest without the largest I-cache.
    for c in &choices {
        assert_ne!(
            c.best.icache,
            gals_mcd::prelude::ICacheConfig::K64W4,
            "{}",
            c.benchmark
        );
    }
}

#[test]
fn cache_round_trips_through_disk() {
    let dir = std::env::temp_dir().join("gals-explore-itest");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("cache.json");

    let spec = suite::by_name("power").unwrap();
    let first;
    {
        let cache = ResultCache::open(&path).unwrap();
        let mut ex = Explorer::with_cache(1_000, 2_000, cache);
        first = ex.program_sweep(std::slice::from_ref(&spec)).unwrap()[0].runtime_ns;
        ex.save_cache().unwrap();
    }
    {
        let cache = ResultCache::open(&path).unwrap();
        assert!(!cache.is_empty(), "sweep results persisted");
        let mut ex = Explorer::with_cache(1_000, 2_000, cache);
        let t0 = std::time::Instant::now();
        let again = ex.program_sweep(std::slice::from_ref(&spec)).unwrap()[0].runtime_ns;
        assert_eq!(first, again, "cached results identical");
        assert!(t0.elapsed().as_millis() < 500, "cache hit path is fast");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_keys_partition_modes_and_windows() {
    let cache = ResultCache::in_memory();
    cache.put(CacheKey::new("b", "sync", "k", 100), 1.0);
    assert!(cache.get(&CacheKey::new("b", "prog", "k", 100)).is_none());
    assert!(cache.get(&CacheKey::new("b", "sync", "k", 200)).is_none());
    assert_eq!(cache.get(&CacheKey::new("b", "sync", "k", 100)), Some(1.0));
}

#[test]
fn phase_run_returns_full_result() {
    let mut ex = Explorer::with_cache(1_000, 30_000, ResultCache::in_memory());
    let r = ex.phase_run(&suite::by_name("apsi").unwrap());
    assert_eq!(r.committed, 30_000);
    assert_eq!(r.benchmark, "apsi");
}
