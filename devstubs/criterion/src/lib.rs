//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset this workspace's benches
//! use. The build environment has no registry access; this keeps
//! `cargo bench` runnable with real (if statistically simpler)
//! measurements: per benchmark it runs a timed warm-up, collects
//! `sample_size` samples within the measurement budget, and reports the
//! median time per iteration plus throughput when configured.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(self, name, None, f);
        self
    }

    fn finalize(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one parameterized case.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_benchmark(self.criterion, &name, self.throughput, |b| f(b, input));
        self
    }

    /// Runs one unparameterized case inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &full, self.throughput, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: discover a per-sample iteration count that fits the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / (b.iters as u32);
        // Grow geometrically so the warm-up converges quickly.
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let sample_budget = c.measurement_time / (c.sample_size as u32);
    let iters_per_sample =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e-3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<48} time: [{} {} {}]{rate}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

#[doc(hidden)]
pub fn __finalize(c: &mut Criterion) {
    c.finalize();
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            $crate::__finalize(&mut criterion);
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
