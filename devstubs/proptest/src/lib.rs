//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the API subset this workspace's property
//! tests use: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! range and `any` strategies, tuple composition, `prop::collection::vec`,
//! and `prop::sample::select`.
//!
//! The build environment has no registry access, so this crate keeps the
//! property tests runnable. It generates deterministic pseudo-random cases
//! (seeded from the test name) with no shrinking: a failing case panics
//! with the normal assertion message.

/// Per-test configuration (`cases` is the number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (tests derive the seed from their name).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` &gt; 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator: the (tiny) analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_unit() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident / $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Strategy for "any value of a primitive type" (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over all values of `T` (`bool`, integers, floats).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.next_unit()
    }
}

/// Combinator modules mirroring proptest's `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Vec`s with lengths drawn from `len` and
        /// elements drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Vector strategy over `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice among `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires options");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.next_below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Seed derivation: stable FNV-1a hash of the test name, so each property
/// gets its own deterministic case sequence.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { [$config] $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( [$config:expr] ) => {};
    (
        [$config:expr]
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { [$config] $($rest)* }
    };
}
