//! Property tests for the Accounting Cache.
//!
//! The central claim of §3.1 — that per-MRU-position hit counts collected
//! under *any* current configuration exactly reconstruct the A-hit / B-hit
//! / miss counts of *every* configuration — is verified here against brute
//! force: the same trace is replayed on independent caches running each
//! candidate configuration, and the served-by counts must match the
//! reconstruction.

use gals_cache::{AccessKind, AccountingCache, ServedBy};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    // Addresses drawn from a small footprint so sets see real contention;
    // bool selects read/write.
    prop::collection::vec((0u64..4096, any::<bool>()), 1..2000)
}

fn run_counts(trace: &[(u64, bool)], total_bytes: u64, ways: u32, a_ways: u32) -> (u64, u64, u64) {
    let mut c = AccountingCache::new(total_bytes, ways, 64, a_ways, true).unwrap();
    let (mut a, mut b, mut m) = (0u64, 0u64, 0u64);
    for &(addr, write) in trace {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        match c.access(addr, kind).served {
            ServedBy::APartition => a += 1,
            ServedBy::BPartition => b += 1,
            ServedBy::Miss => m += 1,
        }
    }
    (a, b, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accounting reconstruction equals brute-force per-configuration
    /// replay, regardless of the configuration the stats were collected
    /// under.
    #[test]
    fn reconstruction_matches_brute_force(
        trace in trace_strategy(),
        ways in prop::sample::select(vec![2u32, 4, 8]),
        collect_under in 1u32..8,
    ) {
        let collect_under = collect_under.min(ways).max(1);
        let total_bytes = 64 * 4 * ways as u64; // 4 sets per way
        let mut observer =
            AccountingCache::new(total_bytes, ways, 64, collect_under, true).unwrap();
        for &(addr, write) in &trace {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            observer.access(addr, kind);
        }
        let stats = observer.stats().clone();

        for a_ways in 1..=ways {
            let (a, b, m) = run_counts(&trace, total_bytes, ways, a_ways);
            prop_assert_eq!(stats.hits_in_a(a_ways), a, "A hits, a_ways={}", a_ways);
            prop_assert_eq!(stats.hits_in_b(a_ways, ways), b, "B hits, a_ways={}", a_ways);
            prop_assert_eq!(stats.misses, m, "misses, a_ways={}", a_ways);
        }
    }

    /// The MRU vector remains a permutation of the slots under arbitrary
    /// access sequences and repartitions.
    #[test]
    fn mru_always_a_permutation(
        trace in trace_strategy(),
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
        repartition_every in 1usize..64,
    ) {
        let total_bytes = 64 * 8 * ways as u64;
        let mut c = AccountingCache::new(total_bytes, ways, 64, 1, true).unwrap();
        for (i, &(addr, write)) in trace.iter().enumerate() {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            c.access(addr, kind);
            if i % repartition_every == 0 {
                let target = (i as u32 % ways) + 1;
                c.set_a_ways(target).unwrap();
            }
            prop_assert!(c.mru_is_permutation());
        }
    }

    /// Counting invariant: accesses = total hits + misses, and hit counts
    /// beyond the physical associativity are zero.
    #[test]
    fn stats_accounting_balances(
        trace in trace_strategy(),
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let total_bytes = 64 * 4 * ways as u64;
        let mut c = AccountingCache::new(total_bytes, ways, 64, 1, true).unwrap();
        for &(addr, write) in &trace {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            c.access(addr, kind);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, s.total_hits() + s.misses);
        for p in (ways as usize)..gals_cache::MAX_WAYS {
            prop_assert_eq!(s.pos_hits[p], 0);
        }
    }

    /// Contents are independent of the A/B boundary: two caches fed the
    /// same trace under different partitions contain exactly the same
    /// lines afterwards.
    #[test]
    fn contents_independent_of_partition(
        trace in trace_strategy(),
        ways in prop::sample::select(vec![2u32, 4, 8]),
        a1 in 1u32..8,
        a2 in 1u32..8,
    ) {
        let a1 = a1.min(ways);
        let a2 = a2.min(ways);
        let total_bytes = 64 * 4 * ways as u64;
        let mut x = AccountingCache::new(total_bytes, ways, 64, a1, true).unwrap();
        let mut y = AccountingCache::new(total_bytes, ways, 64, a2, true).unwrap();
        for &(addr, write) in &trace {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            x.access(addr, kind);
            y.access(addr, kind);
        }
        for &(addr, _) in &trace {
            prop_assert_eq!(x.contains(addr), y.contains(addr));
        }
    }
}
