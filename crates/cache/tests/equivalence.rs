//! Equivalence suite pinning the packed lazy SoA `AccountingCache` to the
//! pre-PR 7 eager array-of-structs implementation.
//!
//! `reference::AosCache` below is a faithful port of the old layout
//! (`Vec<Line { tag: u64, valid, dirty }>` plus a byte-per-line MRU
//! vector, eagerly allocated). Every property drives both models with the
//! same access stream — random geometries, fixed and phase modes,
//! mid-stream `set_a_ways` repartitions, and tags wider than 32 bits so
//! the partial-tag/high-bits split is exercised — and demands the exact
//! same `AccessResult` stream and `AccountingStats`.

use gals_cache::{AccessKind, AccessResult, AccountingCache, AccountingStats, ServedBy};
use proptest::prelude::*;

/// Faithful port of the pre-PR 7 eager AoS implementation.
mod reference {
    use super::*;

    #[derive(Debug, Clone, Copy, Default)]
    struct Line {
        tag: u64,
        valid: bool,
        dirty: bool,
    }

    pub struct AosCache {
        sets: usize,
        set_mask: u64,
        line_shift: u32,
        physical_ways: usize,
        a_ways: usize,
        b_enabled: bool,
        lines: Vec<Line>,
        mru: Vec<u8>,
        stats: AccountingStats,
    }

    impl AosCache {
        pub fn new(
            total_bytes: u64,
            ways: u32,
            line_bytes: u64,
            a_ways: u32,
            b_enabled: bool,
        ) -> Self {
            let way_bytes = total_bytes / ways as u64;
            let sets = (way_bytes / line_bytes) as usize;
            assert!(sets.is_power_of_two());
            let physical_ways = ways as usize;
            let mut mru = vec![0u8; sets * physical_ways];
            for set in 0..sets {
                for pos in 0..physical_ways {
                    mru[set * physical_ways + pos] = pos as u8;
                }
            }
            AosCache {
                sets,
                set_mask: sets as u64 - 1,
                line_shift: line_bytes.trailing_zeros(),
                physical_ways,
                a_ways: a_ways as usize,
                b_enabled,
                lines: vec![Line::default(); sets * physical_ways],
                mru,
                stats: AccountingStats::default(),
            }
        }

        fn active_ways(&self) -> usize {
            if self.b_enabled {
                self.physical_ways
            } else {
                self.a_ways
            }
        }

        pub fn set_a_ways(&mut self, a_ways: u32) {
            assert!(self.b_enabled);
            assert!(a_ways >= 1 && a_ways as usize <= self.physical_ways);
            self.a_ways = a_ways as usize;
        }

        pub fn stats(&self) -> &AccountingStats {
            &self.stats
        }

        pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
            let line_addr = addr >> self.line_shift;
            let set = (line_addr & self.set_mask) as usize;
            let tag = line_addr >> self.sets.trailing_zeros();
            let ways = self.active_ways();
            let base = set * self.physical_ways;

            self.stats.accesses += 1;

            let mut hit_pos: Option<usize> = None;
            for pos in 0..ways {
                let slot = self.mru[base + pos] as usize;
                let line = &self.lines[base + slot];
                if line.valid && line.tag == tag {
                    hit_pos = Some(pos);
                    break;
                }
            }

            match hit_pos {
                Some(pos) => {
                    self.stats.pos_hits[pos] += 1;
                    let slot = self.mru[base + pos];
                    self.mru.copy_within(base..base + pos, base + 1);
                    self.mru[base] = slot;
                    if kind == AccessKind::Write {
                        self.lines[base + slot as usize].dirty = true;
                    }
                    let served = if pos < self.a_ways {
                        ServedBy::APartition
                    } else {
                        ServedBy::BPartition
                    };
                    AccessResult {
                        served,
                        victim_writeback: false,
                        mru_position: Some(pos as u8),
                    }
                }
                None => {
                    self.stats.misses += 1;
                    let victim_pos = ways - 1;
                    let slot = self.mru[base + victim_pos];
                    let line = &mut self.lines[base + slot as usize];
                    let victim_writeback = line.valid && line.dirty;
                    if victim_writeback {
                        self.stats.writebacks += 1;
                    }
                    *line = Line {
                        tag,
                        valid: true,
                        dirty: kind == AccessKind::Write,
                    };
                    self.mru.copy_within(base..base + victim_pos, base + 1);
                    self.mru[base] = slot;
                    AccessResult {
                        served: ServedBy::Miss,
                        victim_writeback,
                        mru_position: None,
                    }
                }
            }
        }
    }
}

fn kind_of(write: bool) -> AccessKind {
    if write {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Phase mode with mid-stream repartitions: identical result stream
    /// and stats across random geometries.
    #[test]
    fn phase_mode_equivalent_with_resizes(
        trace in prop::collection::vec((0u64..8192, any::<bool>()), 1..2000),
        ways in prop::sample::select(vec![2u32, 4, 8]),
        sets_per_way in prop::sample::select(vec![2u64, 4, 16]),
        a0 in 1u32..8,
        repartition_every in 1usize..96,
    ) {
        let a0 = a0.min(ways);
        let total_bytes = 64 * sets_per_way * ways as u64;
        let mut packed = AccountingCache::new(total_bytes, ways, 64, a0, true).unwrap();
        let mut aos = reference::AosCache::new(total_bytes, ways, 64, a0, true);
        for (i, &(addr, write)) in trace.iter().enumerate() {
            let k = kind_of(write);
            prop_assert_eq!(packed.access(addr, k), aos.access(addr, k), "inst {}", i);
            if i % repartition_every == 0 {
                let target = (i as u32 % ways) + 1;
                packed.set_a_ways(target).unwrap();
                aos.set_a_ways(target);
            }
        }
        prop_assert_eq!(packed.stats(), aos.stats());
    }

    /// Fixed mode (B disabled, only `a_ways` active) equivalence.
    #[test]
    fn fixed_mode_equivalent(
        trace in prop::collection::vec((0u64..8192, any::<bool>()), 1..2000),
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
        a in 1u32..8,
    ) {
        let a = a.min(ways);
        let total_bytes = 64 * 8 * ways as u64;
        let mut packed = AccountingCache::new(total_bytes, ways, 64, a, false).unwrap();
        let mut aos = reference::AosCache::new(total_bytes, ways, 64, a, false);
        for (i, &(addr, write)) in trace.iter().enumerate() {
            let k = kind_of(write);
            prop_assert_eq!(packed.access(addr, k), aos.access(addr, k), "inst {}", i);
        }
        prop_assert_eq!(packed.stats(), aos.stats());
    }

    /// Tags wider than 32 bits: addresses drawn from widely separated
    /// 4 GiB+ aliasing regions force partial-tag collisions that only the
    /// cold high-bits array can disambiguate.
    #[test]
    fn wide_tags_disambiguated_exactly(
        trace in prop::collection::vec((0u64..16, any::<u64>(), any::<bool>()), 1..1500),
        ways in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        // Each access aliases to one of 16 low-address lines, displaced by
        // a multiple of 2^38 bytes: identical partial (low-32) tag bits,
        // distinct high bits.
        let total_bytes = 64 * 4 * ways as u64;
        let mut packed = AccountingCache::new(total_bytes, ways, 64, 1, true).unwrap();
        let mut aos = reference::AosCache::new(total_bytes, ways, 64, 1, true);
        for (i, &(low, salt, write)) in trace.iter().enumerate() {
            let addr = (low * 64) + ((salt & 0xF) << 38);
            let k = kind_of(write);
            prop_assert_eq!(packed.access(addr, k), aos.access(addr, k), "inst {}", i);
        }
        prop_assert_eq!(packed.stats(), aos.stats());
    }
}

/// Lazy allocation bookkeeping: resident bytes grow only with touched
/// sets and stay far below the eager layout for sparse footprints.
#[test]
fn lazy_allocation_tracks_touched_sets() {
    // 2 MB / 8 ways / 64 B lines = 4096 sets — the L2 geometry.
    let mut c = AccountingCache::new(2 << 20, 8, 64, 4, true).unwrap();
    assert_eq!(c.touched_sets(), 0);
    let index_only = c.resident_bytes();
    assert_eq!(index_only, 4096 * 4);

    // Touch 64 distinct sets.
    for set in 0..64u64 {
        c.access(set * 64, AccessKind::Read);
    }
    assert_eq!(c.touched_sets(), 64);
    assert!(c.resident_bytes() < c.eager_layout_bytes() / 2);

    // Re-touching allocated sets does not grow anything.
    let resident = c.resident_bytes();
    for set in 0..64u64 {
        c.access(set * 64, AccessKind::Write);
    }
    assert_eq!(c.touched_sets(), 64);
    assert_eq!(c.resident_bytes(), resident);
}
