//! The Accounting Cache proper.

use std::error::Error;
use std::fmt;

/// Largest associativity supported (the adaptive D/L2 pair reaches 8 ways).
pub const MAX_WAYS: usize = 8;

/// Read or write access. Writes mark the line dirty so that evictions can
/// be counted as writebacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load or instruction fetch.
    Read,
    /// A store (or a dirty fill from a lower level).
    Write,
}

/// Which partition served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the A partition (fast path, `a_cycles` latency).
    APartition,
    /// Hit in the B partition (second probe; block swapped into A).
    BPartition,
    /// Miss in all active ways; the next memory level must service it.
    Miss,
}

/// Outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Which partition served the access.
    pub served: ServedBy,
    /// Whether a dirty block was evicted (writeback traffic to the next
    /// level). Only possible when `served` is [`ServedBy::Miss`].
    pub victim_writeback: bool,
    /// MRU position of the block *before* this access (`None` on miss).
    /// Position 0 is most recently used. This is the quantity the
    /// accounting machinery counts.
    pub mru_position: Option<u8>,
}

/// Errors from cache construction or reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Geometry is not a power-of-two set count or exceeds `MAX_WAYS`.
    BadGeometry(String),
    /// Requested A-partition width is zero or exceeds the physical ways.
    BadPartition {
        /// Requested width.
        requested: u32,
        /// Physical ways available.
        physical: u32,
    },
    /// Attempted to resize a fixed-configuration (B-disabled) cache.
    FixedConfiguration,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::BadGeometry(msg) => write!(f, "bad cache geometry: {msg}"),
            CacheConfigError::BadPartition {
                requested,
                physical,
            } => write!(
                f,
                "bad A partition: {requested} ways requested of {physical} physical"
            ),
            CacheConfigError::FixedConfiguration => {
                f.write_str("cache was built with a fixed configuration")
            }
        }
    }
}

impl Error for CacheConfigError {}

/// Per-interval accounting state: hits by MRU position, misses, traffic.
///
/// §3.1: "Simple counts of the number of blocks accessed in each MRU state
/// are sufficient to reconstruct the precise number of hits and misses to
/// the A and B partitions for all possible cache configurations, regardless
/// of the current configuration."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountingStats {
    /// `pos_hits[p]` counts accesses that hit a block whose MRU position
    /// was `p` at access time.
    pub pos_hits: [u64; MAX_WAYS],
    /// Accesses that missed in every active way.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Total accesses.
    pub accesses: u64,
}

impl AccountingStats {
    /// Hits that an `a`-way A partition would have served.
    pub fn hits_in_a(&self, a_ways: u32) -> u64 {
        self.pos_hits[..(a_ways as usize).min(MAX_WAYS)]
            .iter()
            .sum()
    }

    /// Hits that would fall to the B partition under an `a`-way A
    /// partition with `total` active ways.
    pub fn hits_in_b(&self, a_ways: u32, total_ways: u32) -> u64 {
        let a = (a_ways as usize).min(MAX_WAYS);
        let t = (total_ways as usize).min(MAX_WAYS);
        self.pos_hits[a..t].iter().sum()
    }

    /// Total hits across all active ways.
    pub fn total_hits(&self) -> u64 {
        self.pos_hits.iter().sum()
    }

    /// Merges another interval's counts into this one.
    pub fn merge(&mut self, other: &AccountingStats) {
        for (a, b) in self.pos_hits.iter_mut().zip(other.pos_hits) {
            *a += b;
        }
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.accesses += other.accesses;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// A way-partitioned set-associative cache with full-MRU accounting.
///
/// See the [crate docs](crate) for the model. Constructed either in
/// **phase mode** (`b_enabled = true`: all physical ways active, A/B
/// boundary movable at run time) or **fixed mode** (`b_enabled = false`:
/// only `a_ways` ways exist; an A miss goes straight to the next level —
/// used for the fully synchronous and program-adaptive machines, §3).
pub struct AccountingCache {
    sets: usize,
    set_mask: u64,
    line_shift: u32,
    physical_ways: usize,
    a_ways: usize,
    b_enabled: bool,
    /// `lines[set * physical_ways + slot]`; slot order is arbitrary.
    lines: Vec<Line>,
    /// `mru[set * physical_ways + pos]` = slot index at recency pos.
    mru: Vec<u8>,
    stats: AccountingStats,
}

impl fmt::Debug for AccountingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccountingCache")
            .field("sets", &self.sets)
            .field("physical_ways", &self.physical_ways)
            .field("a_ways", &self.a_ways)
            .field("b_enabled", &self.b_enabled)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl AccountingCache {
    /// Creates a cache.
    ///
    /// * `total_bytes` — capacity across all *physical* ways.
    /// * `ways` — physical associativity (1–8).
    /// * `line_bytes` — power-of-two line size.
    /// * `a_ways` — initial A-partition width (1–`ways`).
    /// * `b_enabled` — phase mode (see type docs).
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the geometry is not a power of two,
    /// `ways` exceeds [`MAX_WAYS`], or the partition is out of range.
    pub fn new(
        total_bytes: u64,
        ways: u32,
        line_bytes: u64,
        a_ways: u32,
        b_enabled: bool,
    ) -> Result<Self, CacheConfigError> {
        if ways == 0 || ways as usize > MAX_WAYS {
            return Err(CacheConfigError::BadGeometry(format!(
                "{ways} ways (1-{MAX_WAYS} supported)"
            )));
        }
        if !line_bytes.is_power_of_two() {
            return Err(CacheConfigError::BadGeometry(format!(
                "line size {line_bytes} not a power of two"
            )));
        }
        if a_ways == 0 || a_ways > ways {
            return Err(CacheConfigError::BadPartition {
                requested: a_ways,
                physical: ways,
            });
        }
        let way_bytes = total_bytes / ways as u64;
        if way_bytes == 0 || !way_bytes.is_multiple_of(line_bytes) {
            return Err(CacheConfigError::BadGeometry(format!(
                "way capacity {way_bytes} not a multiple of line size"
            )));
        }
        let sets = (way_bytes / line_bytes) as usize;
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::BadGeometry(format!(
                "{sets} sets is not a power of two"
            )));
        }
        let physical_ways = ways as usize;
        let mut mru = vec![0u8; sets * physical_ways];
        for set in 0..sets {
            for pos in 0..physical_ways {
                mru[set * physical_ways + pos] = pos as u8;
            }
        }
        Ok(AccountingCache {
            sets,
            set_mask: sets as u64 - 1,
            line_shift: line_bytes.trailing_zeros(),
            physical_ways,
            a_ways: a_ways as usize,
            b_enabled,
            lines: vec![Line::default(); sets * physical_ways],
            mru,
            stats: AccountingStats::default(),
        })
    }

    /// Number of ways an access may hit in: all physical ways in phase
    /// mode, only the A partition in fixed mode.
    #[inline]
    fn active_ways(&self) -> usize {
        if self.b_enabled {
            self.physical_ways
        } else {
            self.a_ways
        }
    }

    /// Current A-partition width in ways.
    pub fn a_ways(&self) -> u32 {
        self.a_ways as u32
    }

    /// Physical associativity.
    pub fn physical_ways(&self) -> u32 {
        self.physical_ways as u32
    }

    /// Number of sets per way.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Whether the B partition is active (phase mode).
    pub fn b_enabled(&self) -> bool {
        self.b_enabled
    }

    /// Moves the A/B boundary (phase mode only). Contents are unaffected —
    /// the split is purely logical, which is why reconfiguration carries no
    /// flush cost in the paper.
    ///
    /// # Errors
    ///
    /// [`CacheConfigError::FixedConfiguration`] in fixed mode;
    /// [`CacheConfigError::BadPartition`] if out of range.
    pub fn set_a_ways(&mut self, a_ways: u32) -> Result<(), CacheConfigError> {
        if !self.b_enabled {
            return Err(CacheConfigError::FixedConfiguration);
        }
        if a_ways == 0 || a_ways as usize > self.physical_ways {
            return Err(CacheConfigError::BadPartition {
                requested: a_ways,
                physical: self.physical_ways as u32,
            });
        }
        self.a_ways = a_ways as usize;
        Ok(())
    }

    /// Performs one access, updating contents, MRU state, and accounting.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.sets.trailing_zeros();
        let ways = self.active_ways();
        let base = set * self.physical_ways;

        self.stats.accesses += 1;

        // Search the active ways in MRU order so the hit position falls
        // out of the search itself.
        let mut hit_pos: Option<usize> = None;
        for pos in 0..ways {
            let slot = self.mru[base + pos] as usize;
            let line = &self.lines[base + slot];
            if line.valid && line.tag == tag {
                hit_pos = Some(pos);
                break;
            }
        }

        match hit_pos {
            Some(pos) => {
                self.stats.pos_hits[pos] += 1;
                let slot = self.mru[base + pos];
                // Move to MRU front (models the A<->B swap on B hits).
                self.mru.copy_within(base..base + pos, base + 1);
                self.mru[base] = slot;
                if kind == AccessKind::Write {
                    self.lines[base + slot as usize].dirty = true;
                }
                let served = if pos < self.a_ways {
                    ServedBy::APartition
                } else {
                    ServedBy::BPartition
                };
                AccessResult {
                    served,
                    victim_writeback: false,
                    mru_position: Some(pos as u8),
                }
            }
            None => {
                self.stats.misses += 1;
                // Victim: LRU among the active ways.
                let victim_pos = ways - 1;
                let slot = self.mru[base + victim_pos];
                let line = &mut self.lines[base + slot as usize];
                let victim_writeback = line.valid && line.dirty;
                if victim_writeback {
                    self.stats.writebacks += 1;
                }
                *line = Line {
                    tag,
                    valid: true,
                    dirty: kind == AccessKind::Write,
                };
                self.mru.copy_within(base..base + victim_pos, base + 1);
                self.mru[base] = slot;
                AccessResult {
                    served: ServedBy::Miss,
                    victim_writeback,
                    mru_position: None,
                }
            }
        }
    }

    /// Probes for presence without updating any state (for tests and
    /// assertions).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.sets.trailing_zeros();
        let base = set * self.physical_ways;
        (0..self.active_ways()).any(|pos| {
            let slot = self.mru[base + pos] as usize;
            let line = &self.lines[base + slot];
            line.valid && line.tag == tag
        })
    }

    /// Accumulated accounting since the last [`AccountingCache::take_stats`].
    pub fn stats(&self) -> &AccountingStats {
        &self.stats
    }

    /// Returns and resets the interval counters (the controller does this
    /// at the end of every 15K-instruction interval).
    pub fn take_stats(&mut self) -> AccountingStats {
        std::mem::take(&mut self.stats)
    }

    /// Invariant check used by property tests: every set's MRU vector is a
    /// permutation of the physical slots.
    pub fn mru_is_permutation(&self) -> bool {
        (0..self.sets).all(|set| {
            let base = set * self.physical_ways;
            let mut seen = [false; MAX_WAYS];
            for pos in 0..self.physical_ways {
                let slot = self.mru[base + pos] as usize;
                if slot >= self.physical_ways || seen[slot] {
                    return false;
                }
                seen[slot] = true;
            }
            true
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(a_ways: u32, b_enabled: bool) -> AccountingCache {
        // 4 sets x 4 ways x 64B lines = 1 KB.
        AccountingCache::new(1024, 4, 64, a_ways, b_enabled).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(AccountingCache::new(1024, 0, 64, 1, true).is_err());
        assert!(AccountingCache::new(1024, 16, 64, 1, true).is_err());
        assert!(AccountingCache::new(1024, 4, 48, 1, true).is_err());
        assert!(AccountingCache::new(1024, 4, 64, 0, true).is_err());
        assert!(AccountingCache::new(1024, 4, 64, 5, true).is_err());
        // 3-way geometry -> 1024/3 not a multiple of 64.
        assert!(AccountingCache::new(1024, 3, 64, 1, true).is_err());
        assert!(small_cache(2, true).mru_is_permutation());
    }

    #[test]
    fn miss_then_a_hit() {
        let mut c = small_cache(1, true);
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::Miss);
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::APartition);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().pos_hits[0], 1);
    }

    #[test]
    fn b_hit_swaps_into_a() {
        let mut c = small_cache(1, true);
        // Two lines in the same set (set stride = 4 sets * 64 B = 256 B).
        c.access(0x0, AccessKind::Read); // A: {0}
        c.access(0x100, AccessKind::Read); // A: {100}, B: {0}
        let r = c.access(0x0, AccessKind::Read);
        assert_eq!(r.served, ServedBy::BPartition);
        assert_eq!(r.mru_position, Some(1));
        // After the swap, 0x0 is back in A.
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::APartition);
    }

    #[test]
    fn fixed_mode_skips_b() {
        let mut c = small_cache(1, false);
        c.access(0x0, AccessKind::Read);
        c.access(0x100, AccessKind::Read); // evicts 0x0: only 1 active way
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::Miss);
        assert!(c.set_a_ways(2).is_err());
    }

    #[test]
    fn full_lru_replacement_over_active_ways() {
        let mut c = small_cache(2, true);
        // Fill all four physical ways of set 0.
        for i in 0..4u64 {
            c.access(i * 0x100, AccessKind::Read);
        }
        // Access the oldest -> it is still resident (B partition).
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::BPartition);
        // A fifth line evicts the LRU (0x100 now).
        c.access(0x400, AccessKind::Read);
        assert_eq!(c.access(0x100, AccessKind::Read).served, ServedBy::Miss);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = AccountingCache::new(256, 1, 64, 1, false).unwrap(); // 4 sets, 1 way
        c.access(0x0, AccessKind::Write);
        assert_eq!(c.stats().writebacks, 0);
        let r = c.access(0x100, AccessKind::Read); // evicts dirty 0x0
        assert!(r.victim_writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn repartition_preserves_contents() {
        let mut c = small_cache(1, true);
        for i in 0..4u64 {
            c.access(i * 0x100, AccessKind::Read);
        }
        c.set_a_ways(4).unwrap();
        for i in 0..4u64 {
            assert!(c.contains(i * 0x100));
            assert_eq!(
                c.access(i * 0x100, AccessKind::Read).served,
                ServedBy::APartition
            );
        }
    }

    #[test]
    fn stats_reconstruction_queries() {
        let s = AccountingStats {
            pos_hits: [10, 5, 3, 2, 0, 0, 0, 0],
            misses: 4,
            ..AccountingStats::default()
        };
        assert_eq!(s.hits_in_a(1), 10);
        assert_eq!(s.hits_in_a(2), 15);
        assert_eq!(s.hits_in_b(1, 4), 10);
        assert_eq!(s.hits_in_b(4, 4), 0);
        assert_eq!(s.total_hits(), 20);
        let mut t = s.clone();
        t.merge(&s);
        assert_eq!(t.total_hits(), 40);
        assert_eq!(t.misses, 8);
    }

    #[test]
    fn take_stats_resets() {
        let mut c = small_cache(1, true);
        c.access(0x0, AccessKind::Read);
        let s = c.take_stats();
        assert_eq!(s.accesses, 1);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn mru_position_reported_before_promotion() {
        let mut c = small_cache(4, true);
        c.access(0x0, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        c.access(0x200, AccessKind::Read);
        // 0x0 is now at MRU position 2.
        let r = c.access(0x0, AccessKind::Read);
        assert_eq!(r.mru_position, Some(2));
        // And afterwards at position 0.
        let r = c.access(0x0, AccessKind::Read);
        assert_eq!(r.mru_position, Some(0));
    }
}
