//! The Accounting Cache proper.

use std::error::Error;
use std::fmt;

/// Largest associativity supported (the adaptive D/L2 pair reaches 8 ways).
pub const MAX_WAYS: usize = 8;

/// Read or write access. Writes mark the line dirty so that evictions can
/// be counted as writebacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load or instruction fetch.
    Read,
    /// A store (or a dirty fill from a lower level).
    Write,
}

/// Which partition served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the A partition (fast path, `a_cycles` latency).
    APartition,
    /// Hit in the B partition (second probe; block swapped into A).
    BPartition,
    /// Miss in all active ways; the next memory level must service it.
    Miss,
}

/// Outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Which partition served the access.
    pub served: ServedBy,
    /// Whether a dirty block was evicted (writeback traffic to the next
    /// level). Only possible when `served` is [`ServedBy::Miss`].
    pub victim_writeback: bool,
    /// MRU position of the block *before* this access (`None` on miss).
    /// Position 0 is most recently used. This is the quantity the
    /// accounting machinery counts.
    pub mru_position: Option<u8>,
}

/// Errors from cache construction or reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Geometry is not a power-of-two set count or exceeds `MAX_WAYS`.
    BadGeometry(String),
    /// Requested A-partition width is zero or exceeds the physical ways.
    BadPartition {
        /// Requested width.
        requested: u32,
        /// Physical ways available.
        physical: u32,
    },
    /// Attempted to resize a fixed-configuration (B-disabled) cache.
    FixedConfiguration,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::BadGeometry(msg) => write!(f, "bad cache geometry: {msg}"),
            CacheConfigError::BadPartition {
                requested,
                physical,
            } => write!(
                f,
                "bad A partition: {requested} ways requested of {physical} physical"
            ),
            CacheConfigError::FixedConfiguration => {
                f.write_str("cache was built with a fixed configuration")
            }
        }
    }
}

impl Error for CacheConfigError {}

/// Per-interval accounting state: hits by MRU position, misses, traffic.
///
/// §3.1: "Simple counts of the number of blocks accessed in each MRU state
/// are sufficient to reconstruct the precise number of hits and misses to
/// the A and B partitions for all possible cache configurations, regardless
/// of the current configuration."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountingStats {
    /// `pos_hits[p]` counts accesses that hit a block whose MRU position
    /// was `p` at access time.
    pub pos_hits: [u64; MAX_WAYS],
    /// Accesses that missed in every active way.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Total accesses.
    pub accesses: u64,
}

impl AccountingStats {
    /// Hits that an `a`-way A partition would have served.
    pub fn hits_in_a(&self, a_ways: u32) -> u64 {
        self.pos_hits[..(a_ways as usize).min(MAX_WAYS)]
            .iter()
            .sum()
    }

    /// Hits that would fall to the B partition under an `a`-way A
    /// partition with `total` active ways.
    pub fn hits_in_b(&self, a_ways: u32, total_ways: u32) -> u64 {
        let a = (a_ways as usize).min(MAX_WAYS);
        let t = (total_ways as usize).min(MAX_WAYS);
        self.pos_hits[a..t].iter().sum()
    }

    /// Total hits across all active ways.
    pub fn total_hits(&self) -> u64 {
        self.pos_hits.iter().sum()
    }

    /// Merges another interval's counts into this one.
    pub fn merge(&mut self, other: &AccountingStats) {
        for (a, b) in self.pos_hits.iter_mut().zip(other.pos_hits) {
            *a += b;
        }
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.accesses += other.accesses;
    }
}

/// Sentinel in `set_index` for a set that has never been accessed.
const NO_SET: u32 = u32::MAX;

/// Identity MRU permutation: nibble `p` holds slot `p` (`0x7654_3210`).
const MRU_IDENTITY: u32 = 0x7654_3210;

/// Per-set recency and state record, 8 bytes:
///
/// * `mru` — the recency permutation as 4-bit slot nibbles; nibble `p`
///   (bits `4p..4p+4`) is the slot at MRU position `p`. Only the low
///   `physical_ways` nibbles are meaningful.
/// * `valid` / `dirty` — per-slot bitmasks.
///
/// The tag words live in separate flat arrays strided by the *physical*
/// associativity (not [`MAX_WAYS`]), so a direct-mapped cache pays 4 B of
/// partial tag per set instead of 32.
#[derive(Debug, Clone, Copy)]
struct SetMeta {
    mru: u32,
    valid: u8,
    dirty: u8,
}

impl SetMeta {
    fn fresh(physical_ways: usize) -> Self {
        // Nibbles at positions >= physical_ways are never read or moved
        // (promotion only permutes the prefix up to the hit position), so
        // masking the identity keeps the permutation check simple.
        let used_bits = 4 * physical_ways;
        let mask = if used_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << used_bits) - 1
        };
        SetMeta {
            mru: MRU_IDENTITY & mask,
            valid: 0,
            dirty: 0,
        }
    }

    /// Slot at MRU position `pos`.
    #[inline]
    fn slot_at(self, pos: usize) -> u32 {
        (self.mru >> (4 * pos)) & 0xF
    }

    /// Moves the slot at `pos` to MRU position 0, shifting positions
    /// `0..pos` up by one — the nibble-packed equivalent of the old
    /// `mru.copy_within(base..base + pos, base + 1)` byte rotate.
    #[inline]
    fn promote(&mut self, pos: usize) {
        let slot = self.slot_at(pos);
        let low_mask = (1u32 << (4 * pos)) - 1;
        let shifted = (self.mru & low_mask) << 4;
        let kept_shift = 4 * (pos + 1);
        let kept = if kept_shift >= 32 {
            0
        } else {
            (self.mru >> kept_shift) << kept_shift
        };
        self.mru = kept | shifted | slot;
    }
}

/// A way-partitioned set-associative cache with full-MRU accounting.
///
/// See the [crate docs](crate) for the model. Constructed either in
/// **phase mode** (`b_enabled = true`: all physical ways active, A/B
/// boundary movable at run time) or **fixed mode** (`b_enabled = false`:
/// only `a_ways` ways exist; an A miss goes straight to the next level —
/// used for the fully synchronous and program-adaptive machines, §3).
///
/// Storage is struct-of-arrays and lazily allocated per set: `set_index`
/// maps a set to its dense record (or [`NO_SET`]), so a 32K-set L2 model
/// only pays resident bytes for sets the run actually touches. Tags are
/// split into a hot packed-u32 partial array and a cold high-bits array
/// consulted only on partial match — exact, not probabilistic — and both
/// arrays are strided by the physical associativity, so a direct-mapped
/// cache pays 1 tag word per set, not [`MAX_WAYS`].
#[derive(Clone)]
pub struct AccountingCache {
    sets: usize,
    set_mask: u64,
    line_shift: u32,
    physical_ways: usize,
    a_ways: usize,
    b_enabled: bool,
    /// Set → index into `meta` (and × `physical_ways` into the tag
    /// arrays), or [`NO_SET`] until first touch.
    set_index: Box<[u32]>,
    /// Dense per-set MRU/valid/dirty records, in first-touch order.
    meta: Vec<SetMeta>,
    /// Hot low 32 tag bits, `physical_ways` words per touched set.
    partial: Vec<u32>,
    /// Cold high 32 tag bits, parallel to `partial`.
    hi: Vec<u32>,
    stats: AccountingStats,
}

impl fmt::Debug for AccountingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccountingCache")
            .field("sets", &self.sets)
            .field("physical_ways", &self.physical_ways)
            .field("a_ways", &self.a_ways)
            .field("b_enabled", &self.b_enabled)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl AccountingCache {
    /// Creates a cache.
    ///
    /// * `total_bytes` — capacity across all *physical* ways.
    /// * `ways` — physical associativity (1–8).
    /// * `line_bytes` — power-of-two line size.
    /// * `a_ways` — initial A-partition width (1–`ways`).
    /// * `b_enabled` — phase mode (see type docs).
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the geometry is not a power of two,
    /// `ways` exceeds [`MAX_WAYS`], or the partition is out of range.
    pub fn new(
        total_bytes: u64,
        ways: u32,
        line_bytes: u64,
        a_ways: u32,
        b_enabled: bool,
    ) -> Result<Self, CacheConfigError> {
        if ways == 0 || ways as usize > MAX_WAYS {
            return Err(CacheConfigError::BadGeometry(format!(
                "{ways} ways (1-{MAX_WAYS} supported)"
            )));
        }
        if !line_bytes.is_power_of_two() {
            return Err(CacheConfigError::BadGeometry(format!(
                "line size {line_bytes} not a power of two"
            )));
        }
        if a_ways == 0 || a_ways > ways {
            return Err(CacheConfigError::BadPartition {
                requested: a_ways,
                physical: ways,
            });
        }
        let way_bytes = total_bytes / ways as u64;
        if way_bytes == 0 || !way_bytes.is_multiple_of(line_bytes) {
            return Err(CacheConfigError::BadGeometry(format!(
                "way capacity {way_bytes} not a multiple of line size"
            )));
        }
        let sets = (way_bytes / line_bytes) as usize;
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::BadGeometry(format!(
                "{sets} sets is not a power of two"
            )));
        }
        let physical_ways = ways as usize;
        Ok(AccountingCache {
            sets,
            set_mask: sets as u64 - 1,
            line_shift: line_bytes.trailing_zeros(),
            physical_ways,
            a_ways: a_ways as usize,
            b_enabled,
            set_index: vec![NO_SET; sets].into_boxed_slice(),
            meta: Vec::new(),
            partial: Vec::new(),
            hi: Vec::new(),
            stats: AccountingStats::default(),
        })
    }

    /// Number of ways an access may hit in: all physical ways in phase
    /// mode, only the A partition in fixed mode.
    #[inline]
    fn active_ways(&self) -> usize {
        if self.b_enabled {
            self.physical_ways
        } else {
            self.a_ways
        }
    }

    /// Current A-partition width in ways.
    pub fn a_ways(&self) -> u32 {
        self.a_ways as u32
    }

    /// Physical associativity.
    pub fn physical_ways(&self) -> u32 {
        self.physical_ways as u32
    }

    /// Number of sets per way.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Whether the B partition is active (phase mode).
    pub fn b_enabled(&self) -> bool {
        self.b_enabled
    }

    /// Moves the A/B boundary (phase mode only). Contents are unaffected —
    /// the split is purely logical, which is why reconfiguration carries no
    /// flush cost in the paper.
    ///
    /// # Errors
    ///
    /// [`CacheConfigError::FixedConfiguration`] in fixed mode;
    /// [`CacheConfigError::BadPartition`] if out of range.
    pub fn set_a_ways(&mut self, a_ways: u32) -> Result<(), CacheConfigError> {
        if !self.b_enabled {
            return Err(CacheConfigError::FixedConfiguration);
        }
        if a_ways == 0 || a_ways as usize > self.physical_ways {
            return Err(CacheConfigError::BadPartition {
                requested: a_ways,
                physical: self.physical_ways as u32,
            });
        }
        self.a_ways = a_ways as usize;
        Ok(())
    }

    // lint:hot — `access` runs once per icache fetch group, load, store,
    // and L2 fill in the simulator's per-edge loop. The lazy set arrays
    // (PR 7) grow through amortized `push`/`resize` doubling, O(log sets)
    // events per run; nothing in the access path may allocate per call.

    /// Dense index of `set`, allocating its records on first touch.
    #[inline]
    fn touch_set(&mut self, set: usize) -> usize {
        let si = self.set_index[set];
        if si != NO_SET {
            return si as usize;
        }
        let si = self.meta.len();
        self.meta.push(SetMeta::fresh(self.physical_ways));
        self.partial
            .resize(self.partial.len() + self.physical_ways, 0);
        self.hi.resize(self.hi.len() + self.physical_ways, 0);
        self.set_index[set] = si as u32;
        si
    }

    /// Performs one access, updating contents, MRU state, and accounting.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.sets.trailing_zeros();
        let partial = tag as u32;
        let high = (tag >> 32) as u32;
        let ways = self.active_ways();
        let si = self.touch_set(set);

        self.stats.accesses += 1;

        // Search the active ways in MRU order so the hit position falls
        // out of the search itself. The packed partial tags keep the whole
        // scan inside one `physical_ways`-word stripe; the cold high bits
        // are consulted only to confirm a partial match.
        let base = si * self.physical_ways;
        let rec = &mut self.meta[si];
        let mut hit_pos: Option<usize> = None;
        for pos in 0..ways {
            let slot = rec.slot_at(pos) as usize;
            if rec.valid & (1 << slot) != 0
                && self.partial[base + slot] == partial
                && self.hi[base + slot] == high
            {
                hit_pos = Some(pos);
                break;
            }
        }

        match hit_pos {
            Some(pos) => {
                self.stats.pos_hits[pos] += 1;
                let slot = rec.slot_at(pos);
                // Move to MRU front (models the A<->B swap on B hits).
                rec.promote(pos);
                if kind == AccessKind::Write {
                    rec.dirty |= 1 << slot;
                }
                let served = if pos < self.a_ways {
                    ServedBy::APartition
                } else {
                    ServedBy::BPartition
                };
                AccessResult {
                    served,
                    victim_writeback: false,
                    mru_position: Some(pos as u8),
                }
            }
            None => {
                self.stats.misses += 1;
                // Victim: LRU among the active ways.
                let victim_pos = ways - 1;
                let slot = rec.slot_at(victim_pos);
                let bit = 1u8 << slot;
                let victim_writeback = rec.valid & rec.dirty & bit != 0;
                if victim_writeback {
                    self.stats.writebacks += 1;
                }
                self.partial[base + slot as usize] = partial;
                self.hi[base + slot as usize] = high;
                rec.valid |= bit;
                if kind == AccessKind::Write {
                    rec.dirty |= bit;
                } else {
                    rec.dirty &= !bit;
                }
                rec.promote(victim_pos);
                AccessResult {
                    served: ServedBy::Miss,
                    victim_writeback,
                    mru_position: None,
                }
            }
        }
    }

    // lint:endhot

    /// Probes for presence without updating any state (for tests and
    /// assertions).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.sets.trailing_zeros();
        let si = self.set_index[set];
        if si == NO_SET {
            return false;
        }
        let si = si as usize;
        let base = si * self.physical_ways;
        let rec = self.meta[si];
        (0..self.active_ways()).any(|pos| {
            let slot = rec.slot_at(pos) as usize;
            rec.valid & (1 << slot) != 0
                && self.partial[base + slot] == tag as u32
                && self.hi[base + slot] == (tag >> 32) as u32
        })
    }

    /// Accumulated accounting since the last [`AccountingCache::take_stats`].
    pub fn stats(&self) -> &AccountingStats {
        &self.stats
    }

    /// Returns and resets the interval counters (the controller does this
    /// at the end of every 15K-instruction interval).
    pub fn take_stats(&mut self) -> AccountingStats {
        std::mem::take(&mut self.stats)
    }

    /// Invariant check used by property tests: every touched set's MRU
    /// nibbles are a permutation of the physical slots (untouched sets
    /// hold the identity by construction).
    pub fn mru_is_permutation(&self) -> bool {
        self.meta.iter().all(|rec| {
            let mut seen = [false; MAX_WAYS];
            for pos in 0..self.physical_ways {
                let slot = rec.slot_at(pos) as usize;
                if slot >= self.physical_ways || seen[slot] {
                    return false;
                }
                seen[slot] = true;
            }
            true
        })
    }

    /// Number of sets that have been touched (lazily allocated).
    pub fn touched_sets(&self) -> usize {
        self.meta.len()
    }

    /// Heap bytes currently resident for this cache's content model
    /// (set index + per-set records + both strided tag arrays; excludes
    /// `self` and the interval counters).
    pub fn resident_bytes(&self) -> usize {
        self.set_index.len() * size_of::<u32>()
            + self.meta.capacity() * size_of::<SetMeta>()
            + (self.partial.capacity() + self.hi.capacity()) * size_of::<u32>()
    }

    /// Heap bytes the pre-PR 7 eager AoS layout would hold resident for
    /// the same geometry (`sets × ways` 16-byte `Line { tag: u64, valid,
    /// dirty }` slots plus one MRU byte per line), for the `--mem` bench
    /// comparison.
    pub fn eager_layout_bytes(&self) -> usize {
        // Line was { tag: u64, valid: bool, dirty: bool } -> 16 B padded.
        self.sets * self.physical_ways * (16 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(a_ways: u32, b_enabled: bool) -> AccountingCache {
        // 4 sets x 4 ways x 64B lines = 1 KB.
        AccountingCache::new(1024, 4, 64, a_ways, b_enabled).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(AccountingCache::new(1024, 0, 64, 1, true).is_err());
        assert!(AccountingCache::new(1024, 16, 64, 1, true).is_err());
        assert!(AccountingCache::new(1024, 4, 48, 1, true).is_err());
        assert!(AccountingCache::new(1024, 4, 64, 0, true).is_err());
        assert!(AccountingCache::new(1024, 4, 64, 5, true).is_err());
        // 3-way geometry -> 1024/3 not a multiple of 64.
        assert!(AccountingCache::new(1024, 3, 64, 1, true).is_err());
        assert!(small_cache(2, true).mru_is_permutation());
    }

    #[test]
    fn miss_then_a_hit() {
        let mut c = small_cache(1, true);
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::Miss);
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::APartition);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().pos_hits[0], 1);
    }

    #[test]
    fn b_hit_swaps_into_a() {
        let mut c = small_cache(1, true);
        // Two lines in the same set (set stride = 4 sets * 64 B = 256 B).
        c.access(0x0, AccessKind::Read); // A: {0}
        c.access(0x100, AccessKind::Read); // A: {100}, B: {0}
        let r = c.access(0x0, AccessKind::Read);
        assert_eq!(r.served, ServedBy::BPartition);
        assert_eq!(r.mru_position, Some(1));
        // After the swap, 0x0 is back in A.
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::APartition);
    }

    #[test]
    fn fixed_mode_skips_b() {
        let mut c = small_cache(1, false);
        c.access(0x0, AccessKind::Read);
        c.access(0x100, AccessKind::Read); // evicts 0x0: only 1 active way
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::Miss);
        assert!(c.set_a_ways(2).is_err());
    }

    #[test]
    fn full_lru_replacement_over_active_ways() {
        let mut c = small_cache(2, true);
        // Fill all four physical ways of set 0.
        for i in 0..4u64 {
            c.access(i * 0x100, AccessKind::Read);
        }
        // Access the oldest -> it is still resident (B partition).
        assert_eq!(c.access(0x0, AccessKind::Read).served, ServedBy::BPartition);
        // A fifth line evicts the LRU (0x100 now).
        c.access(0x400, AccessKind::Read);
        assert_eq!(c.access(0x100, AccessKind::Read).served, ServedBy::Miss);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = AccountingCache::new(256, 1, 64, 1, false).unwrap(); // 4 sets, 1 way
        c.access(0x0, AccessKind::Write);
        assert_eq!(c.stats().writebacks, 0);
        let r = c.access(0x100, AccessKind::Read); // evicts dirty 0x0
        assert!(r.victim_writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn repartition_preserves_contents() {
        let mut c = small_cache(1, true);
        for i in 0..4u64 {
            c.access(i * 0x100, AccessKind::Read);
        }
        c.set_a_ways(4).unwrap();
        for i in 0..4u64 {
            assert!(c.contains(i * 0x100));
            assert_eq!(
                c.access(i * 0x100, AccessKind::Read).served,
                ServedBy::APartition
            );
        }
    }

    #[test]
    fn stats_reconstruction_queries() {
        let s = AccountingStats {
            pos_hits: [10, 5, 3, 2, 0, 0, 0, 0],
            misses: 4,
            ..AccountingStats::default()
        };
        assert_eq!(s.hits_in_a(1), 10);
        assert_eq!(s.hits_in_a(2), 15);
        assert_eq!(s.hits_in_b(1, 4), 10);
        assert_eq!(s.hits_in_b(4, 4), 0);
        assert_eq!(s.total_hits(), 20);
        let mut t = s.clone();
        t.merge(&s);
        assert_eq!(t.total_hits(), 40);
        assert_eq!(t.misses, 8);
    }

    #[test]
    fn take_stats_resets() {
        let mut c = small_cache(1, true);
        c.access(0x0, AccessKind::Read);
        let s = c.take_stats();
        assert_eq!(s.accesses, 1);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn mru_position_reported_before_promotion() {
        let mut c = small_cache(4, true);
        c.access(0x0, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        c.access(0x200, AccessKind::Read);
        // 0x0 is now at MRU position 2.
        let r = c.access(0x0, AccessKind::Read);
        assert_eq!(r.mru_position, Some(2));
        // And afterwards at position 0.
        let r = c.access(0x0, AccessKind::Read);
        assert_eq!(r.mru_position, Some(0));
    }
}
