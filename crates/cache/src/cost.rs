//! Per-configuration access-cost evaluation for the interval controller.

use crate::accounting::AccountingStats;

/// The cost parameters of one candidate configuration.
///
/// §3.1: the A access takes a fixed number of cycles (2 for L1, 12 for L2 —
/// Table 5); the B access "is an integral number of cycles at the clock
/// rate dictated by the size of the A partition"; and the domain clock
/// period itself depends on the configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// A-partition width in ways for this configuration.
    pub a_ways: u32,
    /// A-partition access latency in domain cycles.
    pub a_cycles: u64,
    /// B-partition access latency in domain cycles (`None` when the
    /// configuration has no B partition, i.e. A spans all ways).
    pub b_cycles: Option<u64>,
    /// Domain clock period for this configuration, in nanoseconds.
    pub cycle_ns: f64,
}

/// The candidate configurations of one adaptive cache (or cache pair
/// member), in upsizing order.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    points: Vec<CostPoint>,
    total_ways: u32,
}

impl CostTable {
    /// Builds a table.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, not in increasing `a_ways` order, or
    /// if any point's `a_ways` exceeds `total_ways`.
    pub fn new(points: Vec<CostPoint>, total_ways: u32) -> Self {
        assert!(!points.is_empty(), "cost table needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].a_ways < w[1].a_ways),
            "points must be in increasing a_ways order"
        );
        assert!(
            points.iter().all(|p| p.a_ways <= total_ways),
            "a_ways exceeds physical ways"
        );
        CostTable { points, total_ways }
    }

    /// The candidate points.
    pub fn points(&self) -> &[CostPoint] {
        &self.points
    }

    /// Total physical ways.
    pub fn total_ways(&self) -> u32 {
        self.total_ways
    }

    /// Total access time in nanoseconds that configuration `idx` *would
    /// have* spent serving the interval summarized by `stats`, with misses
    /// costed at `miss_ns` each.
    ///
    /// The reconstruction is exact because contents are configuration-
    /// independent (see crate docs): hits at MRU positions below `a_ways`
    /// are A hits, the rest are B hits, and misses are common to all
    /// configurations.
    pub fn cost_ns(&self, idx: usize, stats: &AccountingStats, miss_ns: f64) -> f64 {
        let p = self.points[idx];
        let a_hits = stats.hits_in_a(p.a_ways);
        let b_hits = stats.hits_in_b(p.a_ways, self.total_ways);
        let b_cycles = p.b_cycles.unwrap_or(0);
        debug_assert!(
            p.b_cycles.is_some() || b_hits == 0 || p.a_ways < self.total_ways,
            "B hits with no B partition"
        );
        let hit_ns = (a_hits * p.a_cycles + b_hits * b_cycles) as f64 * p.cycle_ns;
        // A B access also pays the preceding A probe; that probe is already
        // included because b_cycles (Table 5: 8/5/2 cycles) is the total
        // latency observed by a B hit.
        hit_ns + stats.misses as f64 * miss_ns
    }

    /// The configuration index minimizing [`CostTable::cost_ns`] for the
    /// interval. Ties break toward the smaller (faster-clock) point.
    pub fn best_config(&self, stats: &AccountingStats, miss_ns: f64) -> usize {
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        for idx in 0..self.points.len() {
            let c = self.cost_ns(idx, stats, miss_ns);
            if c < best_cost {
                best_cost = c;
                best = idx;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CostTable {
        // Mirrors the L1 D-cache: 4 configs over 8 ways, Table 5 latencies.
        CostTable::new(
            vec![
                CostPoint {
                    a_ways: 1,
                    a_cycles: 2,
                    b_cycles: Some(8),
                    cycle_ns: 0.63,
                },
                CostPoint {
                    a_ways: 2,
                    a_cycles: 2,
                    b_cycles: Some(5),
                    cycle_ns: 0.83,
                },
                CostPoint {
                    a_ways: 4,
                    a_cycles: 2,
                    b_cycles: Some(2),
                    cycle_ns: 0.89,
                },
                CostPoint {
                    a_ways: 8,
                    a_cycles: 2,
                    b_cycles: None,
                    cycle_ns: 0.99,
                },
            ],
            8,
        )
    }

    fn stats(pos_hits: [u64; 8], misses: u64) -> AccountingStats {
        AccountingStats {
            pos_hits,
            misses,
            writebacks: 0,
            accesses: pos_hits.iter().sum::<u64>() + misses,
        }
    }

    #[test]
    fn a_heavy_interval_prefers_smallest() {
        // Everything hits MRU position 0: the 1-way A config serves all
        // hits at the fastest clock.
        let s = stats([10_000, 0, 0, 0, 0, 0, 0, 0], 10);
        assert_eq!(table().best_config(&s, 90.0), 0);
    }

    #[test]
    fn deep_reuse_prefers_wider_a() {
        // Most hits land at MRU positions 2-3: a 4-way A partition avoids
        // paying B latency on them.
        let s = stats([100, 100, 5_000, 5_000, 0, 0, 0, 0], 10);
        let best = table().best_config(&s, 90.0);
        assert!(best >= 2, "expected an upsized configuration, got {best}");
    }

    #[test]
    fn cost_is_exact_sum() {
        let t = table();
        let s = stats([10, 20, 0, 0, 0, 0, 30, 0], 5);
        // Config 0: A hits = 10 (pos 0), B hits = 50 (pos 1..8).
        let expect = (10 * 2 + 50 * 8) as f64 * 0.63 + 5.0 * 90.0;
        assert!((t.cost_ns(0, &s, 90.0) - expect).abs() < 1e-9);
        // Config 3: all 60 hits in A, no B.
        let expect3 = (60 * 2) as f64 * 0.99 + 5.0 * 90.0;
        assert!((t.cost_ns(3, &s, 90.0) - expect3).abs() < 1e-9);
    }

    #[test]
    fn misses_do_not_change_ranking() {
        // Misses cost the same in every configuration, so the argmin is
        // invariant to the miss term.
        let t = table();
        let s = stats([500, 400, 300, 200, 100, 50, 25, 10], 1_000);
        assert_eq!(t.best_config(&s, 0.0), t.best_config(&s, 1_000.0));
    }

    #[test]
    #[should_panic(expected = "increasing a_ways order")]
    fn unordered_points_rejected() {
        let _ = CostTable::new(
            vec![
                CostPoint {
                    a_ways: 2,
                    a_cycles: 2,
                    b_cycles: Some(5),
                    cycle_ns: 0.8,
                },
                CostPoint {
                    a_ways: 1,
                    a_cycles: 2,
                    b_cycles: Some(8),
                    cycle_ns: 0.6,
                },
            ],
            8,
        );
    }
}
