//! The Accounting Cache (Dropsho et al. [9]) and its interval controller
//! support, as used by the adaptive MCD processor (§3.1).
//!
//! An Accounting Cache is a set-associative cache that is logically split
//! into an **A partition** (the first `a` ways in most-recently-used order)
//! and a **B partition** (the remaining ways). The A partition is accessed
//! first; on an A miss the B partition is probed and, on a hit there, the
//! block is swapped into A. Replacement is full LRU over all physical ways,
//! so **cache contents are independent of where the A/B boundary sits** —
//! only access *latencies* change. This is what makes the control algorithm
//! special: simple counts of hits per MRU position are sufficient to
//! reconstruct the exact number of A hits, B hits, and misses *for every
//! possible configuration*, from a single interval of execution, with no
//! exploration (§3.1).
//!
//! This crate provides:
//!
//! * [`AccountingCache`] — the cache model with full-MRU bookkeeping,
//! * [`AccountingStats`] — per-MRU-position hit counters and the
//!   reconstruction queries,
//! * [`CostTable`]/[`CostPoint`] — the access-cost model the controller
//!   minimizes (per-configuration cycle counts × per-configuration clock
//!   periods),
//! * [`hw_cost`] — the gate-count estimate of the control hardware
//!   (Table 4).
//!
//! # Example
//!
//! ```
//! use gals_cache::{AccessKind, AccountingCache, ServedBy};
//!
//! // 4 KB, 4-way, 64-byte lines, A = 1 way, B enabled (phase mode).
//! let mut c = AccountingCache::new(4 * 1024, 4, 64, 1, true)?;
//! let first = c.access(0x1000, AccessKind::Read);
//! assert_eq!(first.served, ServedBy::Miss);
//! let again = c.access(0x1000, AccessKind::Read);
//! assert_eq!(again.served, ServedBy::APartition);
//! # Ok::<(), gals_cache::CacheConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accounting;
mod cost;
pub mod hw_cost;

pub use accounting::{
    AccessKind, AccessResult, AccountingCache, AccountingStats, CacheConfigError, ServedBy,
    MAX_WAYS,
};
pub use cost::{CostPoint, CostTable};
