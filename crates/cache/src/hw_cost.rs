//! Gate-count estimate of the phase-adaptive cache control hardware
//! (Table 4 of the paper).
//!
//! The decision hardware — one instance for the instruction cache and one
//! for the L1/L2 data pair — multiplies MRU-position counters by latency
//! constants and compares the per-configuration sums. Table 4 itemizes the
//! arithmetic (counters, adders, serial multipliers, result register,
//! comparator) using the gate-equivalent rules of Zimmermann's computer-
//! arithmetic notes: a half-adder-based counter costs 3n gates plus 4n for
//! flip-flops, a full adder 7n, a serial multiplier 1n plus 4n of result
//! flip-flops, a comparator 6n.
//!
//! # Example
//!
//! ```
//! let table = gals_cache::hw_cost::table4();
//! assert_eq!(table.total_gates(), 4_647);
//! ```

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component description, matching the paper's wording.
    pub name: &'static str,
    /// Instance count.
    pub count: u32,
    /// Bit width `n` the per-bit rule multiplies.
    pub bits: u32,
    /// Gate equivalents per bit (e.g. 7 for an adder: 3 half-adder + 4
    /// flip-flop, or a full adder).
    pub gates_per_bit: u32,
    /// Rule shown in the table's "Equivalent Gates" column.
    pub rule: &'static str,
}

impl Component {
    /// Total gate equivalents for this row: `count × bits × gates_per_bit`.
    pub fn gates(&self) -> u32 {
        self.count * self.bits * self.gates_per_bit
    }
}

/// The full Table 4 bill of materials for one adaptable cache / cache pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwCostTable {
    components: Vec<Component>,
}

impl HwCostTable {
    /// Rows in table order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Total gate equivalents.
    pub fn total_gates(&self) -> u32 {
        self.components.iter().map(Component::gates).sum()
    }
}

/// Builds Table 4: the per-cache-pair hardware for the phase-adaptive
/// cache algorithm.
///
/// The widths come from §3.1: 15-bit counters suffice for a 15K-instruction
/// interval; products of a 15-bit count and a small latency constant fit in
/// 36 bits (8×28-bit multiplier producing a 36-bit result).
pub fn table4() -> HwCostTable {
    HwCostTable {
        components: vec![
            Component {
                name: "24 MRU and Hit Counters (15-bit)",
                count: 24,
                bits: 15,
                gates_per_bit: 7,
                rule: "3n (Half-Adder) + 4n (D Flip-Flop) = 7n each",
            },
            Component {
                name: "11 Adders (15-bit)",
                count: 11,
                bits: 15,
                gates_per_bit: 7,
                rule: "7n (Full-Adder) = 7n each",
            },
            Component {
                name: "2 8x28-bit Multipliers (36-bit Result)",
                count: 2,
                bits: 36,
                gates_per_bit: 5,
                rule: "1n (Multiplier) + 4n (D Flip-Flop) = 5n each",
            },
            Component {
                name: "1 Final Adder (36-bit)",
                count: 1,
                bits: 36,
                gates_per_bit: 7,
                rule: "7n (Full-adder) = 7n each",
            },
            Component {
                name: "Result Register (36-bit)",
                count: 1,
                bits: 36,
                gates_per_bit: 4,
                rule: "4n (D Flip-Flop) = 4n each",
            },
            Component {
                name: "Comparator (36-bit)",
                count: 1,
                bits: 36,
                gates_per_bit: 6,
                rule: "6n (Comparator) = 6n each",
            },
        ],
    }
}

/// Total control-hardware budget quoted in §3.1: "dedicated arithmetic
/// circuits requiring an estimated 10k equivalent gates (5K for the
/// instruction cache and 5K for the L1/L2 data caches)".
pub fn total_chip_budget_gates() -> u32 {
    2 * 5_000
}

/// Decision latency in cycles (§3.1): "A complete reconfiguration decision
/// requires approximately 32 cycles, based on binary addition trees and the
/// generation of a single partial product per cycle."
pub const DECISION_LATENCY_CYCLES: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_totals_match_table4() {
        let t = table4();
        let totals: Vec<u32> = t.components().iter().map(Component::gates).collect();
        assert_eq!(totals, vec![2_520, 1_155, 360, 252, 144, 216]);
    }

    #[test]
    fn grand_total_matches_table4() {
        assert_eq!(table4().total_gates(), 4_647);
    }

    #[test]
    fn fits_in_quoted_budget() {
        // Two instances (I-cache + D/L2 pair) within the quoted 10k gates.
        assert!(2 * table4().total_gates() <= total_chip_budget_gates());
    }

    #[test]
    fn decision_latency_is_32_cycles() {
        assert_eq!(DECISION_LATENCY_CYCLES, 32);
    }
}
