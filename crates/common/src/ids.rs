//! Clock-domain identifiers.

use std::fmt;

/// One of the independently clocked domains of the adaptive MCD processor
/// (Figure 1 of the paper), plus the fixed-frequency external memory domain.
///
/// * `FrontEnd` — L1 I-cache, branch predictor, rename, ROB, dispatch.
/// * `Integer` — integer issue queue, register file, ALUs.
/// * `FloatingPoint` — FP issue queue, register file, FP units.
/// * `LoadStore` — load/store queue, L1 D-cache, unified L2 cache.
/// * `External` — main memory; "can be thought of as a separate fifth
///   domain, but it operates at a fixed base frequency and hence is
///   non-adaptive" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DomainId {
    /// Fetch, branch prediction, rename, reorder buffer, dispatch.
    FrontEnd,
    /// Integer issue queue, register file, and execution units.
    Integer,
    /// Floating-point issue queue, register file, and execution units.
    FloatingPoint,
    /// Load/store queue, L1 data cache, and unified L2 cache.
    LoadStore,
    /// Main memory (fixed frequency, non-adaptive).
    External,
}

impl DomainId {
    /// The four adaptive on-chip domains, in Figure 1 order.
    pub const ADAPTIVE: [DomainId; 4] = [
        DomainId::FrontEnd,
        DomainId::Integer,
        DomainId::FloatingPoint,
        DomainId::LoadStore,
    ];

    /// All five domains including external memory.
    pub const ALL: [DomainId; 5] = [
        DomainId::FrontEnd,
        DomainId::Integer,
        DomainId::FloatingPoint,
        DomainId::LoadStore,
        DomainId::External,
    ];

    /// A dense index in `0..5`, usable for array-backed per-domain state.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            DomainId::FrontEnd => 0,
            DomainId::Integer => 1,
            DomainId::FloatingPoint => 2,
            DomainId::LoadStore => 3,
            DomainId::External => 4,
        }
    }

    /// Short human-readable name used in reports and traces.
    pub const fn short_name(self) -> &'static str {
        match self {
            DomainId::FrontEnd => "fe",
            DomainId::Integer => "int",
            DomainId::FloatingPoint => "fp",
            DomainId::LoadStore => "ls",
            DomainId::External => "mem",
        }
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DomainId::FrontEnd => "front-end",
            DomainId::Integer => "integer",
            DomainId::FloatingPoint => "floating-point",
            DomainId::LoadStore => "load/store",
            DomainId::External => "external-memory",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for d in DomainId::ALL {
            assert!(!seen[d.index()], "duplicate index for {d}");
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn adaptive_excludes_external() {
        assert!(!DomainId::ADAPTIVE.contains(&DomainId::External));
        assert_eq!(DomainId::ADAPTIVE.len(), 4);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DomainId::FrontEnd.short_name(), "fe");
        assert_eq!(format!("{}", DomainId::LoadStore), "load/store");
    }
}
