//! A hand-rolled FxHash-style hasher for the per-instruction hot paths.
//!
//! The default `std::collections::HashMap` hasher (SipHash-1-3) is
//! deliberately slow-but-DoS-resistant; every key it hashes costs tens of
//! nanoseconds. The simulator hashes small integer keys (store-line
//! addresses) and short strings (cache-shard selection) millions of times
//! per second on trusted, internally generated data, so DoS resistance
//! buys nothing and the SipHash setup cost dominates the lookup. This
//! module provides the classic Fx construction (one rotate-xor-multiply
//! per word, as popularized by Firefox and rustc) as a seedable
//! [`std::hash::BuildHasher`] plus map/set aliases.
//!
//! The build environment has no registry access, so this is a local
//! implementation rather than the `rustc-hash` crate; the algorithm is
//! pinned here and must stay stable — shard selection and any persisted
//! layout decisions key off it.
//!
//! # Example
//!
//! ```
//! use gals_common::fxmap::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(0xDEAD_BEE0 >> 3, "store line");
//! assert_eq!(m.get(&(0xDEAD_BEE0 >> 3)), Some(&"store line"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The Fx multiply constant (the 64-bit golden-ratio-derived constant
/// used by rustc's FxHasher).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// One rotate-xor-multiply step per input word.
///
/// Not cryptographic and not DoS-resistant; use only on trusted keys.
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A hasher starting from `seed` (equivalent to
    /// [`FxBuildHasher::with_seed`] + `build_hasher`).
    #[inline]
    pub const fn with_seed(seed: u64) -> Self {
        FxHasher { hash: seed }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: hashbrown derives its bucket index from the
        // hash's top bits *and* its control byte from bits 57..64, so
        // fold the well-mixed high bits back over the low half once.
        let h = self.hash;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ≠ "ab\0" prefixes.
            word[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A seedable [`BuildHasher`] producing [`FxHasher`]s.
///
/// The default seed is zero; pass a fixed nonzero seed via
/// [`FxBuildHasher::with_seed`] when two tables hashing the same keys
/// should not share collision patterns. Seeds are compile-time
/// constants, never randomized — every run of every binary must hash
/// identically (shard selection feeds deterministic artifacts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// A builder whose hashers start from `seed`.
    #[inline]
    pub const fn with_seed(seed: u64) -> Self {
        FxBuildHasher { seed }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::with_seed(self.seed)
    }
}

/// `HashMap` keyed by the Fx hasher (hot paths, trusted keys only).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the Fx hasher (hot paths, trusted keys only).
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An `FxHashMap` with at least `cap` capacity (the alias can't offer
/// `with_capacity`, which is tied to the default hasher).
#[inline]
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Hashes one `u64` to a well-mixed `u64` (seeded); the convenience
/// entry point for open-addressed tables and shard selection that don't
/// want the `Hasher` ceremony.
#[inline]
pub fn fx_hash_u64(seed: u64, value: u64) -> u64 {
    let mut h = FxHasher::with_seed(seed);
    h.write_u64(value);
    h.finish()
}

/// Hashes a byte string (seeded); used for cache-shard selection.
#[inline]
pub fn fx_hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FxHasher::with_seed(seed);
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(fx_hash_u64(7, key), fx_hash_u64(7, key));
        }
        assert_eq!(fx_hash_bytes(3, b"gcc|sync|k|4000"), {
            fx_hash_bytes(3, b"gcc|sync|k|4000")
        });
    }

    #[test]
    fn seed_changes_the_stream() {
        let same = (0..256)
            .filter(|&k| fx_hash_u64(1, k) == fx_hash_u64(2, k))
            .count();
        assert_eq!(same, 0, "distinct seeds must give distinct hashes");
    }

    #[test]
    fn pinned_reference_values() {
        // The algorithm is load-bearing for shard selection: any change
        // to the constants or mixing must be deliberate. These values
        // were produced by this implementation at introduction time.
        assert_eq!(fx_hash_u64(0, 0), 0);
        // One step from seed 0 on input 1 yields K; finish folds K>>32 in.
        assert_eq!(fx_hash_u64(0, 1), K ^ (K >> 32));
    }

    /// Chi-squared-flavored uniformity check: `n` keys into `b` buckets,
    /// no bucket more than twice the expected share.
    fn assert_spread(hashes: impl Iterator<Item = u64>, n: usize, buckets: usize) {
        let mut counts = vec![0usize; buckets];
        let mut seen = 0usize;
        for h in hashes {
            counts[(h as usize) % buckets] += 1;
            seen += 1;
        }
        assert_eq!(seen, n);
        let expect = n / buckets;
        let max = counts.iter().copied().max().unwrap();
        let min = counts.iter().copied().min().unwrap();
        assert!(
            max < expect * 2 && min > expect / 4,
            "skewed distribution: min {min}, max {max}, expected {expect}"
        );
    }

    #[test]
    fn sequential_u64_keys_spread() {
        // Store-line addresses are nearly sequential; they must not pile
        // into a few buckets (low bits *and* high-ish bits).
        assert_spread((0..8192).map(|k| fx_hash_u64(0, k)), 8192, 64);
        assert_spread((0..8192).map(|k| fx_hash_u64(0, k) >> 48), 8192, 64);
    }

    #[test]
    fn strided_line_keys_spread() {
        // 64-byte-line addresses stride by 8 in line units.
        assert_spread((0..8192).map(|k| fx_hash_u64(0, k * 8)), 8192, 64);
    }

    #[test]
    fn cache_key_strings_spread() {
        let keys: Vec<String> = (0..4096)
            .map(|i| format!("bench{}|sync|ic{}k_dl{}|{}", i % 37, i % 16, i % 4, 4000))
            .collect();
        assert_spread(
            keys.iter().map(|k| fx_hash_bytes(0, k.as_bytes())),
            4096,
            16,
        );
    }

    #[test]
    fn prefix_lengths_distinct() {
        // The remainder fold must distinguish "ab" from "ab\0".
        assert_ne!(fx_hash_bytes(0, b"ab"), fx_hash_bytes(0, b"ab\0"));
        assert_ne!(fx_hash_bytes(0, b""), fx_hash_bytes(0, b"\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, u32> = fx_map_with_capacity(8);
        assert!(m.capacity() >= 8);
        m.insert("a".into(), 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert_eq!(m["a"], 1);
        assert!(s.contains(&42));
    }
}
