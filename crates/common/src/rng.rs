//! Deterministic pseudo-random number generation.
//!
//! Everything random in this workspace — synthetic workload streams, clock
//! jitter, PLL lock times — must be exactly reproducible so that experiment
//! tables can be regenerated bit-for-bit. We therefore use a small,
//! well-understood generator (SplitMix64, Steele et al., OOPSLA 2014) under
//! our own control rather than an external crate whose stream could change
//! across versions.

use std::fmt;

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// Not cryptographically secure; statistically solid for simulation use and
/// extremely fast (one multiply-xor-shift chain per draw).
///
/// # Example
///
/// ```
/// use gals_common::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical simulation purposes.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a child generator from this one, for giving each subsystem
    /// its own stream. `salt` distinguishes siblings derived from the same
    /// parent.
    #[inline]
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        let base = self.next_u64();
        SplitMix64::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); tiny bias is
        // irrelevant at simulation scale and keeps the stream cheap.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0,1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Geometric-ish draw: number of failures before a success with success
    /// probability `p`, capped at `cap`. Used for dependence distances and
    /// reuse distances in workload generation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    #[inline]
    pub fn next_geometric(&mut self, p: f64, cap: u64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]: {p}");
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor() as u64;
        g.min(cap)
    }

    /// Sample from a normal distribution via Box–Muller (single value;
    /// the pair's second value is discarded to keep state small).
    #[inline]
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }
}

impl fmt::Debug for SplitMix64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hide the raw state from casual debug output; it is an
        // implementation detail, but never print an empty representation.
        f.debug_struct("SplitMix64").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(0xDEADBEEF);
        let mut b = SplitMix64::new(0xDEADBEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = SplitMix64::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn geometric_mean_close_to_expectation() {
        let mut r = SplitMix64::new(17);
        let p = 0.2;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.next_geometric(p, 1_000)).sum();
        let mean = total as f64 / n as f64;
        // E[failures before success] = (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn geometric_respects_cap() {
        let mut r = SplitMix64::new(19);
        for _ in 0..10_000 {
            assert!(r.next_geometric(0.01, 5) <= 5);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(23);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SplitMix64::new(31);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SplitMix64::new(1)).is_empty());
    }
}
