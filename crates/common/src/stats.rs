//! Statistics helpers used by experiment harnesses and reports.

/// Arithmetic mean of a slice; `None` when empty.
///
/// # Example
///
/// ```
/// assert_eq!(gals_common::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(gals_common::stats::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean of a slice of positive values; `None` when empty or when
/// any value is non-positive.
///
/// The paper reports per-application performance improvements and an overall
/// average; geometric means are the conventional way to aggregate speedup
/// ratios across a suite.
///
/// # Example
///
/// ```
/// let g = gals_common::stats::geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Harmonic mean of a slice of positive values; `None` when empty or when
/// any value is non-positive.
pub fn harmonic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some(xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>())
}

/// Incrementally maintained summary statistics (count / mean / min / max),
/// using Welford's algorithm for a numerically stable variance.
///
/// # Example
///
/// ```
/// use gals_common::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 6.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 3);
/// assert_eq!(r.mean(), 4.0);
/// assert_eq!(r.min(), Some(2.0));
/// assert_eq!(r.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Running {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// Percentage change from `base` to `new`, positive when `new` is an
/// improvement **in runtime** (i.e. smaller is better).
///
/// This matches the paper's Figure 6 metric: "relative improvement in run
/// time … over the best-overall fully synchronous processor".
///
/// # Example
///
/// ```
/// // New runtime 80 vs baseline 100 -> 20% improvement.
/// assert_eq!(gals_common::stats::runtime_improvement_pct(100.0, 80.0), 25.0);
/// ```
///
/// Note: improvement is expressed as speedup minus one (100·(base/new − 1)),
/// so 100→80 is a 1.25× speedup = 25%.
pub fn runtime_improvement_pct(base: f64, new: f64) -> f64 {
    assert!(base > 0.0 && new > 0.0, "runtimes must be positive");
    (base / new - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[5.0]), Some(5.0));
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[2.0, 0.0]), None);
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_basics() {
        assert_eq!(harmonic_mean(&[]), None);
        assert!((harmonic_mean(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 6.0]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let r: Running = xs.iter().copied().collect();
        assert_eq!(r.count(), 5);
        assert!((r.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        let batch_var = xs.iter().map(|x| (x - r.mean()).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((r.variance() - batch_var).abs() < 1e-9);
        assert_eq!(r.min(), Some(1.0));
        assert_eq!(r.max(), Some(10.0));
    }

    #[test]
    fn running_empty() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), None);
    }

    #[test]
    fn improvement_pct() {
        assert!((runtime_improvement_pct(100.0, 100.0)).abs() < 1e-12);
        assert!((runtime_improvement_pct(120.0, 100.0) - 20.0).abs() < 1e-12);
        assert!(runtime_improvement_pct(100.0, 120.0) < 0.0);
    }
}
