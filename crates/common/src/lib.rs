//! Shared substrate types for the `gals-mcd` simulator suite.
//!
//! This crate provides the vocabulary used by every other crate in the
//! workspace:
//!
//! * [`Femtos`] — absolute simulated time and durations, in femtoseconds.
//!   Clock periods of multi-GHz domains require sub-picosecond resolution;
//!   one femtosecond (10⁻¹⁵ s) is fine enough that a 1.6 GHz period
//!   (625,000 fs) is represented exactly.
//! * [`Hertz`] — clock frequencies, with convenience constructors in MHz/GHz.
//! * [`DomainId`] — the four clock domains of the adaptive MCD processor of
//!   Dropsho et al. (MICRO 2004), plus the fixed-frequency external memory
//!   domain.
//! * [`SplitMix64`] — a tiny, fully deterministic PRNG used everywhere a
//!   seeded random choice is needed (workload generation, clock jitter, PLL
//!   lock times). Using our own generator keeps every experiment bit-for-bit
//!   reproducible across platforms and dependency upgrades.
//! * [`stats`] — small statistics helpers (means, geometric means, running
//!   summaries) used by the experiment harnesses.
//! * [`fxmap`] — a seedable FxHash-style hasher with map/set aliases for
//!   the per-instruction hot paths, where SipHash's DoS resistance buys
//!   nothing on trusted, internally generated keys.
//!
//! # Example
//!
//! ```
//! use gals_common::{Femtos, Hertz};
//!
//! let f = Hertz::from_ghz(1.6);
//! let period = f.period();
//! assert_eq!(period, Femtos::new(625_000));
//! assert_eq!(period * 2, Femtos::new(1_250_000));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod fxmap;
mod ids;
mod rng;
pub mod stats;
mod time;

pub use ids::DomainId;
pub use rng::SplitMix64;
pub use time::{Femtos, Hertz};
