//! Environment-variable tuning knobs with loud failure reporting.
//!
//! The sweep engine reads a handful of `GALS_MCD_*` variables at
//! construction. Historically a malformed value (`GALS_MCD_COHORT_WIDTH=eight`)
//! was silently swallowed by `.ok().and_then(|v| v.parse().ok())` and the
//! default used — the worst failure mode for a tuning knob, because the
//! operator believes the override took effect. [`parse_env_or`] keeps the
//! fall-back-to-default behavior but prints one warning to stderr naming
//! the variable, the rejected value, and the default actually used.

//! This module is also the only place in the workspace allowed to touch
//! `std::env` directly (the `env-discipline` lint rule enforces it):
//! every knob read goes through [`parse_env_or`] (typed) or [`var`]
//! (strings), so a grep for `GALS_` here and in the bin docs is the
//! complete override surface.

use std::fmt::Display;
use std::str::FromStr;

/// Reads a string-valued variable (`None` when unset or non-unicode).
///
/// The sanctioned raw accessor for the handful of knobs that are paths
/// or addresses rather than parseable numbers; prefer [`parse_env_or`]
/// wherever a parse is involved so malformed overrides fail loudly.
pub fn var(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// True when `name` is set to exactly `"1"` (the workspace's boolean
/// knob convention, e.g. `GALS_MCD_SYNC_SUBSET=1`).
pub fn flag(name: &str) -> bool {
    var(name).is_some_and(|v| v == "1")
}

/// Sets a process-environment variable.
///
/// Mutating the environment is only sound before any thread that might
/// concurrently read it exists; the single caller (the throughput
/// reporter pinning `GALS_MCD_SYNC_SUBSET` at startup) runs on the main
/// thread before the sweep pool spawns. Centralized here so the
/// `env-discipline` rule keeps new call sites reviewable.
pub fn set_var(name: &str, value: &str) {
    std::env::set_var(name, value);
}

/// Reads `name` from the environment and parses it as `T`.
///
/// * Unset (or non-unicode) variable → `default`, silently: absence is
///   the normal state for a tuning knob.
/// * Present and parseable → the parsed value.
/// * Present but malformed → `default`, with one loud warning line on
///   stderr. A malformed override is an operator error and must never
///   be indistinguishable from a successful one.
pub fn parse_env_or<T>(name: &str, default: T) -> T
where
    T: FromStr + Display,
{
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => parse_value_or(name, &raw, default),
    }
}

/// The value-level half of [`parse_env_or`], split out so unit tests can
/// exercise the malformed-value path without mutating the process
/// environment (test binaries run threads concurrently; `set_var` races).
pub fn parse_value_or<T>(name: &str, raw: &str, default: T) -> T
where
    T: FromStr + Display,
{
    match raw.trim().parse::<T>() {
        Ok(v) => v,
        Err(_) => {
            eprintln!(
                "warning: ignoring malformed {name}={raw:?}: expected a value like \
                 {default}; using default {default}"
            );
            default
        }
    }
}

/// Reads `name` as a comma-separated list of `T` (e.g.
/// `GALS_SERVE_BENCH_CONNS=8,64,256`).
///
/// Same contract as [`parse_env_or`], applied to the whole list: unset
/// → `default` silently; any malformed or empty element rejects the
/// entire override with one loud warning (a half-applied list would be
/// worse than either extreme — the operator would get a grid they
/// never asked for).
pub fn parse_list_or<T>(name: &str, default: &[T]) -> Vec<T>
where
    T: FromStr + Display + Clone,
{
    match std::env::var(name) {
        Err(_) => default.to_vec(),
        Ok(raw) => parse_list_value_or(name, &raw, default),
    }
}

/// The value-level half of [`parse_list_or`] (see [`parse_value_or`]
/// for why the split exists).
pub fn parse_list_value_or<T>(name: &str, raw: &str, default: &[T]) -> Vec<T>
where
    T: FromStr + Display + Clone,
{
    let parsed: Result<Vec<T>, ()> = raw
        .split(',')
        .map(|part| part.trim().parse::<T>().map_err(|_| ()))
        .collect();
    match parsed {
        Ok(values) if !values.is_empty() => values,
        _ => {
            let shown: Vec<String> = default.iter().map(ToString::to_string).collect();
            eprintln!(
                "warning: ignoring malformed {name}={raw:?}: expected a comma-separated \
                 list like {}; using default",
                shown.join(",")
            );
            default.to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_values() {
        assert_eq!(parse_value_or("X", "12", 7u64), 12);
        assert_eq!(parse_value_or("X", " 12 ", 7u64), 12);
        assert_eq!(parse_value_or("X", "0", 7usize), 0);
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        assert_eq!(parse_value_or("X", "eight", 7u64), 7);
        assert_eq!(parse_value_or("X", "", 7u64), 7);
        assert_eq!(parse_value_or("X", "-3", 7u64), 7);
        assert_eq!(parse_value_or("X", "1e6", 7u64), 7);
        assert_eq!(parse_value_or("X", "4096k", 7usize), 7);
    }

    #[test]
    fn parses_well_formed_lists() {
        assert_eq!(parse_list_value_or("X", "8,64,256", &[1u64]), [8, 64, 256]);
        assert_eq!(parse_list_value_or("X", " 8 , 64 ", &[1u64]), [8, 64]);
        assert_eq!(parse_list_value_or("X", "42", &[1u64]), [42]);
    }

    #[test]
    fn malformed_lists_fall_back_whole() {
        assert_eq!(parse_list_value_or("X", "8,sixty,256", &[1u64, 2]), [1, 2]);
        assert_eq!(parse_list_value_or("X", "8,,256", &[1u64, 2]), [1, 2]);
        assert_eq!(parse_list_value_or("X", "", &[1u64, 2]), [1, 2]);
    }

    #[test]
    fn unset_variable_is_silent_default() {
        assert_eq!(
            parse_env_or("GALS_MCD_TEST_KNOB_THAT_IS_NEVER_SET", 42u64),
            42
        );
    }
}
