//! Time and frequency newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or absolute point in simulated time, in femtoseconds.
///
/// One femtosecond is 10⁻¹⁵ seconds. A `u64` of femtoseconds covers about
/// 5.1 hours of simulated time, far beyond any experiment in this workspace
/// (runs are micro- to milliseconds of simulated time).
///
/// `Femtos` is used both for absolute timestamps (time since simulation
/// start) and for durations; the arithmetic provided is the common subset
/// that is meaningful for both.
///
/// # Example
///
/// ```
/// use gals_common::Femtos;
///
/// let period = Femtos::new(625_000); // 1.6 GHz clock period
/// assert_eq!(period.as_ps(), 625.0);
/// assert_eq!((period * 4) / 2, Femtos::new(1_250_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Femtos(u64);

impl Femtos {
    /// Zero duration / simulation epoch.
    pub const ZERO: Femtos = Femtos(0);
    /// The maximum representable time; used as an "infinitely far away"
    /// sentinel for events that are not scheduled.
    pub const MAX: Femtos = Femtos(u64::MAX);

    /// Creates a time value from raw femtoseconds.
    #[inline]
    pub const fn new(fs: u64) -> Self {
        Femtos(fs)
    }

    /// Creates a time value from picoseconds (10⁻¹² s).
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Femtos(ps * 1_000)
    }

    /// Creates a time value from nanoseconds (10⁻⁹ s).
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Femtos(ns * 1_000_000)
    }

    /// Creates a time value from microseconds (10⁻⁶ s).
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Femtos(us * 1_000_000_000)
    }

    /// Creates a time value from a floating-point number of nanoseconds,
    /// rounding to the nearest femtosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        Femtos((ns * 1e6).round() as u64)
    }

    /// Raw femtosecond count.
    #[inline]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// This time expressed in picoseconds (lossy).
    #[inline]
    pub fn as_ps(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in nanoseconds (lossy).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in microseconds (lossy).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in seconds (lossy).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e15
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Femtos) -> Femtos {
        Femtos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Femtos) -> Option<Femtos> {
        self.0.checked_add(rhs.0).map(Femtos)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Femtos) -> Femtos {
        Femtos(self.0.max(other.0))
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Femtos) -> Femtos {
        Femtos(self.0.min(other.0))
    }
}

impl Add for Femtos {
    type Output = Femtos;
    #[inline]
    fn add(self, rhs: Femtos) -> Femtos {
        Femtos(self.0 + rhs.0)
    }
}

impl AddAssign for Femtos {
    #[inline]
    fn add_assign(&mut self, rhs: Femtos) {
        self.0 += rhs.0;
    }
}

impl Sub for Femtos {
    type Output = Femtos;
    #[inline]
    fn sub(self, rhs: Femtos) -> Femtos {
        Femtos(self.0 - rhs.0)
    }
}

impl SubAssign for Femtos {
    #[inline]
    fn sub_assign(&mut self, rhs: Femtos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Femtos {
    type Output = Femtos;
    #[inline]
    fn mul(self, rhs: u64) -> Femtos {
        Femtos(self.0 * rhs)
    }
}

impl Div<u64> for Femtos {
    type Output = Femtos;
    #[inline]
    fn div(self, rhs: u64) -> Femtos {
        Femtos(self.0 / rhs)
    }
}

impl Sum for Femtos {
    fn sum<I: Iterator<Item = Femtos>>(iter: I) -> Femtos {
        iter.fold(Femtos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Femtos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} µs", self.as_us())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ns", self.as_ns())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ps", self.as_ps())
        } else {
            write!(f, "{} fs", self.0)
        }
    }
}

/// A clock frequency in hertz.
///
/// Stored as an integral number of Hz so that frequency tables (e.g. the
/// configuration→frequency curves of Figures 2–4 of the paper) are exact and
/// hashable/comparable.
///
/// # Example
///
/// ```
/// use gals_common::Hertz;
///
/// let f = Hertz::from_mhz(1_520);
/// assert_eq!(f.as_ghz(), 1.52);
/// assert!(Hertz::from_ghz(1.0).period().as_ps() == 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hertz(u64);

impl Hertz {
    /// Creates a frequency from raw hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero — a clock domain cannot be stopped in this
    /// model (the paper's domains always run; only their frequency changes).
    #[inline]
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Hertz(hz)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: u64) -> Self {
        Hertz::new(mhz * 1_000_000)
    }

    /// Creates a frequency from (possibly fractional) gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite or not positive.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency: {ghz} GHz");
        Hertz::new((ghz * 1e9).round() as u64)
    }

    /// Raw hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Frequency in megahertz (lossy).
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Frequency in gigahertz (lossy).
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The period of this clock, rounded to the nearest femtosecond.
    #[inline]
    pub fn period(self) -> Femtos {
        const FS_PER_SEC: u128 = 1_000_000_000_000_000;
        let hz = self.0 as u128;
        Femtos(((FS_PER_SEC + hz / 2) / hz) as u64)
    }

    /// Number of whole periods of this clock in `dur`, rounding down.
    #[inline]
    pub fn cycles_in(self, dur: Femtos) -> u64 {
        dur.as_fs() / self.period().as_fs()
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} GHz", self.as_ghz())
        } else {
            write!(f, "{:.1} MHz", self.as_mhz())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn femtos_constructors_agree() {
        assert_eq!(Femtos::from_ps(1), Femtos::new(1_000));
        assert_eq!(Femtos::from_ns(1), Femtos::new(1_000_000));
        assert_eq!(Femtos::from_us(1), Femtos::new(1_000_000_000));
        assert_eq!(Femtos::from_ns_f64(0.5), Femtos::new(500_000));
    }

    #[test]
    fn femtos_arithmetic() {
        let a = Femtos::new(10);
        let b = Femtos::new(3);
        assert_eq!(a + b, Femtos::new(13));
        assert_eq!(a - b, Femtos::new(7));
        assert_eq!(a * 3, Femtos::new(30));
        assert_eq!(a / 3, Femtos::new(3));
        assert_eq!(b.saturating_sub(a), Femtos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn femtos_sum() {
        let total: Femtos = (1..=4).map(Femtos::new).sum();
        assert_eq!(total, Femtos::new(10));
    }

    #[test]
    fn femtos_display_scales() {
        assert_eq!(format!("{}", Femtos::new(12)), "12 fs");
        assert_eq!(format!("{}", Femtos::from_ps(12)), "12.000 ps");
        assert_eq!(format!("{}", Femtos::from_ns(12)), "12.000 ns");
        assert_eq!(format!("{}", Femtos::from_us(12)), "12.000 µs");
    }

    #[test]
    fn hertz_period_exact_for_common_frequencies() {
        assert_eq!(Hertz::from_ghz(1.0).period(), Femtos::new(1_000_000));
        assert_eq!(Hertz::from_ghz(1.6).period(), Femtos::new(625_000));
        assert_eq!(Hertz::from_ghz(2.0).period(), Femtos::new(500_000));
        assert_eq!(Hertz::from_mhz(250).period(), Femtos::new(4_000_000));
    }

    #[test]
    fn hertz_period_rounds() {
        // 3 GHz -> 333,333.3 fs, rounds to 333,333.
        let p = Hertz::from_ghz(3.0).period().as_fs();
        assert!((333_333..=333_334).contains(&p), "{p}");
    }

    #[test]
    fn cycles_in_duration() {
        let f = Hertz::from_ghz(1.0);
        assert_eq!(f.cycles_in(Femtos::from_ns(10)), 10);
        assert_eq!(f.cycles_in(Femtos::new(999_999)), 0);
    }

    #[test]
    #[should_panic(expected = "frequency must be non-zero")]
    fn zero_frequency_rejected() {
        let _ = Hertz::new(0);
    }

    #[test]
    fn display_hertz() {
        assert_eq!(format!("{}", Hertz::from_ghz(1.52)), "1.520 GHz");
        assert_eq!(format!("{}", Hertz::from_mhz(80)), "80.0 MHz");
    }
}
