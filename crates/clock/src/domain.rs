//! A free-running, jittered, frequency-agile domain clock.

use gals_common::{DomainId, Femtos, Hertz, SplitMix64};

use crate::pll::Pll;

/// Maximum supported jitter fraction. Bounded so that consecutive edges can
/// never reorder (|jitter| < period/2 on both sides of an ideal edge).
const MAX_JITTER_FRAC: f64 = 0.4;

#[derive(Debug, Clone, Copy)]
struct PendingChange {
    target: Hertz,
    complete_at: Femtos,
}

/// One clock domain's rising-edge generator.
///
/// Edges lie on an ideal grid `base + k·period` perturbed by bounded,
/// deterministic, seeded jitter. The emitted edge sequence is strictly
/// monotone. Frequency changes go through a [`Pll`] relock: the clock keeps
/// running at the old frequency during the lock interval and switches to
/// the new period at the first edge past lock completion (§2: domains
/// "continue operating through a frequency change").
///
/// # Example
///
/// ```
/// use gals_clock::DomainClock;
/// use gals_common::{DomainId, Hertz, SplitMix64};
///
/// let mut clk = DomainClock::new(
///     DomainId::LoadStore,
///     Hertz::from_ghz(1.0),
///     0.0, // no jitter: exact 1 ns edges
///     SplitMix64::new(1),
/// );
/// assert_eq!(clk.tick().as_fs(), 1_000_000);
/// assert_eq!(clk.tick().as_fs(), 2_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct DomainClock {
    id: DomainId,
    freq: Hertz,
    period: Femtos,
    jitter_frac: f64,
    rng: SplitMix64,
    pll: Pll,
    /// Time of the ideal grid origin (edge index 0; not itself an edge).
    grid_base: Femtos,
    /// Index of the next ideal edge on the grid (1-based from `grid_base`).
    grid_index: u64,
    /// Total edges emitted since construction.
    cycle: u64,
    /// Time of the most recently emitted edge.
    last_edge: Femtos,
    /// Precomputed time of the next edge.
    next_edge: Femtos,
    pending: Option<PendingChange>,
}

impl DomainClock {
    /// Creates a clock whose first edge falls one (jittered) period after
    /// time zero.
    ///
    /// `jitter_frac` is the peak-to-peak half-amplitude of cycle-to-cycle
    /// jitter as a fraction of the period (e.g. `0.02` = ±2%).
    ///
    /// # Panics
    ///
    /// Panics if `jitter_frac` is negative, not finite, or above 0.4.
    pub fn new(id: DomainId, freq: Hertz, jitter_frac: f64, mut rng: SplitMix64) -> Self {
        assert!(
            jitter_frac.is_finite() && (0.0..=MAX_JITTER_FRAC).contains(&jitter_frac),
            "jitter fraction must be in [0, {MAX_JITTER_FRAC}]: {jitter_frac}"
        );
        let pll = Pll::new(rng.fork(0x504C_4C00));
        let mut clk = DomainClock {
            id,
            freq,
            period: freq.period(),
            jitter_frac,
            rng,
            pll,
            grid_base: Femtos::ZERO,
            grid_index: 1,
            cycle: 0,
            last_edge: Femtos::ZERO,
            next_edge: Femtos::ZERO,
            pending: None,
        };
        clk.next_edge = clk.jittered(clk.ideal(1));
        clk
    }

    /// Creates a clock with a fixed phase offset of the ideal grid, so that
    /// independent domains do not share edge alignment. The offset is
    /// reduced modulo the period.
    pub fn with_phase(
        id: DomainId,
        freq: Hertz,
        jitter_frac: f64,
        phase: Femtos,
        rng: SplitMix64,
    ) -> Self {
        let mut clk = DomainClock::new(id, freq, jitter_frac, rng);
        clk.grid_base = Femtos::new(phase.as_fs() % clk.period.as_fs());
        clk.next_edge = clk.jittered(clk.ideal(1));
        clk
    }

    #[inline]
    fn ideal(&self, index: u64) -> Femtos {
        self.grid_base + self.period * index
    }

    #[inline]
    fn jittered(&mut self, ideal: Femtos) -> Femtos {
        if self.jitter_frac == 0.0 {
            return ideal;
        }
        let amp = (self.period.as_fs() as f64 * self.jitter_frac) as u64;
        if amp == 0 {
            return ideal;
        }
        let j = self.rng.next_below(2 * amp + 1) as i64 - amp as i64;
        if j >= 0 {
            ideal + Femtos::new(j as u64)
        } else {
            ideal.saturating_sub(Femtos::new((-j) as u64))
        }
    }

    /// Domain this clock drives.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Current operating frequency (the old frequency during a relock).
    pub fn frequency(&self) -> Hertz {
        self.freq
    }

    /// Current period.
    pub fn period(&self) -> Femtos {
        self.period
    }

    /// Total edges emitted so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Time of the most recent edge ([`Femtos::ZERO`] before the first).
    pub fn last_edge(&self) -> Femtos {
        self.last_edge
    }

    /// Time of the next edge, without advancing.
    pub fn peek_next_edge(&self) -> Femtos {
        self.next_edge
    }

    /// True while a frequency change is waiting for PLL lock.
    pub fn is_locking(&self) -> bool {
        self.pending.is_some()
    }

    /// The frequency that will take effect once the current relock
    /// completes, if any.
    pub fn target_frequency(&self) -> Option<Hertz> {
        self.pending.map(|p| p.target)
    }

    /// Advances to the next rising edge and returns its time.
    ///
    /// If a pending frequency change has completed its PLL lock by this
    /// edge, the new period takes effect for subsequent edges (the grid is
    /// re-based at this edge).
    pub fn tick(&mut self) -> Femtos {
        let edge = self.next_edge;
        debug_assert!(edge > self.last_edge || self.cycle == 0);
        self.last_edge = edge;
        self.cycle += 1;
        self.grid_index += 1;

        if let Some(p) = self.pending {
            if p.complete_at <= edge {
                self.freq = p.target;
                self.period = p.target.period();
                self.grid_base = edge;
                self.grid_index = 1;
                self.pending = None;
            }
        }

        let ideal = self.ideal(self.grid_index);
        let mut next = self.jittered(ideal);
        if next <= edge {
            // Extreme jitter draw on a rebased grid; clamp forward to
            // preserve strict monotonicity.
            next = edge + Femtos::new(1);
        }
        self.next_edge = next;
        edge
    }

    /// Advances past every edge strictly before `horizon`, exactly as if
    /// [`DomainClock::tick`] had been called once per such edge, and
    /// returns how many edges were consumed.
    ///
    /// When the edge sequence over the span is arithmetically determined
    /// — zero effective jitter and no relock pending — the jump is O(1):
    /// edges lie exactly on the ideal grid, so the index arithmetic
    /// replaces the per-edge loop. This is what makes idle-skipping
    /// cheap for synchronous machines, whose bulk-skip spans cover
    /// hundreds of edges per memory stall. Otherwise each edge is
    /// generated individually, because a jittered edge consumes one RNG
    /// draw (and a relock re-bases the grid mid-span), and producing
    /// them one by one is the only way to keep the RNG stream — and
    /// therefore every downstream result — bit-identical.
    pub fn fast_forward_to(&mut self, horizon: Femtos) -> u64 {
        if self.next_edge >= horizon {
            return 0;
        }
        let amp = (self.period.as_fs() as f64 * self.jitter_frac) as u64;
        if amp != 0 || self.pending.is_some() {
            // `jittered` draws RNG exactly when amp != 0, so this
            // condition mirrors the per-edge stream consumption.
            let mut n = 0;
            while self.next_edge < horizon {
                self.tick();
                n += 1;
            }
            return n;
        }
        // Jitter-free, relock-free: `next_edge == ideal(grid_index)` and
        // every future edge sits at `grid_base + period·i`.
        debug_assert_eq!(self.next_edge, self.ideal(self.grid_index));
        let p = self.period.as_fs();
        // Last grid index whose edge time is strictly before `horizon`.
        let last_i = (horizon.as_fs() - 1 - self.grid_base.as_fs()) / p;
        debug_assert!(last_i >= self.grid_index);
        let n = last_i - self.grid_index + 1;
        self.cycle += n;
        self.grid_index += n;
        self.last_edge = self.ideal(self.grid_index - 1);
        self.next_edge = self.ideal(self.grid_index);
        n
    }

    /// Begins a frequency change to `target`, sampling a PLL lock time.
    /// Returns the completion time. The clock continues at the current
    /// frequency until then.
    ///
    /// Calling again while a change is pending replaces the pending target
    /// and restarts the lock interval (the controller in the paper never
    /// does this — decisions are spaced by 15K-instruction intervals an
    /// order of magnitude longer than the lock time — but the model is
    /// defined for robustness).
    pub fn begin_frequency_change(&mut self, target: Hertz) -> Femtos {
        if target == self.freq && self.pending.is_none() {
            return self.last_edge;
        }
        let lock = self.pll.sample_lock_time();
        let complete_at = self.last_edge + lock;
        self.pending = Some(PendingChange {
            target,
            complete_at,
        });
        complete_at
    }

    /// Replaces the PLL model (for ablation studies over lock times).
    pub fn set_pll(&mut self, pll: Pll) {
        self.pll = pll;
    }

    /// Immediately sets the frequency without a relock. Used to construct
    /// baseline machines and in tests; run-time adaptation must use
    /// [`DomainClock::begin_frequency_change`].
    pub fn set_frequency_immediate(&mut self, target: Hertz) {
        self.freq = target;
        self.period = target.period();
        self.grid_base = self.last_edge;
        self.grid_index = 1;
        self.pending = None;
        let ideal = self.ideal(1);
        let mut next = self.jittered(ideal);
        if next <= self.last_edge {
            next = self.last_edge + Femtos::new(1);
        }
        self.next_edge = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clk(freq_ghz: f64, jitter: f64, seed: u64) -> DomainClock {
        DomainClock::new(
            DomainId::Integer,
            Hertz::from_ghz(freq_ghz),
            jitter,
            SplitMix64::new(seed),
        )
    }

    #[test]
    fn jitter_free_edges_on_grid() {
        let mut c = clk(1.0, 0.0, 1);
        for k in 1..=100u64 {
            assert_eq!(c.tick(), Femtos::new(k * 1_000_000));
        }
        assert_eq!(c.cycle(), 100);
    }

    /// `fast_forward_to` must leave the clock in exactly the state that
    /// the equivalent number of `tick` calls would — the O(1) arithmetic
    /// jump for jitter-free clocks and the per-edge loop for jittered
    /// ones must both be indistinguishable from ticking.
    #[test]
    fn fast_forward_is_equivalent_to_ticking() {
        for (jitter, seed) in [(0.0, 1u64), (0.0, 9), (0.01, 1), (0.05, 7)] {
            let mut ff = clk(1.6, jitter, seed);
            let mut tk = clk(1.6, jitter, seed);
            // Interleave jumps of assorted spans with normal ticks.
            for (i, span_edges) in [3u64, 1, 250, 17, 1000, 2].iter().enumerate() {
                // Choose a horizon a fractional period past the span.
                let horizon =
                    tk.peek_next_edge() + tk.period() * *span_edges + Femtos::new(137 * i as u64);
                let mut n_tk = 0;
                while tk.peek_next_edge() < horizon {
                    tk.tick();
                    n_tk += 1;
                }
                let n_ff = ff.fast_forward_to(horizon);
                assert_eq!(n_ff, n_tk, "jitter {jitter}: edge counts diverged");
                assert_eq!(ff.cycle(), tk.cycle());
                assert_eq!(ff.last_edge(), tk.last_edge());
                assert_eq!(ff.peek_next_edge(), tk.peek_next_edge());
                // A few plain ticks between jumps keep both streams hot.
                for _ in 0..5 {
                    assert_eq!(ff.tick(), tk.tick());
                }
            }
        }
    }

    #[test]
    fn fast_forward_noop_when_horizon_not_reached() {
        let mut c = clk(1.0, 0.0, 1);
        let before = c.peek_next_edge();
        assert_eq!(c.fast_forward_to(before), 0, "strictly-before semantics");
        assert_eq!(c.peek_next_edge(), before);
        assert_eq!(c.cycle(), 0);
    }

    #[test]
    fn fast_forward_falls_back_during_relock() {
        let mut c = clk(1.0, 0.0, 3);
        c.tick();
        let done = c.begin_frequency_change(Hertz::from_ghz(2.0));
        let mut tk = clk(1.0, 0.0, 3);
        tk.tick();
        let done_tk = tk.begin_frequency_change(Hertz::from_ghz(2.0));
        assert_eq!(done, done_tk);
        // Jump across the relock boundary: the grid re-bases mid-span,
        // so the fallback loop must be taken and match plain ticking.
        let horizon = done + Femtos::from_ns(10);
        let n = c.fast_forward_to(horizon);
        let mut m = 0;
        while tk.peek_next_edge() < horizon {
            tk.tick();
            m += 1;
        }
        assert_eq!(n, m);
        assert_eq!(c.peek_next_edge(), tk.peek_next_edge());
        assert_eq!(c.frequency(), tk.frequency());
        assert_eq!(c.cycle(), tk.cycle());
    }

    #[test]
    fn edges_strictly_monotone_with_jitter() {
        let mut c = clk(1.52, 0.05, 2);
        let mut prev = Femtos::ZERO;
        for _ in 0..100_000 {
            let e = c.tick();
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn jitter_stays_near_ideal_grid() {
        let mut c = clk(1.0, 0.02, 3);
        for k in 1..=10_000u64 {
            let e = c.tick().as_fs() as i64;
            let ideal = (k * 1_000_000) as i64;
            assert!((e - ideal).abs() <= 20_000, "edge {k}: {e} vs {ideal}");
        }
    }

    #[test]
    fn phase_offset_shifts_grid() {
        let a = DomainClock::with_phase(
            DomainId::FrontEnd,
            Hertz::from_ghz(1.0),
            0.0,
            Femtos::new(250_000),
            SplitMix64::new(4),
        );
        assert_eq!(a.peek_next_edge(), Femtos::new(1_250_000));
    }

    #[test]
    fn frequency_change_waits_for_lock() {
        let mut c = clk(1.0, 0.0, 5);
        c.tick();
        let done = c.begin_frequency_change(Hertz::from_ghz(2.0));
        assert!(c.is_locking());
        assert_eq!(c.target_frequency(), Some(Hertz::from_ghz(2.0)));
        // Lock time within the paper's 10-20 µs.
        let lock = done - c.last_edge();
        assert!(lock >= Femtos::from_us(10) && lock <= Femtos::from_us(20));
        // Old frequency until completion.
        while c.peek_next_edge() < done {
            c.tick();
            assert_eq!(c.frequency(), Hertz::from_ghz(1.0));
        }
        // First edge past completion applies the new frequency.
        c.tick();
        c.tick();
        assert_eq!(c.frequency(), Hertz::from_ghz(2.0));
        assert!(!c.is_locking());
        assert_eq!(c.period(), Femtos::new(500_000));
    }

    #[test]
    fn change_to_same_frequency_is_noop() {
        let mut c = clk(1.0, 0.0, 6);
        c.tick();
        c.begin_frequency_change(Hertz::from_ghz(1.0));
        assert!(!c.is_locking());
    }

    #[test]
    fn immediate_change_rebases_grid() {
        let mut c = clk(1.0, 0.0, 7);
        c.tick(); // t = 1 ns
        c.set_frequency_immediate(Hertz::from_ghz(0.5));
        assert_eq!(c.tick(), Femtos::new(3_000_000)); // 1 ns + 2 ns period
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn excessive_jitter_rejected() {
        let _ = clk(1.0, 0.5, 8);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = clk(1.3, 0.03, 9);
        let mut b = a.clone();
        for _ in 0..1000 {
            assert_eq!(a.tick(), b.tick());
        }
    }
}
