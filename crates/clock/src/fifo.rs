//! Cross-domain synchronization FIFOs.
//!
//! The MCD interfaces between clock domains are queues: the producer
//! enqueues on its own clock edges and the consumer dequeues on its own,
//! with the synchronizer's setup window (see [`SyncModel`]) governing when
//! a freshly written entry becomes safely visible. Semeraro et al. [28]
//! show that when such a queue is non-empty, the synchronization latency
//! is hidden — the consumer reads older entries while new ones settle.
//! This type models exactly that: per-entry visibility timestamps over a
//! bounded ring.
//!
//! The pipeline simulator in `gals-core` inlines equivalent logic for its
//! dispatch/completion paths; `SyncFifo` is the reusable, stand-alone
//! form for building other GALS interconnect models.

use std::collections::VecDeque;

use gals_common::Femtos;

use crate::sync::SyncModel;

/// A bounded FIFO crossing a clock-domain boundary.
///
/// Entries are tagged at enqueue time with the earliest instant the
/// consumer may observe them. Capacity models the physical queue; a full
/// queue exerts backpressure (enqueue fails).
///
/// # Example
///
/// ```
/// use gals_clock::{SyncFifo, SyncModel};
/// use gals_common::Femtos;
///
/// let mut q: SyncFifo<u32> = SyncFifo::new(4, SyncModel::default());
/// let producer_period = Femtos::from_ps(625);
/// let consumer_period = Femtos::from_ps(800);
///
/// q.enqueue(7, Femtos::from_ns(10), producer_period, consumer_period)
///     .unwrap();
/// // Immediately after the producing edge the value is still settling:
/// assert_eq!(q.dequeue(Femtos::from_ns(10)), None);
/// // One consumer cycle later it is safely visible:
/// assert_eq!(q.dequeue(Femtos::from_ns(11)), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct SyncFifo<T> {
    capacity: usize,
    sync: SyncModel,
    entries: VecDeque<(Femtos, T)>,
    enqueued: u64,
    dequeued: u64,
    rejected: u64,
}

/// Error returned when enqueueing into a full FIFO (backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull;

impl std::fmt::Display for FifoFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("synchronization FIFO is full")
    }
}

impl std::error::Error for FifoFull {}

impl<T> SyncFifo<T> {
    /// Creates a FIFO with the given capacity and synchronization model.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, sync: SyncModel) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        SyncFifo {
            capacity,
            sync,
            entries: VecDeque::with_capacity(capacity),
            enqueued: 0,
            dequeued: 0,
            rejected: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently queued (visible or still settling).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when at capacity (producer must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Enqueues `value` at producer edge `at`.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] (and counts the rejection) when the queue is
    /// at capacity — the producer domain must retry on a later edge.
    pub fn enqueue(
        &mut self,
        value: T,
        at: Femtos,
        producer_period: Femtos,
        consumer_period: Femtos,
    ) -> Result<(), FifoFull> {
        if self.is_full() {
            self.rejected += 1;
            return Err(FifoFull);
        }
        let visible = self.sync.ready_time(at, producer_period, consumer_period);
        debug_assert!(
            self.entries.back().is_none_or(|(v, _)| *v <= visible),
            "enqueue times must be monotone"
        );
        self.entries.push_back((visible, value));
        self.enqueued += 1;
        Ok(())
    }

    /// Time at which the head entry becomes consumable, if any.
    pub fn head_visible_at(&self) -> Option<Femtos> {
        self.entries.front().map(|(v, _)| *v)
    }

    /// Dequeues the head entry if it is visible by consumer edge `now`.
    /// The "hidden synchronization" effect falls out naturally: with a
    /// backlog, the head entry's visibility time is long past.
    pub fn dequeue(&mut self, now: Femtos) -> Option<T> {
        match self.entries.front() {
            Some((visible, _)) if *visible <= now => {
                self.dequeued += 1;
                self.entries.pop_front().map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Total accepted enqueues.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total successful dequeues.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Total rejected (backpressured) enqueues.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo(cap: usize) -> SyncFifo<u64> {
        SyncFifo::new(cap, SyncModel::default())
    }

    const P: Femtos = Femtos::new(625_000); // 1.6 GHz
    const C: Femtos = Femtos::new(800_000); // 1.25 GHz

    #[test]
    fn fifo_order_preserved() {
        let mut q = fifo(8);
        for i in 0..5u64 {
            q.enqueue(i, Femtos::from_ns(10 + i), P, C).unwrap();
        }
        let late = Femtos::from_ns(100);
        for i in 0..5u64 {
            assert_eq!(q.dequeue(late), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn setup_window_delays_head() {
        let mut q = fifo(2);
        let t = Femtos::from_ns(50);
        q.enqueue(1, t, P, C).unwrap();
        // Window = 0.3 * 625 ps = 187.5 ps.
        assert_eq!(q.dequeue(t), None);
        assert_eq!(q.dequeue(t + Femtos::from_ps(187)), None);
        assert_eq!(q.dequeue(t + Femtos::from_ps(188)), Some(1));
    }

    #[test]
    fn backlog_hides_synchronization() {
        let mut q = fifo(8);
        for i in 0..4u64 {
            q.enqueue(i, Femtos::from_ns(10 + i), P, C).unwrap();
        }
        // Long after the enqueues, every dequeue succeeds immediately —
        // the settling happened while the entries waited in the queue.
        let mut now = Femtos::from_ns(30);
        for i in 0..4u64 {
            assert_eq!(q.dequeue(now), Some(i));
            now += C;
        }
    }

    #[test]
    fn backpressure_counted() {
        let mut q = fifo(2);
        q.enqueue(1, Femtos::from_ns(1), P, C).unwrap();
        q.enqueue(2, Femtos::from_ns(2), P, C).unwrap();
        assert!(q.is_full());
        assert_eq!(q.enqueue(3, Femtos::from_ns(3), P, C), Err(FifoFull));
        assert_eq!(q.total_rejected(), 1);
        assert_eq!(q.total_enqueued(), 2);
        // Draining frees space.
        assert!(q.dequeue(Femtos::from_ns(20)).is_some());
        assert!(q.enqueue(3, Femtos::from_ns(21), P, C).is_ok());
    }

    #[test]
    fn head_visible_time_exposed() {
        let mut q = fifo(2);
        assert_eq!(q.head_visible_at(), None);
        let t = Femtos::from_ns(5);
        q.enqueue(9, t, P, C).unwrap();
        let v = q.head_visible_at().unwrap();
        assert!(v > t && v <= t + P);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = fifo(0);
    }
}
