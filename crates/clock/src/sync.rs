//! Cross-domain synchronization cost model.

use gals_common::Femtos;

/// The inter-domain synchronization rule of the MCD simulator, after
/// Sjogren and Myers (§2):
///
/// > "It imposes a delay of one cycle in the consumer domain whenever the
/// > distance between the edges of the two clocks is within 30% of the
/// > period of the faster clock."
///
/// Mechanically: a value produced at a producer edge `t` cannot be latched
/// by a consumer edge that falls less than `0.3·T_fast` after `t` (the
/// synchronizer's setup window); such an edge "misses" the value and the
/// consumer catches it one cycle later. This is implemented by exposing the
/// earliest *safe* time [`SyncModel::ready_time`]; the consumer uses the
/// value at its first edge at or after that time.
///
/// # Example
///
/// ```
/// use gals_clock::SyncModel;
/// use gals_common::Femtos;
///
/// let sync = SyncModel::default();
/// let produced = Femtos::from_ns(10);
/// let ready = sync.ready_time(produced, Femtos::from_ps(625), Femtos::from_ps(800));
/// // Faster period is 625 ps; safe 187.5 ps after production.
/// assert_eq!(ready, produced + Femtos::new(187_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncModel {
    threshold_frac: f64,
}

impl SyncModel {
    /// Creates a model with the given setup-window fraction of the faster
    /// clock's period.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_frac` is negative, not finite, or ≥ 1.
    pub fn new(threshold_frac: f64) -> Self {
        assert!(
            threshold_frac.is_finite() && (0.0..1.0).contains(&threshold_frac),
            "threshold must be in [0, 1): {threshold_frac}"
        );
        SyncModel { threshold_frac }
    }

    /// A model that imposes no synchronization penalty (used for the fully
    /// synchronous baseline, which has no domain boundaries).
    pub fn disabled() -> Self {
        SyncModel {
            threshold_frac: 0.0,
        }
    }

    /// The setup-window fraction.
    pub fn threshold_frac(&self) -> f64 {
        self.threshold_frac
    }

    /// Earliest time at which a value produced at `produced_at` (an edge of
    /// the producer clock) may be latched by the consumer, given both
    /// current periods.
    #[inline]
    pub fn ready_time(
        &self,
        produced_at: Femtos,
        producer_period: Femtos,
        consumer_period: Femtos,
    ) -> Femtos {
        if self.threshold_frac == 0.0 {
            return produced_at;
        }
        let fast = producer_period.min(consumer_period).as_fs() as f64;
        produced_at + Femtos::new((self.threshold_frac * fast).ceil() as u64)
    }
}

impl Default for SyncModel {
    /// The paper's 30% rule.
    fn default() -> Self {
        SyncModel {
            threshold_frac: 0.3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_30_percent() {
        assert_eq!(SyncModel::default().threshold_frac(), 0.3);
    }

    #[test]
    fn window_uses_faster_period() {
        let s = SyncModel::default();
        let t = Femtos::from_ns(100);
        let fast = Femtos::from_ps(500);
        let slow = Femtos::from_ps(900);
        // Same window regardless of which side is faster.
        assert_eq!(s.ready_time(t, fast, slow), s.ready_time(t, slow, fast));
        assert_eq!(s.ready_time(t, fast, slow), t + Femtos::from_ps(150));
    }

    #[test]
    fn disabled_imposes_nothing() {
        let s = SyncModel::disabled();
        let t = Femtos::from_ns(5);
        assert_eq!(
            s.ready_time(t, Femtos::from_ps(625), Femtos::from_ps(625)),
            t
        );
    }

    #[test]
    fn consumer_edge_inside_window_slips_one_cycle() {
        // Behavioural check of the rule as the simulator applies it:
        // consumer edges every 800 ps starting at 10 ns; producer edge at
        // 10.1 ns; window = 0.3 * 625 ps = 187.5 ps.
        let s = SyncModel::default();
        let produced = Femtos::new(10_100_000);
        let ready = s.ready_time(produced, Femtos::from_ps(625), Femtos::from_ps(800));
        // Next consumer edge at 10.4 ns is outside the window -> usable.
        assert!(Femtos::new(10_400_000) >= ready);
        // An edge at 10.2 ns would have been inside the window -> unusable.
        assert!(Femtos::new(10_200_000) < ready);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn invalid_threshold_rejected() {
        let _ = SyncModel::new(1.0);
    }
}
