//! Clock-domain substrate for the GALS/MCD simulator.
//!
//! The adaptive MCD processor has four independently clocked domains plus a
//! fixed-frequency external memory domain (Figure 1). This crate models:
//!
//! * [`DomainClock`] — a free-running clock with deterministic seeded
//!   cycle-to-cycle **jitter**, producing a strictly monotone sequence of
//!   rising edges on a femtosecond timeline.
//! * [`Pll`] / frequency changes — §2: "The dynamic frequency control
//!   circuit within each of these domains is a PLL clocking circuit …
//!   The lock time in our experiments is normally distributed with a mean
//!   time of 15 µs and a range of 10–20 µs. As in the XScale processor, we
//!   assume that a domain is able to continue operating through a frequency
//!   change."
//! * [`SyncModel`] — the Sjogren–Myers-style synchronization rule used by
//!   the MCD simulator: a cross-domain value "imposes a delay of one cycle
//!   in the consumer domain whenever the distance between the edges of the
//!   two clocks is within 30% of the period of the faster clock."
//!
//! # Example
//!
//! ```
//! use gals_clock::DomainClock;
//! use gals_common::{DomainId, Hertz, SplitMix64};
//!
//! let mut clk = DomainClock::new(
//!     DomainId::Integer,
//!     Hertz::from_ghz(1.52),
//!     0.02,
//!     SplitMix64::new(7),
//! );
//! let first = clk.tick();
//! let second = clk.tick();
//! assert!(second > first, "edges advance monotonically");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod domain;
mod fifo;
mod pll;
mod sync;

pub use domain::DomainClock;
pub use fifo::{FifoFull, SyncFifo};
pub use pll::Pll;
pub use sync::SyncModel;

pub use gals_common::{DomainId, Femtos, Hertz};
