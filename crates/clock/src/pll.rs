//! PLL lock-time model.

use gals_common::{Femtos, SplitMix64};

/// Samples PLL relock durations for dynamic frequency changes.
///
/// §2: lock time is "normally distributed with a mean time of 15µs and a
/// range of 10–20µs". We sample a normal with mean 15 µs and a standard
/// deviation of 5/3 µs (so ±3σ spans the stated range) and clamp to the
/// range, which reproduces both the mean and the hard bounds.
#[derive(Debug, Clone)]
pub struct Pll {
    mean: Femtos,
    std_dev_fs: f64,
    min: Femtos,
    max: Femtos,
    rng: SplitMix64,
}

impl Pll {
    /// Creates the paper's PLL model with a dedicated RNG stream.
    pub fn new(rng: SplitMix64) -> Self {
        Pll {
            mean: Femtos::from_us(15),
            std_dev_fs: Femtos::from_us(5).as_fs() as f64 / 3.0,
            min: Femtos::from_us(10),
            max: Femtos::from_us(20),
            rng,
        }
    }

    /// The paper's model with all time parameters multiplied by `scale`
    /// (for lock-time sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn scaled(rng: SplitMix64, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "invalid PLL scale {scale}"
        );
        let us = |v: f64| Femtos::new((v * 1e9 * scale) as u64);
        Pll {
            mean: us(15.0),
            std_dev_fs: 5e9 * scale / 3.0,
            min: us(10.0),
            max: us(20.0),
            rng,
        }
    }

    /// Creates a PLL with explicit parameters (for tests and ablations).
    pub fn with_parameters(
        mean: Femtos,
        std_dev: Femtos,
        min: Femtos,
        max: Femtos,
        rng: SplitMix64,
    ) -> Self {
        assert!(
            min <= mean && mean <= max,
            "mean must lie within [min, max]"
        );
        Pll {
            mean,
            std_dev_fs: std_dev.as_fs() as f64,
            min,
            max,
            rng,
        }
    }

    /// Mean lock time.
    pub fn mean(&self) -> Femtos {
        self.mean
    }

    /// Samples one relock duration.
    pub fn sample_lock_time(&mut self) -> Femtos {
        let x = self
            .rng
            .next_normal(self.mean.as_fs() as f64, self.std_dev_fs);
        let clamped = x.clamp(self.min.as_fs() as f64, self.max.as_fs() as f64);
        Femtos::new(clamped as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_within_range() {
        let mut pll = Pll::new(SplitMix64::new(1));
        for _ in 0..10_000 {
            let t = pll.sample_lock_time();
            assert!(t >= Femtos::from_us(10) && t <= Femtos::from_us(20), "{t}");
        }
    }

    #[test]
    fn mean_close_to_15us() {
        let mut pll = Pll::new(SplitMix64::new(2));
        let n = 20_000u64;
        let total: u128 = (0..n).map(|_| pll.sample_lock_time().as_fs() as u128).sum();
        let mean_us = total as f64 / n as f64 / 1e9;
        assert!((mean_us - 15.0).abs() < 0.15, "mean {mean_us} µs");
    }

    #[test]
    fn custom_parameters_respected() {
        let mut pll = Pll::with_parameters(
            Femtos::from_us(5),
            Femtos::new(0),
            Femtos::from_us(5),
            Femtos::from_us(5),
            SplitMix64::new(3),
        );
        assert_eq!(pll.sample_lock_time(), Femtos::from_us(5));
        assert_eq!(pll.mean(), Femtos::from_us(5));
    }

    #[test]
    #[should_panic(expected = "mean must lie within")]
    fn invalid_parameters_rejected() {
        let _ = Pll::with_parameters(
            Femtos::from_us(30),
            Femtos::new(0),
            Femtos::from_us(10),
            Femtos::from_us(20),
            SplitMix64::new(4),
        );
    }
}
