//! Property-based tests for the clock substrate.

use gals_clock::{DomainClock, SyncModel};
use gals_common::{DomainId, Femtos, Hertz, SplitMix64};
use proptest::prelude::*;

proptest! {
    /// Edges are strictly monotone for any frequency/jitter/seed combo.
    #[test]
    fn edges_strictly_monotone(
        mhz in 80u64..2000,
        jitter in 0.0f64..0.35,
        seed in any::<u64>(),
    ) {
        let mut c = DomainClock::new(
            DomainId::FrontEnd,
            Hertz::from_mhz(mhz),
            jitter,
            SplitMix64::new(seed),
        );
        let mut prev = Femtos::ZERO;
        for i in 0..2000 {
            let e = c.tick();
            prop_assert!(e > prev || i == 0 && e > Femtos::ZERO);
            prev = e;
        }
    }

    /// Cycle counting matches the number of ticks, and mean period tracks
    /// the nominal period to within the jitter bound.
    #[test]
    fn mean_period_tracks_nominal(
        mhz in 200u64..2000,
        jitter in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let f = Hertz::from_mhz(mhz);
        let mut c = DomainClock::new(DomainId::LoadStore, f, jitter, SplitMix64::new(seed));
        let n = 5000u64;
        let mut last = Femtos::ZERO;
        for _ in 0..n {
            last = c.tick();
        }
        prop_assert_eq!(c.cycle(), n);
        let mean_period = last.as_fs() as f64 / n as f64;
        let nominal = f.period().as_fs() as f64;
        // The grid anchors edges to ideal times, so the mean period error
        // is bounded by a single jitter amplitude spread over n cycles.
        prop_assert!((mean_period - nominal).abs() / nominal < 0.01);
    }

    /// The sync window never exceeds the faster period and scales with the
    /// threshold.
    #[test]
    fn sync_window_bounded(
        p1 in 500u64..10_000,
        p2 in 500u64..10_000,
        frac in 0.0f64..0.9,
    ) {
        let s = SyncModel::new(frac);
        let produced = Femtos::from_ns(1);
        let ready = s.ready_time(
            produced,
            Femtos::from_ps(p1),
            Femtos::from_ps(p2),
        );
        let window = ready - produced;
        let fast = Femtos::from_ps(p1.min(p2));
        prop_assert!(window <= fast);
        prop_assert!(ready >= produced);
    }

    /// Frequency changes always complete within the paper's 10-20 µs lock
    /// range, and the new frequency is in force afterwards.
    #[test]
    fn relock_bounded_and_applied(
        seed in any::<u64>(),
        from_mhz in 500u64..1800,
        to_mhz in 500u64..1800,
    ) {
        let mut c = DomainClock::new(
            DomainId::Integer,
            Hertz::from_mhz(from_mhz),
            0.02,
            SplitMix64::new(seed),
        );
        c.tick();
        let start = c.last_edge();
        let done = c.begin_frequency_change(Hertz::from_mhz(to_mhz));
        if from_mhz == to_mhz {
            prop_assert!(!c.is_locking());
        } else {
            let lock = done - start;
            prop_assert!(lock >= Femtos::from_us(10));
            prop_assert!(lock <= Femtos::from_us(20));
            while c.last_edge() < done {
                c.tick();
            }
            c.tick();
            prop_assert_eq!(c.frequency(), Hertz::from_mhz(to_mhz));
        }
    }
}
