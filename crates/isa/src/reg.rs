//! Architectural registers.

use std::fmt;

/// Number of logical integer registers (§3.2).
pub const INT_ARCH_REGS: u8 = 32;
/// Number of logical floating-point registers (§3.2).
pub const FP_ARCH_REGS: u8 = 32;

/// Register class: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

impl RegClass {
    /// Dense index in `0..2`.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

/// An architectural register, packed into a single byte: integer registers
/// occupy 0–31, floating-point registers 32–63.
///
/// # Example
///
/// ```
/// use gals_isa::{ArchReg, RegClass};
///
/// let r = ArchReg::fp(5);
/// assert_eq!(r.class(), RegClass::Fp);
/// assert_eq!(r.index(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Integer register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub const fn int(idx: u8) -> Self {
        assert!(idx < INT_ARCH_REGS, "integer register out of range");
        ArchReg(idx)
    }

    /// Floating-point register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub const fn fp(idx: u8) -> Self {
        assert!(idx < FP_ARCH_REGS, "fp register out of range");
        ArchReg(INT_ARCH_REGS + idx)
    }

    /// The register's class.
    #[inline]
    pub const fn class(self) -> RegClass {
        if self.0 < INT_ARCH_REGS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// Index within the register's class, `0..32`.
    #[inline]
    pub const fn index(self) -> u8 {
        if self.0 < INT_ARCH_REGS {
            self.0
        } else {
            self.0 - INT_ARCH_REGS
        }
    }

    /// Packed byte representation (0–63), usable as a dense table index.
    #[inline]
    pub const fn packed(self) -> u8 {
        self.0
    }

    /// Reconstructs a register from its packed representation.
    ///
    /// # Panics
    ///
    /// Panics if `packed >= 64`.
    #[inline]
    pub const fn from_packed(packed: u8) -> Self {
        assert!(
            packed < INT_ARCH_REGS + FP_ARCH_REGS,
            "packed register out of range"
        );
        ArchReg(packed)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.index()),
            RegClass::Fp => write!(f, "f{}", self.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        for i in 0..INT_ARCH_REGS {
            let r = ArchReg::int(i);
            assert_eq!(r.class(), RegClass::Int);
            assert_eq!(r.index(), i);
            assert_eq!(ArchReg::from_packed(r.packed()), r);
        }
        for i in 0..FP_ARCH_REGS {
            let r = ArchReg::fp(i);
            assert_eq!(r.class(), RegClass::Fp);
            assert_eq!(r.index(), i);
            assert_eq!(ArchReg::from_packed(r.packed()), r);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(31).to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_range_checked() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_range_checked() {
        let _ = ArchReg::from_packed(64);
    }
}
