//! Synthetic RISC ISA for the GALS/MCD simulator.
//!
//! The paper drives SimpleScalar with Alpha binaries; this workspace drives
//! the pipeline model with *dynamic instruction records* produced by the
//! workload substrate (`gals-workloads`). Each record carries everything a
//! timing-only simulator needs: operation class, architectural source and
//! destination registers, the effective memory address for loads/stores,
//! and the direction/target for control transfers.
//!
//! The register file mirrors the paper's machine: 32 logical integer and 32
//! logical floating-point registers (§3.2).
//!
//! # Example
//!
//! ```
//! use gals_isa::{ArchReg, DynInst, OpClass};
//!
//! let add = DynInst::alu(0x1000, OpClass::IntAlu, ArchReg::int(3),
//!                        [Some(ArchReg::int(1)), Some(ArchReg::int(2))]);
//! assert!(add.op.is_int());
//! assert_eq!(add.dst, Some(ArchReg::int(3)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod inst;
mod reg;
mod stream;

pub use inst::{DynInst, OpClass};
pub use reg::{ArchReg, RegClass, FP_ARCH_REGS, INT_ARCH_REGS};
pub use stream::InstructionStream;
