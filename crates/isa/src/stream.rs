//! The instruction-supply abstraction between workloads and the simulator.

use crate::inst::DynInst;

/// An unbounded supply of dynamic instructions.
///
/// Streams are conceptually infinite: the simulator decides how many
/// instructions constitute a run (the paper simulates fixed instruction
/// windows per benchmark — Tables 6–8). Implementations must be
/// deterministic: two streams constructed identically must yield identical
/// sequences, because design-space sweeps compare configurations on the
/// same workload.
///
/// # Example
///
/// ```
/// use gals_isa::{DynInst, InstructionStream};
///
/// /// A stream of nothing but nops.
/// struct Nops(u64);
///
/// impl InstructionStream for Nops {
///     fn next_inst(&mut self) -> DynInst {
///         let pc = self.0;
///         self.0 += 4;
///         DynInst::nop(pc)
///     }
///     fn name(&self) -> &str { "nops" }
/// }
///
/// let mut s = Nops(0x1000);
/// assert_eq!(s.next_inst().pc, 0x1000);
/// assert_eq!(s.next_inst().pc, 0x1004);
/// ```
pub trait InstructionStream {
    /// Produces the next dynamic instruction on the committed path.
    fn next_inst(&mut self) -> DynInst;

    /// A short name for reports (benchmark name).
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl<S: InstructionStream + ?Sized> InstructionStream for &mut S {
    fn next_inst(&mut self) -> DynInst {
        (**self).next_inst()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<S: InstructionStream + ?Sized> InstructionStream for Box<S> {
    fn next_inst(&mut self) -> DynInst {
        (**self).next_inst()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);

    impl InstructionStream for Counting {
        fn next_inst(&mut self) -> DynInst {
            let pc = self.0;
            self.0 += 4;
            DynInst::nop(pc)
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn trait_objects_forward() {
        let mut boxed: Box<dyn InstructionStream> = Box::new(Counting(0));
        assert_eq!(boxed.name(), "counting");
        assert_eq!(boxed.next_inst().pc, 0);
        assert_eq!(boxed.next_inst().pc, 4);
    }

    #[test]
    fn mut_refs_forward() {
        let mut c = Counting(100);
        let r = &mut c;
        assert_eq!(r.next_inst().pc, 100);
        assert_eq!(r.name(), "counting");
    }
}
