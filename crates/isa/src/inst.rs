//! Dynamic instruction records and operation classes.

use std::fmt;

use gals_common::DomainId;

use crate::reg::{ArchReg, RegClass};

/// Operation classes distinguished by the timing model.
///
/// The class determines the execution domain (integer, floating-point, or
/// load/store), the functional unit pool, and the execution latency
/// (configured in `gals-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (shared mult/div unit).
    IntMul,
    /// Integer divide (shared mult/div unit, long latency).
    IntDiv,
    /// Floating-point add/subtract/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide (shared div/sqrt unit).
    FpDiv,
    /// Floating-point square root (shared div/sqrt unit).
    FpSqrt,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (predicted by the front end).
    Branch,
    /// Unconditional jump/call/return (always taken).
    Jump,
    /// No-operation (consumes front-end bandwidth only).
    Nop,
}

impl OpClass {
    /// All classes, for exhaustive iteration in tests and generators.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::Nop,
    ];

    /// True for operations executed by the integer domain (including
    /// address generation for branches).
    #[inline]
    pub const fn is_int(self) -> bool {
        matches!(
            self,
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv | OpClass::Branch | OpClass::Jump
        )
    }

    /// True for operations executed by the floating-point domain.
    #[inline]
    pub const fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt
        )
    }

    /// True for loads and stores.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for control transfers.
    #[inline]
    pub const fn is_ctrl(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Jump)
    }

    /// The clock domain whose issue queue receives this instruction.
    /// Memory operations go to the load/store domain; everything else to
    /// the integer or floating-point execution domains. `Nop` never leaves
    /// the front end.
    #[inline]
    pub const fn execution_domain(self) -> DomainId {
        if self.is_mem() {
            DomainId::LoadStore
        } else if self.is_fp() {
            DomainId::FloatingPoint
        } else {
            DomainId::Integer
        }
    }

    /// The register class this operation's ILP-tracking counts against
    /// (§3.2 tracks integer and floating-point instruction counts
    /// separately).
    #[inline]
    pub const fn reg_class(self) -> RegClass {
        if self.is_fp() {
            RegClass::Fp
        } else {
            RegClass::Int
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int.alu",
            OpClass::IntMul => "int.mul",
            OpClass::IntDiv => "int.div",
            OpClass::FpAdd => "fp.add",
            OpClass::FpMul => "fp.mul",
            OpClass::FpDiv => "fp.div",
            OpClass::FpSqrt => "fp.sqrt",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// One dynamic (already-executed) instruction as seen by the timing model.
///
/// The workload substrate produces these; the pipeline simulator renames
/// the architectural registers, tracks dependences, models branch
/// prediction against `taken`, and replays memory behaviour against
/// `mem_addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Instruction address (for I-cache and predictor indexing).
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Architectural sources (up to two).
    pub srcs: [Option<ArchReg>; 2],
    /// Architectural destination, if the instruction writes a register.
    pub dst: Option<ArchReg>,
    /// Effective address for loads/stores (undefined otherwise).
    pub mem_addr: u64,
    /// Resolved direction for control transfers (`true` for jumps).
    pub taken: bool,
    /// Resolved target for control transfers.
    pub target: u64,
}

impl DynInst {
    /// A computational instruction (ALU/FP) writing `dst`.
    pub fn alu(pc: u64, op: OpClass, dst: ArchReg, srcs: [Option<ArchReg>; 2]) -> Self {
        debug_assert!(!op.is_mem() && !op.is_ctrl());
        DynInst {
            pc,
            op,
            srcs,
            dst: Some(dst),
            mem_addr: 0,
            taken: false,
            target: 0,
        }
    }

    /// A load from `addr` into `dst` (one address source register).
    pub fn load(pc: u64, dst: ArchReg, addr_src: ArchReg, addr: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Load,
            srcs: [Some(addr_src), None],
            dst: Some(dst),
            mem_addr: addr,
            taken: false,
            target: 0,
        }
    }

    /// A store of `data_src` to `addr` (address + data source registers).
    pub fn store(pc: u64, data_src: ArchReg, addr_src: ArchReg, addr: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Store,
            srcs: [Some(addr_src), Some(data_src)],
            dst: None,
            mem_addr: addr,
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch with its resolved direction and target.
    pub fn branch(pc: u64, cond_src: ArchReg, taken: bool, target: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Branch,
            srcs: [Some(cond_src), None],
            dst: None,
            mem_addr: 0,
            taken,
            target,
        }
    }

    /// An unconditional jump to `target`.
    pub fn jump(pc: u64, target: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Jump,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: true,
            target,
        }
    }

    /// A no-operation at `pc`.
    pub fn nop(pc: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Nop,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: false,
            target: 0,
        }
    }

    /// Iterates over the instruction's present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// The fall-through address (next sequential pc, 4-byte instructions).
    #[inline]
    pub const fn fallthrough(&self) -> u64 {
        self.pc + 4
    }

    /// The address control flow actually continues at.
    #[inline]
    pub const fn next_pc(&self) -> u64 {
        if self.op.is_ctrl() && self.taken {
            self.target
        } else {
            self.pc + 4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition() {
        for op in OpClass::ALL {
            let kinds = [op.is_int(), op.is_fp(), op.is_mem()];
            let count = kinds.iter().filter(|&&k| k).count();
            if op == OpClass::Nop {
                assert_eq!(count, 0);
            } else {
                assert_eq!(count, 1, "{op} must belong to exactly one kind");
            }
        }
    }

    #[test]
    fn execution_domains() {
        assert_eq!(OpClass::IntAlu.execution_domain(), DomainId::Integer);
        assert_eq!(OpClass::FpMul.execution_domain(), DomainId::FloatingPoint);
        assert_eq!(OpClass::Load.execution_domain(), DomainId::LoadStore);
        assert_eq!(OpClass::Branch.execution_domain(), DomainId::Integer);
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = DynInst::load(0x40, ArchReg::int(1), ArchReg::int(2), 0xBEEF);
        assert_eq!(ld.op, OpClass::Load);
        assert_eq!(ld.mem_addr, 0xBEEF);
        assert_eq!(ld.sources().count(), 1);

        let st = DynInst::store(0x44, ArchReg::int(3), ArchReg::int(4), 0xF00D);
        assert_eq!(st.dst, None);
        assert_eq!(st.sources().count(), 2);

        let br = DynInst::branch(0x48, ArchReg::int(5), true, 0x100);
        assert_eq!(br.next_pc(), 0x100);
        let br2 = DynInst::branch(0x48, ArchReg::int(5), false, 0x100);
        assert_eq!(br2.next_pc(), 0x4C);

        let j = DynInst::jump(0x4C, 0x200);
        assert!(j.taken);
        assert_eq!(j.next_pc(), 0x200);

        let n = DynInst::nop(0x50);
        assert_eq!(n.sources().count(), 0);
        assert_eq!(n.fallthrough(), 0x54);
    }

    #[test]
    fn display_is_nonempty() {
        for op in OpClass::ALL {
            assert!(!op.to_string().is_empty());
        }
    }
}
