//! Dev diagnostic: reconfiguration traces and per-mechanism gaps.
use gals_core::{MachineConfig, McdConfig, Simulator};

fn main() {
    for name in ["art", "em3d", "apsi"] {
        let spec = gals_workloads::suite::by_name(name).unwrap();
        let r = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), 80_000);
        println!(
            "== {name}: {} reconfigs, l1d a/b/m = {}/{}/{}  l2 a/b/m = {}/{}/{}",
            r.reconfigs.len(),
            r.l1d.a_hits,
            r.l1d.b_hits,
            r.l1d.misses,
            r.l2.a_hits,
            r.l2.b_hits,
            r.l2.misses
        );
        for ev in r.reconfigs.iter().take(25) {
            println!("   @{:6}k {:?}", ev.at_committed / 1000, ev.kind);
        }
    }
}
