//! Dev smoke test: run a few benchmarks through all three machine styles.
//
// lint:allow-file(determinism-wallclock): this example *measures* host
// simulation throughput (inst/s), which is inherently wall-clock; the
// timing never feeds back into simulated state.
use gals_core::{MachineConfig, McdConfig, Simulator};
use std::time::Instant;

fn main() {
    let window: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    for name in [
        "adpcm_encode",
        "gcc",
        "em3d",
        "art",
        "apsi",
        "gsm_encode",
        "vpr",
    ] {
        let spec = gals_workloads::suite::by_name(name).unwrap();
        let t0 = Instant::now();
        let sync =
            Simulator::new(MachineConfig::best_synchronous()).run(&mut spec.stream(), window);
        let prog = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), window);
        let phase = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
            .run(&mut spec.stream(), window);
        let dt = t0.elapsed().as_secs_f64();
        let imp_prog = (sync.runtime_ns() / prog.runtime_ns() - 1.0) * 100.0;
        let imp_phase = (sync.runtime_ns() / phase.runtime_ns() - 1.0) * 100.0;
        println!(
            "{name:14} sync {:9.1}ns  prog(smallest) {:+6.1}%  phase {:+6.1}%  br-mr {:4.1}%  ic-mr {:4.1}%  d-mr {:4.1}%  l2-mr {:4.1}%  reconfigs {}  ({:.2}s, {:.2}M inst/s)",
            sync.runtime_ns(), imp_prog, imp_phase,
            sync.mispredict_rate()*100.0, sync.icache.miss_rate()*100.0,
            sync.l1d.miss_rate()*100.0, sync.l2.miss_rate()*100.0,
            phase.reconfigs.len(),
            dt, 3.0 * window as f64 / dt / 1e6
        );
    }
}
