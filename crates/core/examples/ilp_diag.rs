//! Dev diagnostic: raw §3.2 ILP recommendations per tracking interval,
//! straight off the rename stream (no pipeline, no damping, no relocks).
use gals_control::IlpTracker;
use gals_core::{MachineConfig, McdConfig};
use gals_isa::InstructionStream;
use gals_timing::IqSize;

fn main() {
    let cfg = MachineConfig::phase_adaptive(McdConfig::smallest());
    let freqs = IqSize::ALL.map(|s| cfg.timing.iq_frequency(s).as_ghz());
    for name in ["adpcm_encode", "apsi", "crafty", "em3d"] {
        let spec = gals_workloads::suite::by_name(name).unwrap();
        let mut stream = spec.stream();
        let mut t = IlpTracker::new();
        let mut counts = [0u32; 4];
        let mut seq: Vec<usize> = Vec::new();
        for _ in 0..200_000u64 {
            t.observe(&stream.next_inst());
            if t.complete() {
                let d = t.decide(freqs);
                counts[d.iq_int.index()] += 1;
                seq.push(d.iq_int.index());
            }
        }
        let n = seq.len();
        // Interval-to-interval instability of the raw recommendation.
        let mut flips = 0;
        for w in seq.windows(2) {
            if w[0] != w[1] {
                flips += 1;
            }
        }
        println!(
            "{name}: {n} intervals, int want counts {counts:?}, flips {flips}, first 60: {:?}",
            &seq[..60.min(n)]
        );
    }
}
