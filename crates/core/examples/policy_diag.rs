//! Dev diagnostic for the policy anomaly: argmin vs static per benchmark,
//! with reconfiguration traces and final frequencies.
use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator};

fn main() {
    let window: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    for name in ["adpcm_encode", "gzip", "apsi", "em3d", "crafty", "art"] {
        let spec = gals_workloads::suite::by_name(name).unwrap();
        let run = |policy| {
            Simulator::new(
                MachineConfig::phase_adaptive(McdConfig::smallest()).with_control(policy),
            )
            .run(&mut spec.stream(), window)
        };
        let a = run(ControlPolicy::PaperArgmin);
        let s = run(ControlPolicy::Static);
        println!(
            "== {name}: argmin {:.0} ns vs static {:.0} ns ({:+.1}%)  {} reconfigs",
            a.runtime_ns(),
            s.runtime_ns(),
            (a.runtime_ns() / s.runtime_ns() - 1.0) * 100.0,
            a.reconfigs.len(),
        );
        println!(
            "   final freqs argmin: {:?}",
            a.final_freqs.map(|f| format!("{:.2}", f.as_ghz()))
        );
        for ev in a.reconfigs.iter().take(30) {
            println!("   @{:6} {:?}", ev.at_committed, ev.kind);
        }
    }
}
