//! The adaptive GALS/MCD out-of-order processor model — the paper's
//! primary contribution.
//!
//! This crate assembles the substrates (clock domains, accounting caches,
//! hybrid branch predictor, timing models) into the four-domain
//! microarchitecture of Figure 1 and implements the two on-line control
//! algorithms of §3:
//!
//! * the **phase-adaptive cache controller** (per 15K-instruction
//!   interval, exact cost reconstruction via the Accounting Cache),
//! * the **ILP issue-queue controller** (rename-time timestamp tracking).
//!
//! Three machine styles are supported, matching the paper's evaluation:
//!
//! | Mode | Clock(s) | Caches | Structures |
//! |------|----------|--------|------------|
//! | [`MachineKind::Synchronous`] | one global clock = slowest structure | A-partition only, fixed | fixed (Table 3 options) |
//! | [`MachineKind::ProgramAdaptive`] | four domain clocks, fixed per run | A-partition only, fixed | any [`McdConfig`] |
//! | [`MachineKind::PhaseAdaptive`] | four domain clocks, controller-driven | full Accounting Caches | controllers resize on line |
//!
//! # Example
//!
//! ```
//! use gals_core::{MachineConfig, McdConfig, Simulator};
//! use gals_workloads::suite;
//!
//! let spec = suite::by_name("gcc").unwrap();
//! let cfg = MachineConfig::phase_adaptive(McdConfig::smallest());
//! let result = Simulator::new(cfg).run(&mut spec.stream(), 30_000);
//! assert_eq!(result.committed, 30_000);
//! assert!(result.runtime.as_ns() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adapt;
mod config;
mod ilp;
mod sim;
mod stats;

pub use adapt::{CacheController, IqController};
pub use config::{CoreParams, MachineConfig, MachineKind, McdConfig, SyncConfig};
pub use ilp::{IlpDecision, IlpTracker};
pub use sim::Simulator;
pub use stats::{CacheSummary, ReconfigEvent, ReconfigKind, SimResult};

pub use gals_timing::{Dl2Config, ICacheConfig, IqSize, SyncICacheOption, TimingModel, Variant};
