//! The adaptive GALS/MCD out-of-order processor model — the paper's
//! primary contribution.
//!
//! This crate assembles the substrates (clock domains, accounting caches,
//! hybrid branch predictor, timing models) into the four-domain
//! microarchitecture of Figure 1. The §3 on-line control algorithms live
//! behind the `gals-control` trait boundary: the simulator feeds an
//! [`AdaptationEngine`] interval statistics and executes the resizes it
//! approves, and [`MachineConfig::control`] selects which
//! [`ControlPolicy`] drives the engine (the paper's argmin controllers
//! by default).
//!
//! Three machine styles are supported, matching the paper's evaluation:
//!
//! | Mode | Clock(s) | Caches | Structures |
//! |------|----------|--------|------------|
//! | [`MachineKind::Synchronous`] | one global clock = slowest structure | A-partition only, fixed | fixed (Table 3 options) |
//! | [`MachineKind::ProgramAdaptive`] | four domain clocks, fixed per run | A-partition only, fixed | any [`McdConfig`] |
//! | [`MachineKind::PhaseAdaptive`] | four domain clocks, controller-driven | full Accounting Caches | controllers resize on line |
//!
//! # Example
//!
//! ```
//! use gals_core::{MachineConfig, McdConfig, Simulator};
//! use gals_workloads::suite;
//!
//! let spec = suite::by_name("gcc").unwrap();
//! let cfg = MachineConfig::phase_adaptive(McdConfig::smallest());
//! let result = Simulator::new(cfg).run(&mut spec.stream(), 30_000);
//! assert_eq!(result.committed, 30_000);
//! assert!(result.runtime.as_ns() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod sim;
mod stats;

pub use config::{CoreParams, MachineConfig, MachineKind, McdConfig, SyncConfig};
pub use sim::Simulator;
pub use stats::{CacheSummary, ReconfigEvent, ReconfigKind, SimResult};

pub use gals_control::{
    AdaptationEngine, CacheLatencies, ControlDomain, ControlPolicy, Decision, DecisionRecord,
    DomainController, EngineSetup, Hysteresis, IlpDecision, IlpTracker, IntervalStats,
};
pub use gals_timing::{Dl2Config, ICacheConfig, IqSize, SyncICacheOption, TimingModel, Variant};
