//! The event-driven, four-domain GALS pipeline simulator.
//!
//! # Model summary
//!
//! Execution is trace-driven: the workload supplies the committed path
//! only. The simulator advances the four domain clocks edge by edge
//! (earliest next edge first) and performs each domain's work on its own
//! edges:
//!
//! * **Front end** (commit → rename/dispatch → fetch per edge): I-cache
//!   and branch predictor at fetch; register rename with physical-
//!   register and ROB/queue flow control at dispatch; in-order commit.
//! * **Integer / FP domains**: issue-queue wakeup+select (oldest-first,
//!   Table 5 widths and unit pools), execution latencies, completion
//!   broadcast. Cross-domain operand visibility goes through the
//!   Sjogren–Myers synchronization window.
//! * **Load/store domain**: LSQ with exact (trace-known) addresses, store
//!   forwarding, two D-cache ports, MSHR-limited misses, the L1-D/L2
//!   Accounting Caches, and the fixed-latency memory "fifth domain".
//!
//! Standard trace-driven simplifications (documented in DESIGN.md):
//! wrong-path instructions are not fetched (a mispredicted branch stalls
//! fetch until resolution plus the Table 5 refill penalty), branch
//! targets are assumed BTB-resident, and memory disambiguation is exact.
//!
//! # Hot-path architecture
//!
//! The simulator has two run loops producing **bit-identical** results:
//!
//! * The **event-driven fast path** (default). All per-instruction state
//!   lives in a fixed-capacity power-of-two **slab** of [`InstState`]
//!   indexed by `u32` slot (`slot = seq & mask`; capacity exceeds the
//!   maximum in-flight window, so slots are unique while an instruction
//!   is alive and are reclaimed for free at commit). Every pipeline
//!   queue holds slots, and the issue queues and the pending-LSQ walk
//!   list are **intrusive doubly-linked lists** threaded through the
//!   slab, so mid-queue removal at issue is O(1) with no element
//!   shifting. Issue-queue and LSQ entries carry a memoized
//!   earliest-possible-issue time (`next_check`); entries whose producer
//!   has not issued yet register in a per-producer waiter chain and are
//!   woken by the producer's completion broadcast instead of being
//!   polled. Each domain maintains `next_work`, a sound lower bound on
//!   the next edge at which its handler can change any state: edges
//!   before that bound tick the clock (consuming the identical
//!   jitter-RNG sequence) but skip the handler, and when *every* domain
//!   is idle the run loop fast-forwards all four clocks to the earliest
//!   bound in one batch. Store-to-load forwarding consults an
//!   [`FxHashMap`]-indexed map from 8-byte line to an intrusive chain of
//!   in-flight stores (no per-line allocation, no SipHash), and LSQ
//!   commit-time removal is O(1) head popping.
//! * The **straightforward reference path**
//!   ([`Simulator::use_reference_loop`]): every edge of every domain
//!   runs its full handler, forwarding reverse-scans the LSQ, and every
//!   entry is polled — the naive implementation the determinism
//!   regression tests compare against, and the baseline the criterion
//!   benches measure speedups from.

use std::collections::VecDeque;

use gals_cache::{AccessKind, AccountingCache, ServedBy};
use gals_clock::{DomainClock, SyncModel};
use gals_common::fxmap::{fx_map_with_capacity, FxHashMap};
use gals_common::{DomainId, Femtos, SplitMix64};
use gals_control::{AdaptationEngine, ControlPolicy, EngineSetup, IlpDecision};
use gals_isa::{DynInst, InstructionStream, OpClass};
use gals_predictor::{HybridPredictor, PredictorGeometry};
use gals_timing::{Dl2Config, ICacheConfig, Variant};
use gals_workloads::PreparedTrace;

use crate::config::{MachineConfig, MachineKind};
use crate::stats::{CacheSummary, ReconfigEvent, ReconfigKind, SimResult};

const FE: usize = DomainId::FrontEnd.index();
const INT: usize = DomainId::Integer.index();
const FP: usize = DomainId::FloatingPoint.index();
const LS: usize = DomainId::LoadStore.index();

/// Minimum completion-ring size; the ring must exceed the maximum
/// in-flight window by a comfortable margin so a `Src::Pending`
/// reference can be resolved well after its producer committed.
const MIN_RING: usize = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// No register dependence (or a value produced before tracking).
    Free,
    /// Producer completed: result available in `domain` at `at`.
    Ready { at: Femtos, domain: u8 },
    /// Producer still in flight.
    Pending(u64),
}

#[derive(Debug, Clone, Copy)]
struct RingSlot {
    seq: u64,
    at: Femtos,
    domain: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenameRef {
    Ready { at: Femtos, domain: u8 },
    Pending(u64),
}

/// Sentinel for every intrusive slot link: "no entry".
const NO_LINK: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct InstState {
    inst: DynInst,
    /// This slot's owner. Slots are reused after commit (`slot = seq &
    /// mask`), so ordering decisions always read the seq, never the slot.
    seq: u64,
    srcs: [Src; 2],
    /// Execution domain index; FE for nops/jumps (complete at rename).
    exec_domain: u8,
    /// Time the instruction becomes visible to its issue queue / LSQ.
    arrival: Femtos,
    /// Memoized earliest time this entry could possibly issue.
    next_check: Femtos,
    completion: Option<Femtos>,
    issued: bool,
    renamed: bool,
    mispredicted: bool,
    uses_phys: bool,
    /// Head of this instruction's waiter chain: the slot of the first
    /// consumer parked on its completion broadcast (fast path only).
    waiter_head: u32,
    /// Next link when this instruction is itself parked in a chain.
    waiter_next: u32,
    /// Intrusive queue links: an instruction sits in at most one of the
    /// two issue queues or the pending-LSQ list at a time.
    q_prev: u32,
    q_next: u32,
    /// Next in-flight store on the same 8-byte line (fast path only),
    /// in ascending seq order.
    line_next: u32,
}

/// An intrusive doubly-linked list threaded through the slab's
/// `q_prev`/`q_next` links: O(1) push-back and mid-list removal, age
/// order preserved (entries enter in dispatch order).
#[derive(Debug, Clone, Copy)]
struct QList {
    head: u32,
    tail: u32,
    len: u32,
}

impl QList {
    const EMPTY: QList = QList {
        head: NO_LINK,
        tail: NO_LINK,
        len: 0,
    };

    fn len(&self) -> usize {
        self.len as usize
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The in-flight stores on one 8-byte line, as head/tail of the
/// intrusive `line_next` chain (ascending seq order: inserted at tail on
/// dispatch, removed at head on commit).
#[derive(Debug, Clone, Copy)]
struct LineChain {
    head: u32,
    tail: u32,
}

#[derive(Debug, Clone, Copy)]
struct StoreJob {
    addr: u64,
    ready: Femtos,
}

#[derive(Debug, Clone)]
struct FuPool {
    next_free: Vec<Femtos>,
}

impl FuPool {
    fn new(units: usize) -> Self {
        FuPool {
            next_free: vec![Femtos::ZERO; units],
        }
    }

    /// Acquires a unit at `at` for `busy` time; returns false when all
    /// units are occupied.
    fn try_acquire(&mut self, at: Femtos, busy: Femtos) -> bool {
        for slot in &mut self.next_free {
            if *slot <= at {
                *slot = at + busy;
                return true;
            }
        }
        false
    }
}

/// The simulator: construct with a [`MachineConfig`], run one stream.
///
/// See the [crate docs](crate) for an example.
///
/// `Clone` deep-copies the whole machine mid-run — every queue, clock,
/// cache, predictor, and controller. The sweep engine's interval
/// memoization uses this to snapshot a paused simulator at a chunk
/// boundary and splice it into a later job over the same prefix.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: MachineConfig,

    clocks: [DomainClock; 4],
    sync: SyncModel,

    icache: AccountingCache,
    l1d: AccountingCache,
    l2: AccountingCache,
    predictors: Vec<HybridPredictor>,
    active_pred: usize,

    ic_idx: usize,
    dl2_idx: usize,
    iq_cap: [usize; 2],
    iq_target: [u32; 2],

    // In-flight window: a fixed-capacity slab addressed by `seq & mask`.
    head_seq: u64,
    next_seq: u64,
    slab: Box<[InstState]>,
    slab_mask: usize,
    ring: Vec<RingSlot>,
    ring_mask: usize,

    rename_map: [RenameRef; 64],
    free_phys: [i64; 2],

    fetch_q: VecDeque<u32>,
    rob: VecDeque<u32>,
    iq: [QList; 2],
    lsq: VecDeque<u32>,
    store_jobs: VecDeque<StoreJob>,

    // Event-driven fast-path state (unused in reference mode).
    /// False selects the straightforward reference loop.
    event_driven: bool,
    /// Per-domain lower bound on the next edge time at which the
    /// domain's handler can change state. `Femtos::MAX` = fully idle.
    next_work: [Femtos; 4],
    /// `addr >> 3` → intrusive chain of in-flight (LSQ-resident) stores
    /// to that 8-byte line. Gives store-to-load forwarding its O(chain)
    /// candidate lookup with no per-line allocation; chains are one or
    /// two entries long in practice.
    stores_by_line: FxHashMap<u64, LineChain>,
    /// Un-issued LSQ entries in age order (the subset the LS edge walk
    /// actually needs to visit), as an intrusive list.
    lsq_pending: QList,

    fetch_stalled_until: Femtos,
    fetch_blocked_on: Option<u32>,
    cur_fetch_line: u64,
    pending_inst: Option<DynInst>,

    // Chunked-stepping state (persists across `run_chunk` calls; also
    // used by `run` so both loops share the deadlock detector).
    /// Next unconsumed index into the prepared trace.
    trace_pos: u64,
    /// Simulated time of the most recent commit-count increase.
    last_progress_time: Femtos,
    /// Commit count at `last_progress_time`.
    last_progress_count: u64,

    fu_int: [FuPool; 2],
    fu_fp: [FuPool; 2],
    mshr: Vec<Femtos>,

    /// The adaptation-control subsystem (phase-adaptive only): policy
    /// evaluation, relock gating, pending-resize bookkeeping, decision
    /// trace. The simulator feeds it interval statistics and executes
    /// the structural changes it approves.
    engine: Option<AdaptationEngine>,

    // Statistics.
    committed: u64,
    last_commit_at: Femtos,
    branches: u64,
    mispredicts: u64,
    ic_total: CacheSummary,
    l1d_total: CacheSummary,
    l2_total: CacheSummary,
    reconfigs: Vec<ReconfigEvent>,
}

impl Simulator {
    /// Builds a simulator for the given machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if internal structure construction fails (the configuration
    /// enums make invalid geometries unrepresentable).
    pub fn new(cfg: MachineConfig) -> Self {
        let p = &cfg.params;
        let phase = cfg.is_phase_adaptive();
        let is_mcd = cfg.is_mcd();
        let freqs = cfg.initial_frequencies();
        let (ic_kb, ic_ways, dl2, iq_int, iq_fp) = cfg.initial_structures();

        let mut seed_rng = SplitMix64::new(p.clock_seed);
        let jitter = if is_mcd { p.jitter_frac } else { 0.0 };
        let pll_scale = p.pll_scale;
        let mk_clock = |id: DomainId, f, mut rng: SplitMix64| {
            let pll_rng = rng.fork(0x504C);
            let mut c = DomainClock::new(id, f, jitter, rng);
            if pll_scale != 1.0 {
                c.set_pll(gals_clock::Pll::scaled(pll_rng, pll_scale));
            }
            c
        };
        let clocks = [
            mk_clock(DomainId::FrontEnd, freqs[0], seed_rng.fork(1)),
            mk_clock(DomainId::Integer, freqs[1], seed_rng.fork(2)),
            mk_clock(DomainId::FloatingPoint, freqs[2], seed_rng.fork(3)),
            mk_clock(DomainId::LoadStore, freqs[3], seed_rng.fork(4)),
        ];
        let sync = if is_mcd {
            SyncModel::new(p.sync_threshold_frac)
        } else {
            SyncModel::disabled()
        };

        // Caches: phase mode keeps the full physical arrays with movable
        // A/B boundaries; fixed modes build exactly the chosen capacity.
        let line = p.line_bytes;
        let (icache, l1d, l2) = if phase {
            (
                AccountingCache::new(64 * 1024, 4, line, ic_ways, true).unwrap(),
                AccountingCache::new(256 * 1024, 8, line, dl2.ways(), true).unwrap(),
                AccountingCache::new(2048 * 1024, 8, line, dl2.ways(), true).unwrap(),
            )
        } else {
            (
                AccountingCache::new(ic_kb as u64 * 1024, ic_ways, line, ic_ways, false).unwrap(),
                AccountingCache::new(
                    dl2.l1_kb() as u64 * 1024,
                    dl2.ways(),
                    line,
                    dl2.ways(),
                    false,
                )
                .unwrap(),
                AccountingCache::new(
                    dl2.l2_kb() as u64 * 1024,
                    dl2.ways(),
                    line,
                    dl2.ways(),
                    false,
                )
                .unwrap(),
            )
        };

        // Predictors: phase mode trains all four jointly-resized
        // geometries so a configuration switch has warm state. Under the
        // Static policy the machine can never switch, so the three
        // shadow geometries would be trained and thrown away — build
        // only the active one.
        let (predictors, active_pred) = if phase && cfg.control != ControlPolicy::Static {
            let preds: Vec<_> = ICacheConfig::ALL
                .iter()
                .map(|c| HybridPredictor::new(PredictorGeometry::for_capacity_kb(c.kb()).unwrap()))
                .collect();
            (preds, ic_ways as usize - 1)
        } else {
            // Fixed-geometry machines and Static-policy phase machines
            // alike predict with the one live geometry.
            (
                vec![HybridPredictor::new(
                    PredictorGeometry::for_capacity_kb(ic_kb).unwrap(),
                )],
                0,
            )
        };

        let ic_idx = match &cfg.kind {
            MachineKind::Synchronous(_) => 0,
            MachineKind::ProgramAdaptive(c) | MachineKind::PhaseAdaptive(c) => c.icache.index(),
        };
        let dl2_idx = dl2.index();

        let mem_ns = p.memory_latency().as_ns();
        let engine = phase.then(|| {
            AdaptationEngine::new(
                cfg.control,
                &EngineSetup {
                    timing: &cfg.timing,
                    latencies: p.cache_latencies(),
                    interval_insts: p.interval_insts,
                    mem_ns,
                    l2_service_init_ns: mem_ns * 0.5,
                    ic_idx,
                    dl2_idx,
                    iq_int,
                    iq_fp,
                },
            )
        });

        // The slab holds every in-flight instruction at `seq & mask`;
        // capacity strictly exceeds the architectural in-flight bound so
        // a live slot is never overwritten. The completion ring is kept
        // several windows deeper so consumers renamed long after a
        // producer committed still resolve its completion time.
        let slab_cap = p.max_in_flight().next_power_of_two();
        let ring_len = (slab_cap * 4).max(MIN_RING);
        let vacant = InstState {
            inst: DynInst::nop(0),
            seq: u64::MAX,
            srcs: [Src::Free, Src::Free],
            exec_domain: FE as u8,
            arrival: Femtos::ZERO,
            next_check: Femtos::ZERO,
            completion: None,
            issued: false,
            renamed: false,
            mispredicted: false,
            uses_phys: false,
            waiter_head: NO_LINK,
            waiter_next: NO_LINK,
            q_prev: NO_LINK,
            q_next: NO_LINK,
            line_next: NO_LINK,
        };
        Simulator {
            clocks,
            sync,
            icache,
            l1d,
            l2,
            predictors,
            active_pred,
            ic_idx,
            dl2_idx,
            iq_cap: [iq_int.entries() as usize, iq_fp.entries() as usize],
            iq_target: [iq_int.entries(), iq_fp.entries()],
            head_seq: 0,
            next_seq: 0,
            slab: vec![vacant; slab_cap].into_boxed_slice(),
            slab_mask: slab_cap - 1,
            ring: vec![
                RingSlot {
                    seq: u64::MAX,
                    at: Femtos::ZERO,
                    domain: 0,
                };
                ring_len
            ],
            ring_mask: ring_len - 1,
            rename_map: [RenameRef::Ready {
                at: Femtos::ZERO,
                domain: FE as u8,
            }; 64],
            free_phys: [
                (cfg.params.phys_int as i64) - 32,
                (cfg.params.phys_fp as i64) - 32,
            ],
            fetch_q: VecDeque::with_capacity(cfg.params.fetch_queue + 1),
            rob: VecDeque::with_capacity(cfg.params.rob_entries),
            iq: [QList::EMPTY; 2],
            lsq: VecDeque::with_capacity(cfg.params.lsq_entries),
            store_jobs: VecDeque::with_capacity(2 * cfg.params.lsq_entries),
            event_driven: true,
            next_work: [Femtos::ZERO; 4],
            stores_by_line: fx_map_with_capacity(2 * cfg.params.lsq_entries),
            lsq_pending: QList::EMPTY,
            fetch_stalled_until: Femtos::ZERO,
            fetch_blocked_on: None,
            cur_fetch_line: u64::MAX,
            pending_inst: None,
            trace_pos: 0,
            last_progress_time: Femtos::ZERO,
            last_progress_count: 0,
            fu_int: [
                FuPool::new(cfg.params.int_alus),
                FuPool::new(cfg.params.int_muldiv),
            ],
            fu_fp: [
                FuPool::new(cfg.params.fp_alus),
                FuPool::new(cfg.params.fp_muldiv),
            ],
            mshr: Vec::with_capacity(cfg.params.mshrs),
            engine,
            committed: 0,
            last_commit_at: Femtos::ZERO,
            branches: 0,
            mispredicts: 0,
            ic_total: CacheSummary::default(),
            l1d_total: CacheSummary::default(),
            l2_total: CacheSummary::default(),
            reconfigs: Vec::new(),
            cfg,
        }
    }

    /// Switches this simulator to the straightforward reference loop:
    /// every domain edge runs its full handler and the LSQ uses linear
    /// scans. Results are bit-identical to the default event-driven fast
    /// path (the determinism regression tests assert this); only wall
    /// clock differs. Call before [`Simulator::run`].
    pub fn use_reference_loop(mut self) -> Self {
        self.event_driven = false;
        self
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    // lint:hot — slab/queue bookkeeping runs for every instruction in
    // flight; the whole point of the u32-slot slab (PR 5) is that none
    // of it ever touches the allocator.

    /// Lowers a domain's next-work bound (fast path bookkeeping; no-op
    /// in reference mode where the bound is never consulted).
    #[inline]
    fn wake_domain(&mut self, domain: usize, at: Femtos) {
        if at < self.next_work[domain] {
            self.next_work[domain] = at;
        }
    }

    /// The slab slot owning `seq` (valid only while `seq` is in flight).
    #[inline]
    fn slot_of(&self, seq: u64) -> u32 {
        (seq as usize & self.slab_mask) as u32
    }

    #[inline]
    fn st(&self, slot: u32) -> &InstState {
        &self.slab[slot as usize]
    }

    #[inline]
    fn st_mut(&mut self, slot: u32) -> &mut InstState {
        &mut self.slab[slot as usize]
    }

    /// Appends `slot` to an intrusive queue list (O(1), allocation
    /// free). An associated function so callers can split-borrow the
    /// list and the slab out of `self`.
    #[inline]
    fn qpush(list: &mut QList, slab: &mut [InstState], slot: u32) {
        let st = &mut slab[slot as usize];
        debug_assert!(st.q_prev == NO_LINK && st.q_next == NO_LINK);
        st.q_prev = list.tail;
        st.q_next = NO_LINK;
        if list.tail != NO_LINK {
            slab[list.tail as usize].q_next = slot;
        } else {
            list.head = slot;
        }
        list.tail = slot;
        list.len += 1;
    }

    /// Unlinks `slot` from an intrusive queue list (O(1) wherever it
    /// sits — the win over the former `Vec::remove` element shifting).
    #[inline]
    fn qunlink(list: &mut QList, slab: &mut [InstState], slot: u32) {
        let (prev, next) = {
            let st = &mut slab[slot as usize];
            let links = (st.q_prev, st.q_next);
            st.q_prev = NO_LINK;
            st.q_next = NO_LINK;
            links
        };
        if prev != NO_LINK {
            slab[prev as usize].q_next = next;
        } else {
            list.head = next;
        }
        if next != NO_LINK {
            slab[next as usize].q_prev = prev;
        } else {
            list.tail = prev;
        }
        debug_assert!(list.len > 0);
        list.len -= 1;
    }

    /// Parks `slot` on `producer`'s completion broadcast: pushes it onto
    /// the producer's intrusive waiter chain and freezes its wake time
    /// until [`Simulator::complete_at`] unchains it. O(1), allocation
    /// free.
    #[inline]
    fn park_on(&mut self, producer_seq: u64, slot: u32) {
        let pslot = self.slot_of(producer_seq);
        let head = self.st(pslot).waiter_head;
        self.st_mut(pslot).waiter_head = slot;
        let st = self.st_mut(slot);
        st.waiter_next = head;
        st.next_check = Femtos::MAX;
    }

    /// Duration of `cycles` cycles in `domain`, minus a jitter guard-band.
    ///
    /// Completions are scheduled `guard = 2·jitter·period` early so that a
    /// consumer edge that nominally coincides with the completing edge
    /// still qualifies even when jitter makes it arrive marginally early
    /// — within a domain, producer and consumer share the physical clock,
    /// so back-to-back dependent issue must not depend on jitter phase.
    #[inline]
    fn cycles_in(&self, domain: usize, cycles: u64) -> Femtos {
        let period = self.clocks[domain].period();
        let span = period * cycles;
        let guard = Femtos::new((period.as_fs() as f64 * self.cfg.params.jitter_frac * 2.0) as u64);
        span.saturating_sub(guard).max(Femtos::new(1))
    }

    /// Time a value completed at `at` in domain `from` becomes usable in
    /// domain `to` (Sjogren–Myers window on domain crossings).
    #[inline]
    fn xfer(&self, at: Femtos, from: usize, to: usize) -> Femtos {
        if from == to {
            at
        } else {
            self.sync
                .ready_time(at, self.clocks[from].period(), self.clocks[to].period())
        }
    }

    /// Time at which a source becomes visible in `domain`, or `None`
    /// while its producer has not yet been scheduled.
    fn src_visible_at(&mut self, slot: u32, src_idx: usize, domain: usize) -> Option<Femtos> {
        let src = self.st(slot).srcs[src_idx];
        match src {
            Src::Free => Some(Femtos::ZERO),
            Src::Ready { at, domain: pd } => Some(self.xfer(at, pd as usize, domain)),
            Src::Pending(pseq) => {
                let ring_slot = self.ring[(pseq as usize) & self.ring_mask];
                if ring_slot.seq != pseq {
                    if pseq < self.head_seq {
                        // Producer committed so long ago its ring slot was
                        // reused: its value has been architecturally
                        // visible since before this consumer was fetched.
                        self.st_mut(slot).srcs[src_idx] = Src::Free;
                        return Some(Femtos::ZERO);
                    }
                    return None; // producer not yet issued
                }
                // Cache the resolution so future checks are O(1).
                let resolved = Src::Ready {
                    at: ring_slot.at,
                    domain: ring_slot.domain,
                };
                self.st_mut(slot).srcs[src_idx] = resolved;
                Some(self.xfer(ring_slot.at, ring_slot.domain as usize, domain))
            }
        }
    }

    /// Readiness check with memoized wake time: entries whose operands
    /// are known to arrive at a future time are skipped with a single
    /// compare until then (`next_check`), which keeps long memory stalls
    /// cheap to simulate.
    ///
    /// Fast path: an entry whose producer has not issued yet cannot have
    /// a known wake time, so instead of being re-polled every edge it
    /// registers in the producer's waiter list and parks at
    /// `next_check = MAX` until [`Simulator::complete_at`] wakes it.
    fn entry_ready(&mut self, slot: u32, domain: usize, e: Femtos) -> bool {
        if self.st(slot).next_check > e {
            return false;
        }
        let a = self.src_visible_at(slot, 0, domain);
        let b = self.src_visible_at(slot, 1, domain);
        match (a, b) {
            (Some(ta), Some(tb)) => {
                let ready = ta.max(tb).max(self.st(slot).arrival);
                if ready > e {
                    self.st_mut(slot).next_check = ready;
                    false
                } else {
                    true
                }
            }
            // Producer still unscheduled: reference mode polls again
            // next edge; fast mode parks on the producer's completion.
            _ => {
                if self.event_driven {
                    let idx = usize::from(a.is_some());
                    if let Src::Pending(pseq) = self.st(slot).srcs[idx] {
                        self.park_on(pseq, slot);
                    } else {
                        debug_assert!(false, "None visibility only arises from Pending");
                    }
                }
                false
            }
        }
    }

    /// Records an instruction's completion for dependants and commit.
    ///
    /// Fast path: this is the wake event — parked consumers get their
    /// `next_check` lowered to (a sound lower bound on) their new wake
    /// time and their domain's `next_work` follows; if the completing
    /// instruction is the ROB head, the front end is woken for commit.
    fn complete_at(&mut self, slot: u32, at: Femtos, domain: usize) {
        let seq = self.st(slot).seq;
        let ring_slot = &mut self.ring[(seq as usize) & self.ring_mask];
        ring_slot.seq = seq;
        ring_slot.at = at;
        ring_slot.domain = domain as u8;
        let st = self.st_mut(slot);
        st.completion = Some(at);
        st.issued = true;
        if self.event_driven {
            let mut w = self.st(slot).waiter_head;
            self.st_mut(slot).waiter_head = NO_LINK;
            while w != NO_LINK {
                let wake = at.max(self.st(w).arrival);
                let wdomain = self.st(w).exec_domain as usize;
                let wst = self.st_mut(w);
                let next = wst.waiter_next;
                wst.waiter_next = NO_LINK;
                if wake < wst.next_check {
                    wst.next_check = wake;
                }
                self.wake_domain(wdomain, wake);
                w = next;
            }
            if self.rob.front() == Some(&slot) {
                self.wake_domain(FE, at);
            }
        }
    }

    /// L1 B-partition latency (cycles) for the current config of a cache
    /// table, from Table 5.
    fn l1_b_latency(&self, idx: usize) -> u64 {
        self.cfg.params.l1_b_cycles[idx].unwrap_or(self.cfg.params.l1_a_cycles)
    }

    fn l2_b_latency(&self, idx: usize) -> u64 {
        self.cfg.params.l2_b_cycles[idx].unwrap_or(self.cfg.params.l2_a_cycles)
    }

    /// Services an access in the L2 (+memory beyond), returning the delay
    /// beyond this point in time. Also updates L2 accounting totals.
    fn l2_access(&mut self, addr: u64, kind: AccessKind) -> Femtos {
        let p_ls = self.clocks[LS].period();
        let r = self.l2.access(addr, kind);
        let cycles = match r.served {
            ServedBy::APartition => self.cfg.params.l2_a_cycles,
            ServedBy::BPartition => self.l2_b_latency(self.dl2_idx),
            ServedBy::Miss => self.cfg.params.l2_a_cycles,
        };
        let mut delay = p_ls * cycles;
        if r.served == ServedBy::Miss {
            delay += self.cfg.params.memory_latency();
        }
        delay
    }

    // ------------------------------------------------------------------
    // Front-end edge
    // ------------------------------------------------------------------

    fn fe_edge<S: InstructionStream>(&mut self, e: Femtos, stream: &mut S, window: u64) {
        self.apply_pending_fe(e);
        self.commit(e, window);
        self.rename_dispatch(e);
        self.fetch(e, stream);
        if self.event_driven {
            self.recompute_fe_wake(e);
        }
    }

    /// [`Simulator::fe_edge`] with fetch fed from a [`PreparedTrace`]
    /// (the chunked-stepping path).
    fn fe_edge_prepared(&mut self, e: Femtos, prep: &PreparedTrace, window: u64) {
        self.apply_pending_fe(e);
        self.commit(e, window);
        self.rename_dispatch(e);
        self.fetch_prepared(e, prep);
        if self.event_driven {
            self.recompute_fe_wake(e);
        }
    }

    /// Tightens the front end's `next_work` bound after an edge ran. A
    /// bound of `e` means "poll every edge" (the candidate action is
    /// either possible now or cheap to re-check); `MAX` means the front
    /// end is fully blocked and will be woken by an event hook
    /// ([`Simulator::complete_at`] for the ROB head, mispredict
    /// resolution in [`Simulator::exec_edge`]).
    fn recompute_fe_wake(&mut self, e: Femtos) {
        let mut w = Femtos::MAX;
        if let Some(at) = self.engine.as_ref().and_then(|en| en.pending_ic_at()) {
            w = w.min(at);
        }
        // Commit: the head's completion time lower-bounds its
        // cross-domain commit visibility. An unissued head wakes us via
        // the complete_at hook instead.
        if let Some(&head) = self.rob.front() {
            if let Some(c) = self.st(head).completion {
                w = w.min(c.max(e));
            }
        }
        // Rename/dispatch: poll only while the fetch-queue head can
        // actually move. Every resource that can block it either frees
        // at commit — ROB slots, physical registers, LSQ entries; the
        // commit bound above (or the head-completion `complete_at`
        // hook) covers those, and commit precedes rename within the
        // same edge — or frees when a saturated issue queue drains,
        // which [`Simulator::exec_edge`] reports via an explicit wake.
        // This is what lets the front end go fully idle during long
        // stalls instead of burning an edge per cycle re-checking
        // conditions that provably cannot change.
        if let Some(&head) = self.fetch_q.front() {
            if self.rob.len() < self.cfg.params.rob_entries && self.head_dispatchable(head) {
                w = w.min(e);
            }
        }
        // Fetch: bounded by an I-cache/mispredict stall when one is in
        // force; a mispredict block (fetch_blocked_on) is cleared — and
        // this bound lowered — at branch resolution.
        if self.fetch_blocked_on.is_none() && self.fetch_q.len() < self.cfg.params.fetch_queue {
            w = w.min(self.fetch_stalled_until.max(e));
        }
        self.next_work[FE] = w;
    }

    /// Whether the fetch-queue head could dispatch right now, given the
    /// free physical registers and its target queue's occupancy (the
    /// first-instruction slice of [`Simulator::rename_dispatch`]'s break
    /// conditions; ROB occupancy is the caller's check).
    fn head_dispatchable(&self, slot: u32) -> bool {
        let inst = &self.st(slot).inst;
        if let Some(d) = inst.dst {
            if self.free_phys[d.class().index()] <= 0 {
                return false;
            }
        }
        match inst.op {
            OpClass::Nop | OpClass::Jump => true,
            op if op.is_mem() => self.lsq.len() < self.cfg.params.lsq_entries,
            op => {
                let qi = usize::from(op.is_fp());
                self.iq[qi].len() < self.iq_cap[qi]
            }
        }
    }

    fn apply_pending_fe(&mut self, e: Femtos) {
        if let Some(idx) = self.engine.as_mut().and_then(|en| en.take_due_ic(e)) {
            self.apply_ic_resize(idx);
        }
    }

    fn apply_ic_resize(&mut self, idx: usize) {
        self.ic_idx = idx;
        self.active_pred = idx;
        let ways = ICacheConfig::from_index(idx).ways();
        self.icache.set_a_ways(ways).expect("phase-mode icache");
    }

    fn apply_dl2_resize(&mut self, idx: usize) {
        self.dl2_idx = idx;
        let ways = Dl2Config::from_index(idx).ways();
        self.l1d.set_a_ways(ways).expect("phase-mode l1d");
        self.l2.set_a_ways(ways).expect("phase-mode l2");
    }

    fn commit(&mut self, e: Femtos, window: u64) {
        let mut retired = 0;
        // Per-group caches: every store retiring on this edge becomes
        // visible in LS at the same `xfer(e, FE, LS)` instant, so the
        // crossing is computed once per retire group and the LS wake is
        // folded into a single `wake_domain` call after the loop
        // (`wake_domain` is a pure min, so one call with the group
        // minimum is bit-identical to one call per store). The cached
        // crossing is invalidated when `interval_decision` fires mid-
        // group: a frequency change rewrites clock periods and with them
        // the synchronization cost.
        let mut store_ready: Option<Femtos> = None;
        let mut ls_wake: Option<Femtos> = None;
        while retired < self.cfg.params.retire_width && self.committed < window {
            let Some(&slot) = self.rob.front() else { break };
            let st = self.st(slot);
            let Some(c) = st.completion else { break };
            let vis = self.xfer(c, st.exec_domain as usize, FE);
            if vis > e {
                break;
            }
            // Retire.
            let st = self.st(slot);
            let seq = st.seq;
            let is_store = st.inst.op == OpClass::Store;
            let is_load = st.inst.op == OpClass::Load;
            let addr = st.inst.mem_addr;
            let dst_class = st.inst.dst.map(|d| d.class());
            let uses_phys = st.uses_phys;
            self.rob.pop_front();
            if is_store {
                // Perform the write in the load/store domain after the
                // commit signal crosses over.
                let ready = match store_ready {
                    Some(r) => r,
                    None => {
                        let r = self.xfer(e, FE, LS);
                        store_ready = Some(r);
                        r
                    }
                };
                self.store_jobs.push_back(StoreJob { addr, ready });
                self.remove_lsq_head(slot);
                if self.event_driven {
                    // The store leaves the forwarding window at commit;
                    // being the oldest in-flight instruction it must be
                    // the oldest store on its line, i.e. its chain head.
                    let line = addr >> 3;
                    let next = {
                        let st = self.st_mut(slot);
                        let n = st.line_next;
                        st.line_next = NO_LINK;
                        n
                    };
                    let emptied = {
                        let chain = self
                            .stores_by_line
                            .get_mut(&line)
                            .expect("committed store is line-indexed");
                        debug_assert_eq!(chain.head, slot);
                        chain.head = next;
                        next == NO_LINK
                    };
                    if emptied {
                        self.stores_by_line.remove(&line);
                    }
                    ls_wake = Some(ls_wake.map_or(ready, |w: Femtos| w.min(ready)));
                }
            } else if is_load {
                self.remove_lsq_head(slot);
            }
            if uses_phys {
                if let Some(class) = dst_class {
                    self.free_phys[class.index()] += 1;
                }
            }
            // Free the slot (head first): the slab entry is dead the
            // moment head_seq moves past it; the next fetch reinitializes
            // it in place.
            debug_assert_eq!(seq, self.head_seq);
            self.head_seq += 1;
            self.committed += 1;
            self.last_commit_at = e;
            retired += 1;

            if let Some(en) = self.engine.as_mut() {
                if en.commit_tick() {
                    self.interval_decision(e);
                    store_ready = None;
                }
            }
        }
        if let Some(w) = ls_wake {
            self.wake_domain(LS, w);
        }
    }

    /// Removes the committing memory instruction from the LSQ. Commit is
    /// strictly in age order and the LSQ is age-ordered, so the entry is
    /// the head in **both** loop modes — the reference loop's former
    /// linear `position` search always found index 0 and is gone.
    fn remove_lsq_head(&mut self, slot: u32) {
        debug_assert_eq!(self.lsq.front(), Some(&slot));
        self.lsq.pop_front();
    }

    /// End-of-interval policy evaluation (§3.1). The decision itself
    /// takes ~32 cycles of dedicated hardware; the resulting PLL relock
    /// dwarfs that, so the decision latency is folded into the relock.
    ///
    /// The engine decides; this method executes: it begins the PLL
    /// frequency change and either applies the structural resize now
    /// (downsizes — the clock speeds up after relock) or registers it to
    /// apply once the relock completes (upsizes).
    fn interval_decision(&mut self, e: Femtos) {
        // I-cache / branch predictor pair. Decisions are deferred (by
        // the engine) while the domain is already relocking.
        let ic_stats = self.icache.take_stats();
        self.accumulate_ic(&ic_stats);
        let fe_locking = self.clocks[FE].is_locking();
        let committed = self.committed;
        if let Some(new_idx) = self
            .engine
            .as_mut()
            .and_then(|en| en.icache_interval(&ic_stats, fe_locking, committed))
        {
            let cfg = ICacheConfig::from_index(new_idx);
            let f = self.cfg.timing.icache_frequency(cfg);
            let done = self.clocks[FE].begin_frequency_change(f);
            if new_idx < self.ic_idx {
                // Downsize now, speed up after relock.
                self.apply_ic_resize(new_idx);
            } else {
                self.engine
                    .as_mut()
                    .expect("engine decided")
                    .set_pending_ic(new_idx, done);
                self.wake_domain(FE, done);
            }
            self.reconfigs.push(ReconfigEvent {
                at_committed: self.committed,
                kind: ReconfigKind::ICache(cfg),
            });
        }

        // D-cache / L2 pair.
        let l1_stats = self.l1d.take_stats();
        let l2_stats = self.l2.take_stats();
        self.accumulate_dl2(&l1_stats, &l2_stats);
        let ls_locking = self.clocks[LS].is_locking();
        if let Some(new_idx) = self
            .engine
            .as_mut()
            .and_then(|en| en.dl2_interval(&l1_stats, &l2_stats, ls_locking, committed))
        {
            let cfg = Dl2Config::from_index(new_idx);
            let f = self.cfg.timing.dl2_frequency(cfg, Variant::Adaptive);
            let done = self.clocks[LS].begin_frequency_change(f);
            if new_idx < self.dl2_idx {
                self.apply_dl2_resize(new_idx);
            } else {
                self.engine
                    .as_mut()
                    .expect("engine decided")
                    .set_pending_dl2(new_idx, done);
                self.wake_domain(LS, done);
            }
            self.reconfigs.push(ReconfigEvent {
                at_committed: self.committed,
                kind: ReconfigKind::Dl2(cfg),
            });
        }

        // Issue queues: the §3.2 measurements banked at rename are
        // evaluated here, at the same relock-commensurate cadence as the
        // caches (deciding per ~N-instruction tracking interval thrashed
        // the execution-domain PLLs on measurement noise).
        let locking_int = self.clocks[INT].is_locking();
        let locking_fp = self.clocks[FP].is_locking();
        if let Some(d) = self
            .engine
            .as_mut()
            .and_then(|en| en.iq_interval(locking_int, locking_fp, committed))
        {
            self.apply_iq_decision(d);
        }
        let _ = e;
    }

    fn accumulate_ic(&mut self, s: &gals_cache::AccountingStats) {
        let a = self.icache.a_ways();
        let t = self.icache.physical_ways();
        self.ic_total.accesses += s.accesses;
        self.ic_total.a_hits += s.hits_in_a(a);
        self.ic_total.b_hits += s.hits_in_b(a, t);
        self.ic_total.misses += s.misses;
        self.ic_total.writebacks += s.writebacks;
    }

    fn accumulate_dl2(
        &mut self,
        l1: &gals_cache::AccountingStats,
        l2: &gals_cache::AccountingStats,
    ) {
        let a1 = self.l1d.a_ways();
        let t1 = self.l1d.physical_ways();
        self.l1d_total.accesses += l1.accesses;
        self.l1d_total.a_hits += l1.hits_in_a(a1);
        self.l1d_total.b_hits += l1.hits_in_b(a1, t1);
        self.l1d_total.misses += l1.misses;
        self.l1d_total.writebacks += l1.writebacks;
        let a2 = self.l2.a_ways();
        let t2 = self.l2.physical_ways();
        self.l2_total.accesses += l2.accesses;
        self.l2_total.a_hits += l2.hits_in_a(a2);
        self.l2_total.b_hits += l2.hits_in_b(a2, t2);
        self.l2_total.misses += l2.misses;
        self.l2_total.writebacks += l2.writebacks;
    }

    fn rename_dispatch(&mut self, e: Femtos) {
        // Per-group caches: nothing inside the dispatch loop changes
        // clock periods, so `xfer(e, FE, d)` is a per-domain constant
        // for the whole fetch group. Compute each crossing at most once
        // and fold the per-instruction execution-domain wakes into one
        // `wake_domain` call per domain after the loop (bit-identical:
        // the deferred values are equal and `wake_domain` is a pure
        // min that nothing inside the loop reads back).
        let mut arrival_cache: [Option<Femtos>; 4] = [None; 4];
        let mut deferred_wake: [Option<Femtos>; 4] = [None; 4];
        for _ in 0..self.cfg.params.decode_width {
            let Some(&slot) = self.fetch_q.front() else {
                break;
            };
            if self.rob.len() >= self.cfg.params.rob_entries {
                break;
            }
            let inst = self.st(slot).inst;
            let seq = self.st(slot).seq;

            // Structural checks.
            if let Some(d) = inst.dst {
                if self.free_phys[d.class().index()] <= 0 {
                    break;
                }
            }
            let exec_domain = match inst.op {
                OpClass::Nop | OpClass::Jump => FE,
                op if op.is_mem() => LS,
                op if op.is_fp() => FP,
                _ => INT,
            };
            match exec_domain {
                LS if self.lsq.len() >= self.cfg.params.lsq_entries => {
                    break;
                }
                INT | FP => {
                    let qi = exec_domain - 1; // INT -> 0, FP -> 1
                    if self.iq[qi].len() >= self.iq_cap[qi] {
                        break;
                    }
                }
                _ => {}
            }

            // Rename sources. Producers that completed are folded into
            // the map as Ready so stale Pending references can never
            // outlive their completion-ring slot.
            let mut srcs = [Src::Free, Src::Free];
            for (i, sr) in inst.srcs.iter().enumerate() {
                if let Some(r) = sr {
                    srcs[i] = match self.rename_map[r.packed() as usize] {
                        RenameRef::Ready { at, domain } => Src::Ready { at, domain },
                        RenameRef::Pending(pseq) => {
                            let ring_slot = self.ring[(pseq as usize) & self.ring_mask];
                            if ring_slot.seq == pseq {
                                self.rename_map[r.packed() as usize] = RenameRef::Ready {
                                    at: ring_slot.at,
                                    domain: ring_slot.domain,
                                };
                                Src::Ready {
                                    at: ring_slot.at,
                                    domain: ring_slot.domain,
                                }
                            } else if pseq < self.head_seq {
                                // Committed long ago; ring slot reused.
                                self.rename_map[r.packed() as usize] = RenameRef::Ready {
                                    at: Femtos::ZERO,
                                    domain: FE as u8,
                                };
                                Src::Free
                            } else {
                                Src::Pending(pseq)
                            }
                        }
                    };
                }
            }

            // Allocate.
            let mut uses_phys = false;
            if let Some(d) = inst.dst {
                self.free_phys[d.class().index()] -= 1;
                uses_phys = true;
                self.rename_map[d.packed() as usize] = RenameRef::Pending(seq);
            }
            let arrival = match arrival_cache[exec_domain] {
                Some(a) => a,
                None => {
                    let a = self.xfer(e, FE, exec_domain);
                    arrival_cache[exec_domain] = Some(a);
                    a
                }
            };
            {
                let st = self.st_mut(slot);
                st.srcs = srcs;
                st.exec_domain = exec_domain as u8;
                st.arrival = arrival;
                st.renamed = true;
                st.uses_phys = uses_phys;
            }
            self.fetch_q.pop_front();
            self.rob.push_back(slot);

            match exec_domain {
                FE => {
                    // Nops and (BTB-resolved) jumps complete at rename.
                    self.complete_at(slot, e, FE);
                }
                LS => {
                    self.lsq.push_back(slot);
                    if self.event_driven {
                        Self::qpush(&mut self.lsq_pending, &mut self.slab, slot);
                        if inst.op == OpClass::Store {
                            // Append to the line's intrusive store chain
                            // (dispatch order = ascending seq order).
                            let line = inst.mem_addr >> 3;
                            match self.stores_by_line.entry(line) {
                                std::collections::hash_map::Entry::Occupied(mut o) => {
                                    let chain = o.get_mut();
                                    self.slab[chain.tail as usize].line_next = slot;
                                    chain.tail = slot;
                                }
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    v.insert(LineChain {
                                        head: slot,
                                        tail: slot,
                                    });
                                }
                            }
                        }
                        deferred_wake[LS] = Some(arrival);
                    }
                }
                d => {
                    Self::qpush(&mut self.iq[d - 1], &mut self.slab, slot);
                    if self.event_driven {
                        deferred_wake[d] = Some(arrival);
                    }
                }
            }

            // ILP tracking at rename (§3.2). Measurements accumulate in
            // the engine; decisions are taken at adaptation-interval
            // boundaries (see `interval_decision`).
            if let Some(en) = self.engine.as_mut() {
                en.observe_rename(&inst);
            }
        }
        for d in [INT, FP, LS] {
            if let Some(w) = deferred_wake[d] {
                self.wake_domain(d, w);
            }
        }
    }

    fn apply_iq_decision(&mut self, d: IlpDecision) {
        for (qi, (new_size, domain)) in [(0usize, (d.iq_int, INT)), (1, (d.iq_fp, FP))] {
            // Compare against the *target* size (which may still be
            // relocking), not the currently effective capacity.
            let current = self.iq_target[qi];
            let target = new_size.entries();
            if target == current {
                continue;
            }
            self.iq_target[qi] = target;
            let f = self.cfg.timing.iq_frequency(new_size);
            let done = self.clocks[domain].begin_frequency_change(f);
            if target < current {
                // Downsize now (capacity clamps as the queue drains),
                // clock speeds up after relock.
                self.iq_cap[qi] = target as usize;
            } else {
                self.engine
                    .as_mut()
                    .expect("engine decided")
                    .set_pending_iq(qi, new_size, done);
                self.wake_domain(domain, done);
            }
            self.reconfigs.push(ReconfigEvent {
                at_committed: self.committed,
                kind: if qi == 0 {
                    ReconfigKind::IqInt(new_size)
                } else {
                    ReconfigKind::IqFp(new_size)
                },
            });
        }
    }

    fn fetch<S: InstructionStream>(&mut self, e: Femtos, stream: &mut S) {
        if self.fetch_blocked_on.is_some() || e < self.fetch_stalled_until {
            return;
        }
        let width = self.cfg.params.decode_width;
        for _ in 0..width {
            if self.fetch_q.len() >= self.cfg.params.fetch_queue {
                break;
            }
            let inst = match self.pending_inst.take() {
                Some(i) => i,
                None => stream.next_inst(),
            };

            // I-cache: access on line crossings.
            let line = inst.pc / self.cfg.params.line_bytes;
            if line != self.cur_fetch_line {
                let r = self.icache.access(inst.pc, AccessKind::Read);
                self.cur_fetch_line = line;
                match r.served {
                    ServedBy::APartition => {}
                    ServedBy::BPartition => {
                        let extra = self.l1_b_latency(self.ic_idx) - self.cfg.params.l1_a_cycles;
                        self.fetch_stalled_until = e + self.clocks[FE].period() * extra;
                        self.pending_inst = Some(inst);
                        return;
                    }
                    ServedBy::Miss => {
                        // Fill from the unified L2 (load/store domain).
                        let req = self.xfer(e, FE, LS);
                        let delay = self.l2_access(inst.pc, AccessKind::Read);
                        let done = req + delay;
                        let vis = self.xfer(done, LS, FE);
                        if let Some(en) = self.engine.as_mut() {
                            en.note_l2_service((vis - e).as_ns());
                        }
                        self.fetch_stalled_until = vis;
                        self.pending_inst = Some(inst);
                        return;
                    }
                }
            }

            // Allocate the window slot in the slab. The capacity bound
            // guarantees the masked slot is vacant while `seq` is alive.
            let seq = self.next_seq;
            self.next_seq += 1;
            debug_assert!(
                (self.next_seq - self.head_seq) as usize <= self.slab.len(),
                "in-flight window exceeded the slab capacity"
            );
            let slot = self.slot_of(seq);
            *self.st_mut(slot) = InstState {
                inst,
                seq,
                srcs: [Src::Free, Src::Free],
                exec_domain: FE as u8,
                arrival: e,
                next_check: Femtos::ZERO,
                completion: None,
                issued: false,
                renamed: false,
                mispredicted: false,
                uses_phys: false,
                waiter_head: NO_LINK,
                waiter_next: NO_LINK,
                q_prev: NO_LINK,
                q_next: NO_LINK,
                line_next: NO_LINK,
            };
            self.fetch_q.push_back(slot);

            // Branch prediction.
            if inst.op == OpClass::Branch {
                self.branches += 1;
                let predicted = self.predictors[self.active_pred].predict(inst.pc).taken;
                // Train: phase mode keeps all geometries warm.
                if self.predictors.len() > 1 {
                    for p in &mut self.predictors {
                        p.update(inst.pc, inst.taken);
                    }
                } else {
                    self.predictors[0].update(inst.pc, inst.taken);
                }
                if predicted != inst.taken {
                    self.mispredicts += 1;
                    self.st_mut(slot).mispredicted = true;
                    self.fetch_blocked_on = Some(slot);
                    break;
                } else if inst.taken {
                    break; // one taken branch per fetch group
                }
            } else if inst.op == OpClass::Jump {
                break; // taken: end of fetch group
            }
        }
    }

    /// [`Simulator::fetch`] reading the shared prepared trace at
    /// `self.trace_pos` instead of pulling an owned stream.
    ///
    /// Bit-identity with the stream path: where `fetch` stashes the
    /// in-hand instruction in `pending_inst` across an I-cache stall,
    /// this path simply leaves `trace_pos` unadvanced — the retry reads
    /// the same index, finds `line == cur_fetch_line` (set before the
    /// stall return, exactly as in `fetch`), and skips the already-
    /// performed I-cache access, so the access sequence every model
    /// structure observes is identical.
    fn fetch_prepared(&mut self, e: Femtos, prep: &PreparedTrace) {
        if self.fetch_blocked_on.is_some() || e < self.fetch_stalled_until {
            return;
        }
        let width = self.cfg.params.decode_width;
        for _ in 0..width {
            if self.fetch_q.len() >= self.cfg.params.fetch_queue {
                break;
            }
            let i = self.trace_pos as usize;
            assert!(
                i < prep.len(),
                "prepared trace underrun: position {i} of {}",
                prep.len()
            );

            // I-cache: access on line crossings (line index precomputed).
            let line = prep.fetch_line(i);
            let inst = prep.inst(i);
            if line != self.cur_fetch_line {
                let r = self.icache.access(inst.pc, AccessKind::Read);
                self.cur_fetch_line = line;
                match r.served {
                    ServedBy::APartition => {}
                    ServedBy::BPartition => {
                        let extra = self.l1_b_latency(self.ic_idx) - self.cfg.params.l1_a_cycles;
                        self.fetch_stalled_until = e + self.clocks[FE].period() * extra;
                        return;
                    }
                    ServedBy::Miss => {
                        // Fill from the unified L2 (load/store domain).
                        let req = self.xfer(e, FE, LS);
                        let delay = self.l2_access(inst.pc, AccessKind::Read);
                        let done = req + delay;
                        let vis = self.xfer(done, LS, FE);
                        if let Some(en) = self.engine.as_mut() {
                            en.note_l2_service((vis - e).as_ns());
                        }
                        self.fetch_stalled_until = vis;
                        return;
                    }
                }
            }
            self.trace_pos += 1;

            // Allocate the window slot in the slab. The capacity bound
            // guarantees the masked slot is vacant while `seq` is alive.
            let seq = self.next_seq;
            self.next_seq += 1;
            debug_assert!(
                (self.next_seq - self.head_seq) as usize <= self.slab.len(),
                "in-flight window exceeded the slab capacity"
            );
            let slot = self.slot_of(seq);
            *self.st_mut(slot) = InstState {
                inst,
                seq,
                srcs: [Src::Free, Src::Free],
                exec_domain: FE as u8,
                arrival: e,
                next_check: Femtos::ZERO,
                completion: None,
                issued: false,
                renamed: false,
                mispredicted: false,
                uses_phys: false,
                waiter_head: NO_LINK,
                waiter_next: NO_LINK,
                q_prev: NO_LINK,
                q_next: NO_LINK,
                line_next: NO_LINK,
            };
            self.fetch_q.push_back(slot);

            // Branch prediction.
            if inst.op == OpClass::Branch {
                self.branches += 1;
                let predicted = self.predictors[self.active_pred].predict(inst.pc).taken;
                // Train: phase mode keeps all geometries warm.
                if self.predictors.len() > 1 {
                    for p in &mut self.predictors {
                        p.update(inst.pc, inst.taken);
                    }
                } else {
                    self.predictors[0].update(inst.pc, inst.taken);
                }
                if predicted != inst.taken {
                    self.mispredicts += 1;
                    self.st_mut(slot).mispredicted = true;
                    self.fetch_blocked_on = Some(slot);
                    break;
                } else if inst.taken {
                    break; // one taken branch per fetch group
                }
            } else if inst.op == OpClass::Jump {
                break; // taken: end of fetch group
            }
        }
    }

    // ------------------------------------------------------------------
    // Execution-domain edges (integer / floating point)
    // ------------------------------------------------------------------

    fn exec_edge(&mut self, domain: usize, e: Femtos) {
        let qi = domain - 1;
        if let Some(size) = self.engine.as_mut().and_then(|en| en.take_due_iq(qi, e)) {
            // The engine already tracks the target; only the effective
            // capacity changes here. A grown capacity may unblock a
            // dispatch the front end had stopped polling for.
            self.iq_cap[qi] = size.entries() as usize;
            if self.event_driven {
                self.wake_domain(FE, e);
            }
        }

        if self.iq[qi].is_empty() {
            if self.event_driven {
                self.recompute_exec_wake(qi, domain, e);
            }
            return;
        }
        let width = self.cfg.params.issue_width;
        // The front end stops polling while this queue is saturated; if
        // it was and an entry issues below, tell it dispatch can resume.
        let was_full = self.iq[qi].len() >= self.iq_cap[qi];
        let mut issued = 0;
        let mut cur = self.iq[qi].head;
        while cur != NO_LINK && issued < width {
            // Snapshot the age-order successor before a potential
            // unlink; nothing below edits queue links of other entries.
            let next = self.st(cur).q_next;
            let op = self.st(cur).inst.op;
            if !self.entry_ready(cur, domain, e) {
                cur = next;
                continue;
            }
            // Functional unit.
            let p = &self.cfg.params;
            let lat_cycles = p.op_latency_cycles(op);
            let unpipelined = p.op_unpipelined(op);
            let busy = self.cycles_in(domain, if unpipelined { lat_cycles } else { 1 });
            let pool_idx = usize::from(matches!(
                op,
                OpClass::IntMul
                    | OpClass::IntDiv
                    | OpClass::FpMul
                    | OpClass::FpDiv
                    | OpClass::FpSqrt
            ));
            let pool = if domain == INT {
                &mut self.fu_int[pool_idx]
            } else {
                &mut self.fu_fp[pool_idx]
            };
            if !pool.try_acquire(e, busy) {
                cur = next;
                continue;
            }

            let completion = e + self.cycles_in(domain, lat_cycles);
            self.complete_at(cur, completion, domain);
            // Mispredicted branch: resolution schedules the refetch.
            if self.st(cur).mispredicted {
                let p = &self.cfg.params;
                let resolve_at_fe = self.xfer(completion, domain, FE);
                let resume = resolve_at_fe
                    + self.clocks[FE].period() * p.mispredict_fe_cycles
                    + self.clocks[INT].period() * p.mispredict_int_cycles;
                self.fetch_stalled_until = self.fetch_stalled_until.max(resume);
                self.fetch_blocked_on = None;
                if self.event_driven {
                    // The front end may have parked with nothing to do;
                    // resolution re-opens fetch, so make it re-evaluate.
                    self.wake_domain(FE, e);
                }
            }
            // O(1) unlink keeps the list in age order, so selection
            // stays oldest-first (the former `Vec::remove` shifting).
            Self::qunlink(&mut self.iq[qi], &mut self.slab, cur);
            issued += 1;
            cur = next;
        }
        if self.event_driven {
            if was_full && issued > 0 {
                self.wake_domain(FE, e);
            }
            self.recompute_exec_wake(qi, domain, e);
        }
    }

    /// Tightens an execution domain's `next_work` bound: the earliest
    /// memoized wake time over its issue-queue entries (entries parked
    /// on an unissued producer sit at `MAX` and are woken by
    /// [`Simulator::complete_at`]), or a pending queue-resize
    /// application. Entries that were ready but lost functional-unit or
    /// issue-width arbitration still carry `next_check <= e`, which
    /// correctly degrades this to per-edge polling while the queue is
    /// saturated.
    fn recompute_exec_wake(&mut self, qi: usize, domain: usize, e: Femtos) {
        let mut w = Femtos::MAX;
        if let Some(at) = self.engine.as_ref().and_then(|en| en.pending_iq_at(qi)) {
            w = w.min(at);
        }
        let mut cur = self.iq[qi].head;
        while cur != NO_LINK {
            let st = self.st(cur);
            w = w.min(st.next_check);
            if w <= e {
                // Any bound at or below the current edge already means
                // "run the very next edge"; no need for a tighter min.
                break;
            }
            cur = st.q_next;
        }
        self.next_work[domain] = w;
    }

    // ------------------------------------------------------------------
    // Load/store-domain edge
    // ------------------------------------------------------------------

    fn ls_edge(&mut self, e: Femtos) {
        if let Some(idx) = self.engine.as_mut().and_then(|en| en.take_due_dl2(e)) {
            self.apply_dl2_resize(idx);
        }

        // Retire completed MSHRs. (In fast mode this runs only on work
        // edges, which is equivalent: retention is monotone in `e` and
        // only the occupancy *at a load's issue attempt* is observable.)
        self.mshr.retain(|&t| t > e);

        if self.event_driven {
            self.ls_edge_fast(e);
        } else {
            self.ls_edge_reference(e);
        }
    }

    /// Fast-path LS edge: walks only the un-issued LSQ entries (the
    /// intrusive pending list), resolves store-to-load forwarding
    /// through the per-line store chains, and finishes by tightening the
    /// domain's `next_work` bound.
    fn ls_edge_fast(&mut self, e: Femtos) {
        let mut ports = self.cfg.params.dcache_ports;
        let mut cur = self.lsq_pending.head;
        while cur != NO_LINK {
            if ports == 0 {
                break;
            }
            let next = self.st(cur).q_next;
            let st = self.st(cur);
            debug_assert!(st.renamed && !st.issued);
            let op = st.inst.op;
            let addr = st.inst.mem_addr;
            let seq = st.seq;
            if !self.entry_ready(cur, LS, e) {
                cur = next;
                continue;
            }
            match op {
                OpClass::Store => {
                    // Data and address ready: ready to commit one cycle
                    // later. The actual cache write happens at commit.
                    let done = e + self.cycles_in(LS, 1);
                    self.complete_at(cur, done, LS);
                    Self::qunlink(&mut self.lsq_pending, &mut self.slab, cur);
                }
                OpClass::Load => {
                    // Forwarding / conflict detection against the
                    // youngest older in-flight store to the same 8-byte
                    // line: walk the line's (tiny, seq-ascending) store
                    // chain instead of reverse-scanning the LSQ.
                    let mut forwarded = false;
                    let mut blocked = false;
                    let mut older = NO_LINK;
                    if let Some(&chain) = self.stores_by_line.get(&(addr >> 3)) {
                        let mut s = chain.head;
                        while s != NO_LINK {
                            let sst = self.st(s);
                            if sst.seq >= seq {
                                break;
                            }
                            older = s;
                            s = sst.line_next;
                        }
                    }
                    if older != NO_LINK {
                        match self.st(older).completion {
                            Some(c) if c <= e => {
                                // Forward from the store buffer.
                                let done = e + self.cycles_in(LS, 1);
                                self.complete_at(cur, done, LS);
                                forwarded = true;
                            }
                            Some(c) => {
                                self.st_mut(cur).next_check = c;
                                blocked = true;
                            }
                            None => {
                                // The store's own issue time is
                                // unknown; park on its completion
                                // broadcast.
                                let oseq = self.st(older).seq;
                                self.park_on(oseq, cur);
                                blocked = true;
                            }
                        }
                    }
                    if forwarded {
                        ports -= 1;
                        Self::qunlink(&mut self.lsq_pending, &mut self.slab, cur);
                        cur = next;
                        continue;
                    }
                    if blocked {
                        cur = next;
                        continue;
                    }
                    let Some(completion) = self.load_dcache_access(cur, addr, e) else {
                        cur = next;
                        continue;
                    };
                    self.complete_at(cur, completion, LS);
                    ports -= 1;
                    Self::qunlink(&mut self.lsq_pending, &mut self.slab, cur);
                }
                _ => unreachable!("only memory ops live in the LSQ"),
            }
            cur = next;
        }

        self.perform_committed_stores(ports, e);
        self.recompute_ls_wake(e);
    }

    /// Tightens the load/store domain's `next_work` bound: earliest
    /// memoized wake over pending LSQ entries, the head committed-store
    /// write, or a pending D/L2 resize application.
    fn recompute_ls_wake(&mut self, e: Femtos) {
        let mut w = Femtos::MAX;
        if let Some(at) = self.engine.as_ref().and_then(|en| en.pending_dl2_at()) {
            w = w.min(at);
        }
        if let Some(job) = self.store_jobs.front() {
            w = w.min(job.ready);
        }
        let mut cur = self.lsq_pending.head;
        while cur != NO_LINK {
            let st = self.st(cur);
            w = w.min(st.next_check);
            if w <= e {
                break;
            }
            cur = st.q_next;
        }
        self.next_work[LS] = w;
    }

    /// Reference LS edge: the straightforward full-LSQ walk with the
    /// reverse linear forwarding scan (the baseline the fast path is
    /// benchmarked and determinism-checked against). Walks the LSQ in
    /// place by index — dispatch and commit both happen on front-end
    /// edges, so the queue cannot change mid-walk (the former
    /// `lsq_scratch` copy rebuilt per edge guarded against nothing).
    fn ls_edge_reference(&mut self, e: Femtos) {
        if self.lsq.is_empty() && self.store_jobs.is_empty() {
            return;
        }

        let mut ports = self.cfg.params.dcache_ports;

        // LSQ walk, oldest first: stores become commit-eligible when
        // their operands arrive; loads issue through the cache.
        for pos in 0..self.lsq.len() {
            if ports == 0 {
                break;
            }
            let slot = self.lsq[pos];
            let st = self.st(slot);
            if st.issued || !st.renamed {
                continue;
            }
            let op = st.inst.op;
            let addr = st.inst.mem_addr;
            if !self.entry_ready(slot, LS, e) {
                continue;
            }
            match op {
                OpClass::Store => {
                    // Data and address ready: ready to commit one cycle
                    // later. The actual cache write happens at commit.
                    let done = e + self.cycles_in(LS, 1);
                    self.complete_at(slot, done, LS);
                }
                OpClass::Load => {
                    // Store-to-load forwarding / conflict detection
                    // against older unperformed stores (addresses are
                    // exact in the trace).
                    let mut forwarded = false;
                    let mut blocked = false;
                    for p in (0..pos).rev() {
                        let oslot = self.lsq[p];
                        let ost = self.st(oslot);
                        if ost.inst.op != OpClass::Store {
                            continue;
                        }
                        if ost.inst.mem_addr >> 3 == addr >> 3 {
                            match ost.completion {
                                Some(c) if c <= e => {
                                    // Forward from the store buffer.
                                    let done = e + self.cycles_in(LS, 1);
                                    self.complete_at(slot, done, LS);
                                    forwarded = true;
                                }
                                Some(c) => {
                                    self.st_mut(slot).next_check = c;
                                    blocked = true;
                                }
                                None => blocked = true,
                            }
                            break;
                        }
                    }
                    if forwarded {
                        ports -= 1;
                        continue;
                    }
                    if blocked {
                        continue;
                    }
                    let Some(completion) = self.load_dcache_access(slot, addr, e) else {
                        continue;
                    };
                    self.complete_at(slot, completion, LS);
                    ports -= 1;
                }
                _ => unreachable!("only memory ops live in the LSQ"),
            }
        }

        self.perform_committed_stores(ports, e);
    }

    /// Issues one load into the D-cache hierarchy, returning its
    /// completion time, or `None` when all MSHRs are occupied (the entry
    /// is put to sleep until the earliest one frees).
    fn load_dcache_access(&mut self, slot: u32, addr: u64, e: Femtos) -> Option<Femtos> {
        let r = self.l1d.access(addr, AccessKind::Read);
        let p = &self.cfg.params;
        let a_cycles = p.l1_a_cycles;
        let mshrs = p.mshrs;
        match r.served {
            ServedBy::APartition => Some(e + self.cycles_in(LS, a_cycles)),
            ServedBy::BPartition => {
                let b = self.l1_b_latency(self.dl2_idx);
                Some(e + self.cycles_in(LS, b))
            }
            ServedBy::Miss => {
                if self.mshr.len() >= mshrs {
                    // Sleep until the earliest MSHR frees.
                    if let Some(&wake) = self.mshr.iter().min() {
                        self.st_mut(slot).next_check = wake;
                    }
                    return None;
                }
                let base = self.cycles_in(LS, a_cycles);
                let delay = self.l2_access(addr, AccessKind::Read);
                let done = e + base + delay;
                self.mshr.push(done);
                Some(done)
            }
        }
    }

    /// Committed stores perform their writes with leftover ports.
    fn perform_committed_stores(&mut self, mut ports: usize, e: Femtos) {
        while ports > 0 {
            let Some(job) = self.store_jobs.front().copied() else {
                break;
            };
            if job.ready > e {
                break;
            }
            self.store_jobs.pop_front();
            let r = self.l1d.access(job.addr, AccessKind::Write);
            if r.served == ServedBy::Miss {
                // Write-allocate: fill the line from L2/memory in the
                // background (store buffer hides the latency).
                let _ = self.l2_access(job.addr, AccessKind::Write);
            }
            ports -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// The span of simulated time with no commits that trips the
    /// deadlock detector (a model-bug backstop, far beyond any real
    /// stall).
    const DEADLOCK_SPAN: Femtos = Femtos::from_us(200);

    /// Earliest next edge across the four domains (ties broken by
    /// domain index, front end first).
    #[inline]
    fn earliest_edge(&self) -> (usize, Femtos) {
        let mut d = 0;
        let mut t = self.clocks[0].peek_next_edge();
        for i in 1..4 {
            let ti = self.clocks[i].peek_next_edge();
            if ti < t {
                t = ti;
                d = i;
            }
        }
        (d, t)
    }

    /// Updates the deadlock detector after an edge at `e`; panics when a
    /// long span of simulated time passes with no commits (a model bug).
    /// State lives on `self` so detection spans `run_chunk` calls
    /// exactly as it spans one continuous `run`.
    #[inline]
    fn note_progress(&mut self, e: Femtos) {
        if self.committed > self.last_progress_count {
            self.last_progress_count = self.committed;
            self.last_progress_time = e;
        } else if e > self.last_progress_time + Self::DEADLOCK_SPAN {
            panic!(
                "pipeline deadlock at {} ({} committed, rob={}, iq=[{},{}], lsq={}, fq={})",
                e,
                self.committed,
                self.rob.len(),
                self.iq[0].len(),
                self.iq[1].len(),
                self.lsq.len(),
                self.fetch_q.len(),
            );
        }
    }

    /// Bulk idle-edge skip (fast path): any edge strictly before every
    /// domain's next-work bound provably runs a no-op handler, so
    /// fast-forward all four clocks to the earliest bound at once. Each
    /// skipped edge still ticks its clock (consuming the identical
    /// jitter/relock RNG sequence), which is what keeps results
    /// bit-identical to the reference loop. The deadlock span caps the
    /// jump so a buggy bound still trips the detector. Returns true when
    /// the edge at `t` was skipped over.
    #[inline]
    fn try_fast_forward(&mut self, t: Femtos) -> bool {
        let horizon = (self.last_progress_time + Self::DEADLOCK_SPAN)
            .min(*self.next_work.iter().min().expect("four domains"));
        if t >= horizon {
            return false;
        }
        for clock in &mut self.clocks {
            // O(1) for jitter-free clocks (the synchronous machines),
            // edge-by-edge otherwise to consume the identical
            // jitter-RNG sequence.
            clock.fast_forward_to(horizon);
        }
        true
    }

    /// Runs the machine until `window` instructions have committed and
    /// returns the measured result.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (a model bug), detected as a long
    /// span of simulated time with no commits.
    pub fn run<S: InstructionStream>(mut self, stream: &mut S, window: u64) -> SimResult {
        assert!(window > 0, "window must be positive");

        while self.committed < window {
            let (d, t) = self.earliest_edge();
            if self.event_driven && self.try_fast_forward(t) {
                continue;
            }
            let e = self.clocks[d].tick();
            if !self.event_driven || e >= self.next_work[d] {
                match d {
                    0 => self.fe_edge(e, stream, window),
                    1 | 2 => self.exec_edge(d, e),
                    3 => self.ls_edge(e),
                    _ => unreachable!(),
                }
            }
            self.note_progress(e);
        }

        // lint:allow(hot-path-alloc): one name copy per completed run, after the stepping loop exits
        let name = stream.name().to_string();
        self.finish(&name)
    }

    /// Advances the machine until it either commits its `window`-th
    /// instruction (returns `true` — harvest with [`Simulator::finish`])
    /// or reaches the trace pacing bound `upto` (returns `false`), with
    /// every piece of pipeline state preserved between calls. This is
    /// the lockstep-cohort primitive: K simulators over one shared
    /// [`PreparedTrace`] take turns advancing through the same chunk of
    /// trace positions while that chunk's fact columns are cache-hot.
    ///
    /// The pacing bound pauses the machine *before ticking* at a
    /// front-end edge that is open to fetch at or past trace index
    /// `upto`. The pause mutates nothing, so resuming with a larger
    /// `upto` re-evaluates the identical edge and the state evolution is
    /// bit-identical under every chunking schedule — including the
    /// degenerate `upto = u64::MAX` single chunk, which is exactly
    /// [`Simulator::run`] over the same instructions (the determinism
    /// suite asserts all of this). `window` must be the same value on
    /// every call.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, if the prepared trace was densified
    /// for a different I-cache line size than this machine's, if the
    /// trace runs out before the window commits (capture at least
    /// `window + max_in_flight()` instructions), or on pipeline
    /// deadlock.
    /// Instructions committed so far. A memoized snapshot taken at a
    /// pacing pause is only spliceable into a job whose commit window
    /// strictly exceeds this count (commit stops exactly at the window,
    /// so a paused machine with `committed < window` evolved identically
    /// under every larger window).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Cache-model bytes actually resident for this machine (the three
    /// accounting caches' lazily allocated storage plus set indices).
    pub fn cache_model_resident_bytes(&self) -> usize {
        self.icache.resident_bytes() + self.l1d.resident_bytes() + self.l2.resident_bytes()
    }

    /// Cache-model bytes the pre-PR 7 eager array-of-structs layout
    /// would hold resident for the same geometries.
    pub fn cache_model_eager_bytes(&self) -> usize {
        self.icache.eager_layout_bytes()
            + self.l1d.eager_layout_bytes()
            + self.l2.eager_layout_bytes()
    }

    /// Advances the machine over `prep` until either `window`
    /// instructions have committed (returns `true`) or fetch is about
    /// to consume trace index `upto` (returns `false`; resume by
    /// calling again with a larger bound). The pause mutates nothing,
    /// so the paused state is independent of the chunking schedule
    /// that reached it.
    pub fn run_chunk(&mut self, prep: &PreparedTrace, window: u64, upto: u64) -> bool {
        assert!(window > 0, "window must be positive");
        assert_eq!(
            prep.line_bytes(),
            self.cfg.params.line_bytes,
            "prepared trace line size must match the machine configuration"
        );

        while self.committed < window {
            let (d, t) = self.earliest_edge();

            // Pacing gate. Fetch is about to run (and consume trace) iff
            // this is a handled front-end edge with fetch un-blocked and
            // un-stalled; `recompute_fe_wake` keeps `next_work[FE]` at
            // or below `max(fetch_stalled_until, e)` whenever fetch is
            // open, so an eligible fetch edge can never be fast-
            // forwarded over and this gate is always reached.
            if d == FE
                && self.trace_pos >= upto
                && self.fetch_blocked_on.is_none()
                && t >= self.fetch_stalled_until
                && (!self.event_driven || t >= self.next_work[FE])
            {
                return false;
            }

            if self.event_driven && self.try_fast_forward(t) {
                continue;
            }
            let e = self.clocks[d].tick();
            if !self.event_driven || e >= self.next_work[d] {
                match d {
                    0 => self.fe_edge_prepared(e, prep, window),
                    1 | 2 => self.exec_edge(d, e),
                    3 => self.ls_edge(e),
                    _ => unreachable!(),
                }
            }
            self.note_progress(e);
        }
        true
    }

    // lint:endhot — everything below runs once per completed simulation
    // (result harvest), not per instruction or per edge.

    /// Folds outstanding statistics and produces the [`SimResult`] for a
    /// machine whose run has completed (the chunked-stepping harvest;
    /// [`Simulator::run`] goes through this too).
    pub fn finish(mut self, benchmark: &str) -> SimResult {
        // Fold any un-drained interval statistics into the totals.
        let ic = self.icache.take_stats();
        self.accumulate_ic(&ic);
        let l1 = self.l1d.take_stats();
        let l2 = self.l2.take_stats();
        self.accumulate_dl2(&l1, &l2);

        SimResult {
            benchmark: benchmark.to_string(),
            committed: self.committed,
            runtime: self.last_commit_at,
            final_freqs: [
                self.clocks[0].frequency(),
                self.clocks[1].frequency(),
                self.clocks[2].frequency(),
                self.clocks[3].frequency(),
            ],
            domain_cycles: [
                self.clocks[0].cycle(),
                self.clocks[1].cycle(),
                self.clocks[2].cycle(),
                self.clocks[3].cycle(),
            ],
            branches: self.branches,
            mispredicts: self.mispredicts,
            icache: self.ic_total,
            l1d: self.l1d_total,
            l2: self.l2_total,
            reconfigs: self.reconfigs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McdConfig;
    use gals_isa::ArchReg;

    /// Simple synthetic stream for unit tests: parallel int ALU chains
    /// with occasional well-predicted branches.
    struct TestStream {
        i: u64,
    }

    impl InstructionStream for TestStream {
        fn next_inst(&mut self) -> DynInst {
            let i = self.i;
            self.i += 1;
            let pc = 0x1000 + (i % 256) * 4;
            if i % 16 == 15 {
                DynInst::branch(pc, ArchReg::int(1), true, 0x1000)
            } else {
                let r = ArchReg::int(1 + (i % 8) as u8);
                DynInst::alu(pc, OpClass::IntAlu, r, [Some(r), None])
            }
        }
        fn name(&self) -> &str {
            "test-stream"
        }
    }

    #[test]
    fn sync_machine_runs_to_completion() {
        let cfg = MachineConfig::best_synchronous();
        let r = Simulator::new(cfg).run(&mut TestStream { i: 0 }, 10_000);
        assert_eq!(r.committed, 10_000);
        assert!(r.runtime > Femtos::ZERO);
        assert!(r.bips() > 0.1, "IPC should be reasonable: {}", r.bips());
        assert!(r.reconfigs.is_empty());
    }

    #[test]
    fn program_adaptive_runs() {
        let cfg = MachineConfig::program_adaptive(McdConfig::smallest());
        let r = Simulator::new(cfg).run(&mut TestStream { i: 0 }, 10_000);
        assert_eq!(r.committed, 10_000);
        assert!(r.reconfigs.is_empty(), "no controllers in program mode");
    }

    #[test]
    fn phase_adaptive_runs() {
        let cfg = MachineConfig::phase_adaptive(McdConfig::smallest());
        let r = Simulator::new(cfg).run(&mut TestStream { i: 0 }, 40_000);
        assert_eq!(r.committed, 40_000);
    }

    #[test]
    fn deterministic_runs() {
        let a =
            Simulator::new(MachineConfig::best_synchronous()).run(&mut TestStream { i: 0 }, 5_000);
        let b =
            Simulator::new(MachineConfig::best_synchronous()).run(&mut TestStream { i: 0 }, 5_000);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.mispredicts, b.mispredicts);
    }

    #[test]
    fn ipc_in_plausible_range() {
        let cfg = MachineConfig::best_synchronous();
        let freq = cfg.initial_frequencies()[0];
        let r = Simulator::new(cfg).run(&mut TestStream { i: 0 }, 20_000);
        let cycles = freq.as_hz() as f64 * r.runtime.as_secs();
        let ipc = r.committed as f64 / cycles;
        // 8 parallel chains, issue width 6, 4 ALUs: IPC should be solidly
        // superscalar but bounded by the ALU count.
        assert!(ipc > 1.0 && ipc < 5.0, "ipc {ipc}");
    }

    #[test]
    fn branch_stats_collected() {
        let r =
            Simulator::new(MachineConfig::best_synchronous()).run(&mut TestStream { i: 0 }, 20_000);
        assert!(r.branches > 1_000);
        // The all-taken loop branch is nearly perfectly predictable.
        assert!(r.mispredict_rate() < 0.1, "rate {}", r.mispredict_rate());
    }

    #[test]
    fn caches_see_fetch_traffic() {
        let r =
            Simulator::new(MachineConfig::best_synchronous()).run(&mut TestStream { i: 0 }, 20_000);
        assert!(r.icache.accesses > 0);
        // 256-instruction loop fits the I-cache: only cold misses remain.
        assert!(r.icache.miss_rate() < 0.03, "rate {}", r.icache.miss_rate());
    }

    #[test]
    fn slab_capacity_exceeds_in_flight_bound() {
        let cfg = MachineConfig::best_synchronous();
        let bound = cfg.params.max_in_flight();
        let sim = Simulator::new(cfg);
        assert!(sim.slab.len() >= bound);
        assert!(sim.slab.len().is_power_of_two());
        assert!(sim.ring.len() >= 4 * sim.slab.len());
    }
}
