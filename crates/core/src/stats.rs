//! Simulation results and reconfiguration traces.

use gals_common::{Femtos, Hertz};
use gals_timing::{Dl2Config, ICacheConfig, IqSize};

/// Aggregate hit/miss summary for one cache over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Accesses.
    pub accesses: u64,
    /// Hits served by the A partition.
    pub a_hits: u64,
    /// Hits served by the B partition (phase-adaptive machines only).
    pub b_hits: u64,
    /// Misses to the next level.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheSummary {
    /// Miss rate over all accesses (0.0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// What a reconfiguration event changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigKind {
    /// D-cache/L2 pair moved to a new configuration.
    Dl2(Dl2Config),
    /// I-cache/branch-predictor pair moved to a new configuration.
    ICache(ICacheConfig),
    /// Integer issue queue resized.
    IqInt(IqSize),
    /// Floating-point issue queue resized.
    IqFp(IqSize),
}

/// One entry of the reconfiguration trace (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// Committed-instruction count when the controller made the decision.
    pub at_committed: u64,
    /// The new configuration.
    pub kind: ReconfigKind,
}

/// The result of one simulation run.
///
/// Implements `PartialEq` so the determinism regression tests can assert
/// that the event-driven fast path and the straightforward reference path
/// produce bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Committed instructions.
    pub committed: u64,
    /// Simulated wall time from start to the last commit.
    pub runtime: Femtos,
    /// Per-domain final frequencies `[fe, int, fp, ls]`.
    pub final_freqs: [Hertz; 4],
    /// Per-domain clock cycles consumed `[fe, int, fp, ls]`.
    pub domain_cycles: [u64; 4],
    /// Conditional branches predicted.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// L1 instruction cache summary.
    pub icache: CacheSummary,
    /// L1 data cache summary.
    pub l1d: CacheSummary,
    /// Unified L2 summary (data + instruction misses).
    pub l2: CacheSummary,
    /// Reconfiguration decisions, in commit order (phase-adaptive only).
    pub reconfigs: Vec<ReconfigEvent>,
}

impl SimResult {
    /// Instructions per second of simulated time, in billions.
    pub fn bips(&self) -> f64 {
        if self.runtime == Femtos::ZERO {
            0.0
        } else {
            self.committed as f64 / self.runtime.as_secs() / 1e9
        }
    }

    /// Runtime in nanoseconds (the unit used for comparisons).
    pub fn runtime_ns(&self) -> f64 {
        self.runtime.as_ns()
    }

    /// Branch misprediction rate (0.0 when no branches).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_summary_miss_rate() {
        let s = CacheSummary {
            accesses: 100,
            a_hits: 80,
            b_hits: 10,
            misses: 10,
            writebacks: 2,
        };
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(CacheSummary::default().miss_rate(), 0.0);
    }

    #[test]
    fn bips_computation() {
        let r = SimResult {
            benchmark: "t".into(),
            committed: 1_000,
            runtime: Femtos::from_us(1),
            final_freqs: [Hertz::from_ghz(1.0); 4],
            domain_cycles: [0; 4],
            branches: 10,
            mispredicts: 1,
            icache: CacheSummary::default(),
            l1d: CacheSummary::default(),
            l2: CacheSummary::default(),
            reconfigs: vec![],
        };
        // 1000 insts / 1 µs = 1 GIPS.
        assert!((r.bips() - 1.0).abs() < 1e-9);
        assert!((r.mispredict_rate() - 0.1).abs() < 1e-12);
    }
}
