//! The on-line adaptation controllers (§3).

use gals_cache::{AccountingStats, CostPoint, CostTable};
use gals_timing::{Dl2Config, ICacheConfig, IqSize, TimingModel, Variant};

use crate::config::CoreParams;
use crate::ilp::{IlpDecision, IlpTracker};

/// Running average with exponential decay, used to estimate miss service
/// costs for the cache controllers.
#[derive(Debug, Clone)]
pub(crate) struct ServiceAvg {
    value_ns: f64,
}

impl ServiceAvg {
    pub(crate) fn new(initial_ns: f64) -> Self {
        ServiceAvg {
            value_ns: initial_ns,
        }
    }

    pub(crate) fn update(&mut self, sample_ns: f64) {
        // 1/16 decay: cheap in hardware (shift), responsive to phases.
        self.value_ns += (sample_ns - self.value_ns) / 16.0;
    }

    pub(crate) fn get(&self) -> f64 {
        self.value_ns
    }
}

/// Interval controller for one adaptive cache (the I-cache) or cache pair
/// (L1-D + L2), implementing §3.1: at the end of each 15K-instruction
/// interval, reconstruct every configuration's total access cost from the
/// Accounting Cache statistics and pick the argmin.
#[derive(Debug, Clone)]
pub struct CacheController {
    l1_table: CostTable,
    /// Joint L2 table for the D/L2 pair (None for the I-cache controller,
    /// whose misses are costed via the measured L2 service average).
    l2_table: Option<CostTable>,
    current: usize,
}

impl CacheController {
    /// Builds the D/L2 pair controller: four joint configurations whose
    /// clock follows Figure 2 and whose B latencies follow Table 5.
    pub fn for_dl2_pair(params: &CoreParams, timing: &TimingModel, current: usize) -> Self {
        let mut l1_points = Vec::with_capacity(4);
        let mut l2_points = Vec::with_capacity(4);
        for (idx, cfg) in Dl2Config::ALL.iter().enumerate() {
            let f = timing.dl2_frequency(*cfg, Variant::Adaptive);
            let cycle_ns = 1e9 / f.as_hz() as f64;
            l1_points.push(CostPoint {
                a_ways: cfg.ways(),
                a_cycles: params.l1_a_cycles,
                b_cycles: params.l1_b_cycles[idx],
                cycle_ns,
            });
            l2_points.push(CostPoint {
                a_ways: cfg.ways(),
                a_cycles: params.l2_a_cycles,
                b_cycles: params.l2_b_cycles[idx],
                cycle_ns,
            });
        }
        CacheController {
            l1_table: CostTable::new(l1_points, 8),
            l2_table: Some(CostTable::new(l2_points, 8)),
            current,
        }
    }

    /// Builds the I-cache controller: four configurations whose clock
    /// follows Figure 3 (adaptive curve).
    pub fn for_icache(params: &CoreParams, timing: &TimingModel, current: usize) -> Self {
        let points = ICacheConfig::ALL
            .iter()
            .enumerate()
            .map(|(idx, cfg)| {
                let f = timing.icache_frequency(*cfg);
                CostPoint {
                    a_ways: cfg.ways(),
                    a_cycles: params.l1_a_cycles,
                    b_cycles: params.l1_b_cycles[idx],
                    cycle_ns: 1e9 / f.as_hz() as f64,
                }
            })
            .collect();
        CacheController {
            l1_table: CostTable::new(points, 4),
            l2_table: None,
            current,
        }
    }

    /// Currently selected configuration index.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Forces the current configuration (used when a pending resize is
    /// applied).
    pub fn set_current(&mut self, idx: usize) {
        assert!(idx < self.l1_table.points().len());
        self.current = idx;
    }

    /// End-of-interval decision. `l1_stats` are the interval counters of
    /// the (first-level) Accounting Cache; `l2_stats` must be given for
    /// the D/L2 pair controller. `miss_ns` is the measured average
    /// service time of a miss out of the last modeled level (L2 service
    /// for the I-cache; memory for the pair).
    ///
    /// Returns `Some(new_index)` when the optimal configuration differs
    /// from the current one.
    pub fn decide(
        &mut self,
        l1_stats: &AccountingStats,
        l2_stats: Option<&AccountingStats>,
        miss_ns: f64,
    ) -> Option<usize> {
        let n = self.l1_table.points().len();
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for idx in 0..n {
            let mut cost = match self.l2_table.as_ref() {
                // Pair: L1 hits cost cycles; every L1 miss is an L2 access
                // already counted in l2_stats; L2 misses go to memory.
                Some(l2_table) => {
                    self.l1_table.cost_ns(idx, l1_stats, 0.0)
                        + l2_table.cost_ns(idx, l2_stats.expect("pair needs L2 stats"), miss_ns)
                }
                // Single cache: misses costed at the measured next-level
                // service time.
                None => self.l1_table.cost_ns(idx, l1_stats, miss_ns),
            };
            // Deterministic tie-break toward the current configuration to
            // avoid pointless relocks on exact ties.
            if idx == self.current {
                cost *= 0.999_999;
            }
            if cost < best_cost {
                best_cost = cost;
                best = idx;
            }
        }
        if best != self.current {
            self.current = best;
            Some(best)
        } else {
            None
        }
    }
}

/// The §3.2 issue-queue controller: wraps the [`IlpTracker`] and converts
/// completed tracking intervals into queue-size changes.
///
/// Two engineering guards temper raw interval decisions (the tracking
/// interval is only ~N instructions, while a PLL relock spans tens of
/// thousands; without damping, quantization noise in M would thrash the
/// clock):
///
/// * a queue resizes only after the same non-current size wins
///   [`IqController::STICKINESS`] consecutive intervals;
/// * decisions are ignored for a domain whose PLL is already relocking.
#[derive(Debug, Clone)]
pub struct IqController {
    tracker: IlpTracker,
    freqs_ghz: [f64; 4],
    current_int: IqSize,
    current_fp: IqSize,
    streak_int: (IqSize, u32),
    streak_fp: (IqSize, u32),
}

impl IqController {
    /// Consecutive intervals a challenger size must win before a resize.
    pub const STICKINESS: u32 = 3;

    /// Builds the controller with Figure 4 frequencies.
    pub fn new(timing: &TimingModel, current_int: IqSize, current_fp: IqSize) -> Self {
        let freqs_ghz = [
            timing.iq_frequency(IqSize::Q16).as_ghz(),
            timing.iq_frequency(IqSize::Q32).as_ghz(),
            timing.iq_frequency(IqSize::Q48).as_ghz(),
            timing.iq_frequency(IqSize::Q64).as_ghz(),
        ];
        IqController {
            tracker: IlpTracker::new(),
            freqs_ghz,
            current_int,
            current_fp,
            streak_int: (current_int, 0),
            streak_fp: (current_fp, 0),
        }
    }

    /// Currently selected sizes `(int, fp)`.
    pub fn current(&self) -> (IqSize, IqSize) {
        (self.current_int, self.current_fp)
    }

    /// Forces the recorded current sizes (when pending resizes apply).
    pub fn set_current(&mut self, int: IqSize, fp: IqSize) {
        self.current_int = int;
        self.current_fp = fp;
    }

    /// Observes one renamed instruction; when the tracking interval
    /// completes and the damped decision differs from the current sizes,
    /// returns the change. `locked_int` / `locked_fp` suppress decisions
    /// for domains whose PLL is mid-relock.
    pub fn observe(
        &mut self,
        inst: &gals_isa::DynInst,
        locked_int: bool,
        locked_fp: bool,
    ) -> Option<IlpDecision> {
        self.tracker.observe(inst);
        if !self.tracker.complete() {
            return None;
        }
        let d = self.tracker.decide(self.freqs_ghz);

        let settle = |want: IqSize, current: IqSize, streak: &mut (IqSize, u32), locked: bool| {
            if locked || want == current {
                *streak = (current, 0);
                return None;
            }
            if streak.0 == want {
                streak.1 += 1;
            } else {
                *streak = (want, 1);
            }
            (streak.1 >= Self::STICKINESS).then_some(want)
        };

        let new_int = settle(d.iq_int, self.current_int, &mut self.streak_int, locked_int);
        let new_fp = settle(d.iq_fp, self.current_fp, &mut self.streak_fp, locked_fp);
        if new_int.is_none() && new_fp.is_none() {
            return None;
        }
        if let Some(s) = new_int {
            self.current_int = s;
            self.streak_int = (s, 0);
        }
        if let Some(s) = new_fp {
            self.current_fp = s;
            self.streak_fp = (s, 0);
        }
        Some(IlpDecision {
            iq_int: self.current_int,
            iq_fp: self.current_fp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_cache::AccountingStats;
    use gals_isa::{ArchReg, DynInst, OpClass};

    fn stats(pos_hits: [u64; 8], misses: u64) -> AccountingStats {
        AccountingStats {
            pos_hits,
            misses,
            writebacks: 0,
            accesses: pos_hits.iter().sum::<u64>() + misses,
        }
    }

    #[test]
    fn dl2_controller_upsizes_for_deep_reuse() {
        let params = CoreParams::default();
        let timing = TimingModel::default();
        let mut ctrl = CacheController::for_dl2_pair(&params, &timing, 0);
        // Loads hit MRU positions 1-3 in L1: a wider A partition avoids
        // the B-partition latency entirely.
        let l1 = stats([1_000, 8_000, 8_000, 8_000, 0, 0, 0, 0], 100);
        let l2 = stats([80, 10, 5, 5, 0, 0, 0, 0], 20);
        let d = ctrl.decide(&l1, Some(&l2), 94.0);
        assert!(d.is_some());
        assert!(d.unwrap() >= 2, "expected upsizing, got {d:?}");
    }

    #[test]
    fn dl2_controller_stays_small_for_shallow_reuse() {
        let params = CoreParams::default();
        let timing = TimingModel::default();
        let mut ctrl = CacheController::for_dl2_pair(&params, &timing, 0);
        let l1 = stats([50_000, 100, 0, 0, 0, 0, 0, 0], 200);
        let l2 = stats([250, 20, 0, 0, 0, 0, 0, 0], 30);
        assert_eq!(ctrl.decide(&l1, Some(&l2), 94.0), None);
        assert_eq!(ctrl.current(), 0);
    }

    #[test]
    fn icache_controller_downsizes_back() {
        let params = CoreParams::default();
        let timing = TimingModel::default();
        let mut ctrl = CacheController::for_icache(&params, &timing, 3);
        // Everything hits MRU position 0: the direct-mapped config wins
        // on clock alone.
        let s = stats([100_000, 10, 0, 0, 0, 0, 0, 0], 50);
        let d = ctrl.decide(&s, None, 20.0);
        assert_eq!(d, Some(0));
        assert_eq!(ctrl.current(), 0);
    }

    #[test]
    fn iq_controller_reports_changes_once() {
        let timing = TimingModel::default();
        let mut ctrl = IqController::new(&timing, IqSize::Q16, IqSize::Q16);
        // Serial chain: decision is Q16 == current -> no change reported.
        let mut changes = 0;
        for i in 0..200u64 {
            let inst = DynInst::alu(
                0x1000 + i * 4,
                OpClass::IntAlu,
                ArchReg::int(1),
                [Some(ArchReg::int(1)), None],
            );
            if ctrl.observe(&inst, false, false).is_some() {
                changes += 1;
            }
        }
        assert_eq!(changes, 0);
        assert_eq!(ctrl.current().0, IqSize::Q16);
    }

    #[test]
    fn iq_controller_switches_on_parallel_code() {
        let timing = TimingModel::default();
        let mut ctrl = IqController::new(&timing, IqSize::Q16, IqSize::Q16);
        let mut saw_change = false;
        for i in 0..400u64 {
            // 20 chains diluted 1:1 with depth-1 flat work: measured ILP
            // grows with the window, justifying a larger queue.
            let inst = if i % 2 == 0 {
                DynInst::alu(
                    0x1000 + i * 4,
                    OpClass::IntAlu,
                    ArchReg::int(25),
                    [Some(ArchReg::int(0)), None],
                )
            } else {
                let r = ArchReg::int(1 + ((i / 2) % 20) as u8);
                DynInst::alu(0x1000 + i * 4, OpClass::IntAlu, r, [Some(r), None])
            };
            if let Some(d) = ctrl.observe(&inst, false, false) {
                saw_change = true;
                assert!(d.iq_int > IqSize::Q16);
            }
        }
        assert!(
            saw_change,
            "diluted parallel chains should trigger an upsize"
        );
    }

    #[test]
    fn service_average_converges() {
        let mut avg = ServiceAvg::new(10.0);
        for _ in 0..200 {
            avg.update(90.0);
        }
        assert!((avg.get() - 90.0).abs() < 1.0);
    }
}
