//! Machine configuration: Table 5 parameters plus the mode-specific
//! structure choices.

use gals_common::{Femtos, Hertz};
use gals_control::{CacheLatencies, ControlPolicy};
use gals_isa::OpClass;
use gals_timing::{Dl2Config, ICacheConfig, IqSize, SyncICacheOption, TimingModel, Variant};

/// One point in the adaptive MCD configuration space: 4 × 4 × 4 × 4 = 256
/// combinations (the space the Program-Adaptive sweep searches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct McdConfig {
    /// Front-end I-cache / branch-predictor configuration (Table 2).
    pub icache: ICacheConfig,
    /// Load/store D-cache / L2 configuration (Table 1).
    pub dl2: Dl2Config,
    /// Integer issue-queue size.
    pub iq_int: IqSize,
    /// Floating-point issue-queue size.
    pub iq_fp: IqSize,
}

impl McdConfig {
    /// The base configuration: everything smallest and fastest.
    pub fn smallest() -> Self {
        McdConfig {
            icache: ICacheConfig::K16W1,
            dl2: Dl2Config::K32W1,
            iq_int: IqSize::Q16,
            iq_fp: IqSize::Q16,
        }
    }

    /// Everything largest (and slowest-clocked).
    pub fn largest() -> Self {
        McdConfig {
            icache: ICacheConfig::K64W4,
            dl2: Dl2Config::K256W8,
            iq_int: IqSize::Q64,
            iq_fp: IqSize::Q64,
        }
    }

    /// Enumerates all 256 configurations.
    pub fn enumerate() -> Vec<McdConfig> {
        let mut v = Vec::with_capacity(256);
        for &icache in &ICacheConfig::ALL {
            for &dl2 in &Dl2Config::ALL {
                for &iq_int in &IqSize::ALL {
                    for &iq_fp in &IqSize::ALL {
                        v.push(McdConfig {
                            icache,
                            dl2,
                            iq_int,
                            iq_fp,
                        });
                    }
                }
            }
        }
        v
    }

    /// Compact display key, e.g. `ic16k1W_dl32k1W_qi16_qf16`.
    pub fn key(&self) -> String {
        format!(
            "ic{}_dl{}_qi{}_qf{}",
            self.icache,
            self.dl2.ways(),
            self.iq_int.entries(),
            self.iq_fp.entries()
        )
    }
}

/// One point in the fully synchronous design space: 16 I-cache options ×
/// 4 D/L2 × 4 int IQ × 4 FP IQ = 1,024 combinations (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncConfig {
    /// Fixed I-cache option (Table 3).
    pub icache: SyncICacheOption,
    /// Fixed D/L2 configuration (optimal variant).
    pub dl2: Dl2Config,
    /// Integer issue-queue size.
    pub iq_int: IqSize,
    /// Floating-point issue-queue size.
    pub iq_fp: IqSize,
}

impl SyncConfig {
    /// The best-overall configuration found by the paper's sweep: 64 KB
    /// direct-mapped I-cache, 32 KB/256 KB direct-mapped D/L2, both issue
    /// queues at 16 entries (§4).
    pub fn paper_best() -> Self {
        SyncConfig {
            icache: SyncICacheOption::paper_best(),
            dl2: Dl2Config::K32W1,
            iq_int: IqSize::Q16,
            iq_fp: IqSize::Q16,
        }
    }

    /// Enumerates all 1,024 configurations.
    pub fn enumerate() -> Vec<SyncConfig> {
        let mut v = Vec::with_capacity(1024);
        for icache in SyncICacheOption::all() {
            for &dl2 in &Dl2Config::ALL {
                for &iq_int in &IqSize::ALL {
                    for &iq_fp in &IqSize::ALL {
                        v.push(SyncConfig {
                            icache,
                            dl2,
                            iq_int,
                            iq_fp,
                        });
                    }
                }
            }
        }
        v
    }

    /// The single global clock frequency: the slowest of the chosen
    /// structures' maximum frequencies, capped by the non-modeled paths.
    pub fn global_frequency(&self, model: &TimingModel) -> Hertz {
        let f = model
            .sync_icache_frequency(self.icache)
            .min(model.dl2_frequency(self.dl2, Variant::Optimal))
            .min(model.iq_frequency(self.iq_int))
            .min(model.iq_frequency(self.iq_fp));
        f.min(model.domain_cap())
    }

    /// Compact display key.
    pub fn key(&self) -> String {
        format!(
            "ic{}_dl{}_qi{}_qf{}",
            self.icache,
            self.dl2.ways(),
            self.iq_int.entries(),
            self.iq_fp.entries()
        )
    }
}

/// Microarchitectural parameters (Table 5) and model constants shared by
/// all machine styles.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreParams {
    /// Fetch queue entries.
    pub fetch_queue: usize,
    /// Decode (rename/dispatch) width per front-end cycle.
    pub decode_width: usize,
    /// Issue width per execution-domain cycle.
    pub issue_width: usize,
    /// Retire width per front-end cycle.
    pub retire_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// Physical integer registers.
    pub phys_int: usize,
    /// Physical floating-point registers.
    pub phys_fp: usize,
    /// Integer ALUs (pipelined).
    pub int_alus: usize,
    /// Integer multiply/divide units.
    pub int_muldiv: usize,
    /// FP ALUs (pipelined adders).
    pub fp_alus: usize,
    /// FP multiply/divide/sqrt units.
    pub fp_muldiv: usize,
    /// D-cache ports per load/store cycle.
    pub dcache_ports: usize,
    /// Outstanding L1 misses (MSHRs).
    pub mshrs: usize,
    /// Branch mispredict penalty, front-end cycles (9 sync / 10 adaptive).
    pub mispredict_fe_cycles: u64,
    /// Branch mispredict penalty, integer cycles (7 sync / 9 adaptive).
    pub mispredict_int_cycles: u64,
    /// L1 A-partition latency in cycles (I and D).
    pub l1_a_cycles: u64,
    /// L1 B-partition latency per configuration index (Table 5:
    /// 2/8, 2/5, 2/2, 2/–).
    pub l1_b_cycles: [Option<u64>; 4],
    /// L2 A-partition latency in cycles.
    pub l2_a_cycles: u64,
    /// L2 B-partition latency per configuration index (12/43, 12/27,
    /// 12/12, 12/–).
    pub l2_b_cycles: [Option<u64>; 4],
    /// Main-memory first-access latency.
    pub mem_first: Femtos,
    /// Main-memory latency per subsequent 8-byte transfer.
    pub mem_burst: Femtos,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Adaptation interval in committed instructions (§3.1).
    pub interval_insts: u64,
    /// Controller decision latency in front-end cycles (§3.1).
    pub decision_cycles: u64,
    /// Cycle-to-cycle clock jitter fraction for MCD domains.
    pub jitter_frac: f64,
    /// Synchronization setup window as a fraction of the faster period
    /// (§2: 30%). Exposed for ablation studies.
    pub sync_threshold_frac: f64,
    /// Multiplier on the PLL lock-time parameters (§2: mean 15 µs,
    /// range 10–20 µs at 1.0). Exposed for ablation studies.
    pub pll_scale: f64,
    /// RNG seed for clock jitter / PLL streams.
    pub clock_seed: u64,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            fetch_queue: 16,
            decode_width: 8,
            issue_width: 6,
            retire_width: 11,
            rob_entries: 256,
            lsq_entries: 64,
            phys_int: 96,
            phys_fp: 96,
            int_alus: 4,
            int_muldiv: 1,
            fp_alus: 4,
            fp_muldiv: 1,
            dcache_ports: 2,
            mshrs: 8,
            mispredict_fe_cycles: 9,
            mispredict_int_cycles: 7,
            l1_a_cycles: 2,
            l1_b_cycles: [Some(8), Some(5), Some(2), None],
            l2_a_cycles: 12,
            l2_b_cycles: [Some(43), Some(27), Some(12), None],
            mem_first: Femtos::from_ns(80),
            mem_burst: Femtos::from_ns(2),
            line_bytes: 64,
            interval_insts: 15_000,
            decision_cycles: 32,
            jitter_frac: 0.01,
            sync_threshold_frac: 0.3,
            pll_scale: 1.0,
            clock_seed: 0x6A15_0001,
        }
    }
}

impl CoreParams {
    /// Full line-fill latency from memory: first access plus the burst
    /// transfers for the rest of the line (8-byte beats).
    pub fn memory_latency(&self) -> Femtos {
        let beats = (self.line_bytes / 8).saturating_sub(1);
        self.mem_first + self.mem_burst * beats
    }

    /// Latency in cycles of an execution-class operation.
    pub fn op_latency_cycles(&self, op: OpClass) -> u64 {
        match op {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::FpSqrt => 24,
            // Loads/stores timed by the memory system, not here.
            OpClass::Load | OpClass::Store | OpClass::Nop => 1,
        }
    }

    /// Whether the unit is occupied for the full latency (unpipelined
    /// divide/sqrt) or a single initiation cycle.
    pub fn op_unpipelined(&self, op: OpClass) -> bool {
        matches!(op, OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt)
    }

    /// Upper bound on simultaneously in-flight instructions: everything
    /// the simulator tracks lives in the ROB or the fetch queue, plus
    /// the decode group in motion between them and the one buffered
    /// pending fetch. Sizes the simulator's instruction-window slab, and
    /// bounds how far a run can read past its committed window into an
    /// instruction stream (which is what lets sweeps replay
    /// finite shared traces instead of regenerating streams per job).
    pub fn max_in_flight(&self) -> usize {
        self.rob_entries + self.fetch_queue + self.decode_width + 2
    }

    /// The Table 5 cache-latency slice the adaptation engine's cost
    /// tables are built from.
    pub fn cache_latencies(&self) -> CacheLatencies {
        CacheLatencies {
            l1_a_cycles: self.l1_a_cycles,
            l1_b_cycles: self.l1_b_cycles,
            l2_a_cycles: self.l2_a_cycles,
            l2_b_cycles: self.l2_b_cycles,
        }
    }
}

/// Machine style plus its structure choices.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineKind {
    /// Single-clock processor; caches have no B partitions; mispredict
    /// penalty 9 + 7.
    Synchronous(SyncConfig),
    /// Four-domain MCD with a fixed configuration for the whole run;
    /// caches have no B partitions; mispredict penalty 10 + 9.
    ProgramAdaptive(McdConfig),
    /// Four-domain MCD with on-line controllers; full Accounting Caches;
    /// starts from the given configuration.
    PhaseAdaptive(McdConfig),
}

/// The complete machine configuration handed to [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Machine style and structure choices.
    pub kind: MachineKind,
    /// Table 5 parameters.
    pub params: CoreParams,
    /// Circuit timing model (frequencies per configuration).
    pub timing: TimingModel,
    /// Adaptation-control policy driving a phase-adaptive machine's
    /// resizing (ignored by the fixed machine styles). Defaults to the
    /// paper's [`ControlPolicy::PaperArgmin`].
    pub control: ControlPolicy,
}

impl MachineConfig {
    /// A fully synchronous machine with the given fixed configuration.
    pub fn synchronous(cfg: SyncConfig) -> Self {
        MachineConfig {
            kind: MachineKind::Synchronous(cfg),
            params: CoreParams::default(),
            timing: TimingModel::default(),
            control: ControlPolicy::default(),
        }
    }

    /// The paper's best-overall synchronous baseline.
    pub fn best_synchronous() -> Self {
        MachineConfig::synchronous(SyncConfig::paper_best())
    }

    /// A program-adaptive MCD machine fixed at `cfg` for the whole run.
    pub fn program_adaptive(cfg: McdConfig) -> Self {
        let mut m = MachineConfig {
            kind: MachineKind::ProgramAdaptive(cfg),
            params: CoreParams::default(),
            timing: TimingModel::default(),
            control: ControlPolicy::default(),
        };
        m.apply_adaptive_penalties();
        m
    }

    /// A phase-adaptive MCD machine starting from `cfg` (conventionally
    /// [`McdConfig::smallest`]), driven by the paper's default control
    /// policy.
    pub fn phase_adaptive(cfg: McdConfig) -> Self {
        let mut m = MachineConfig {
            kind: MachineKind::PhaseAdaptive(cfg),
            params: CoreParams::default(),
            timing: TimingModel::default(),
            control: ControlPolicy::default(),
        };
        m.apply_adaptive_penalties();
        m
    }

    /// A phase-adaptive machine driven by an explicit control policy.
    pub fn phase_adaptive_with(cfg: McdConfig, policy: ControlPolicy) -> Self {
        MachineConfig::phase_adaptive(cfg).with_control(policy)
    }

    /// Replaces the adaptation-control policy.
    #[must_use]
    pub fn with_control(mut self, policy: ControlPolicy) -> Self {
        self.control = policy;
        self
    }

    /// §2: the adaptive MCD is over-pipelined at lower frequencies and
    /// pays one extra front-end cycle and two extra integer cycles on
    /// mispredictions (Table 5: 10 + 9 versus 9 + 7).
    fn apply_adaptive_penalties(&mut self) {
        self.params.mispredict_fe_cycles = 10;
        self.params.mispredict_int_cycles = 9;
    }

    /// Is this an MCD (multi-domain) machine?
    pub fn is_mcd(&self) -> bool {
        !matches!(self.kind, MachineKind::Synchronous(_))
    }

    /// Is phase adaptation (controllers + B partitions) active?
    pub fn is_phase_adaptive(&self) -> bool {
        matches!(self.kind, MachineKind::PhaseAdaptive(_))
    }

    /// Initial per-domain frequencies `[front-end, integer, fp,
    /// load/store]`.
    pub fn initial_frequencies(&self) -> [Hertz; 4] {
        match &self.kind {
            MachineKind::Synchronous(cfg) => {
                let f = cfg.global_frequency(&self.timing);
                [f; 4]
            }
            MachineKind::ProgramAdaptive(cfg) | MachineKind::PhaseAdaptive(cfg) => [
                self.timing.icache_frequency(cfg.icache),
                self.timing.iq_frequency(cfg.iq_int),
                self.timing.iq_frequency(cfg.iq_fp),
                self.timing.dl2_frequency(cfg.dl2, Variant::Adaptive),
            ],
        }
    }

    /// The initial MCD structure configuration (for sync machines, the
    /// equivalent fixed view used to size structures).
    pub fn initial_structures(&self) -> (u32, u32, Dl2Config, IqSize, IqSize) {
        match &self.kind {
            MachineKind::Synchronous(cfg) => (
                cfg.icache.size_kb(),
                cfg.icache.assoc(),
                cfg.dl2,
                cfg.iq_int,
                cfg.iq_fp,
            ),
            MachineKind::ProgramAdaptive(cfg) | MachineKind::PhaseAdaptive(cfg) => (
                cfg.icache.kb(),
                cfg.icache.ways(),
                cfg.dl2,
                cfg.iq_int,
                cfg.iq_fp,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerations_have_expected_sizes() {
        assert_eq!(McdConfig::enumerate().len(), 256);
        assert_eq!(SyncConfig::enumerate().len(), 1024);
    }

    #[test]
    fn enumerated_configs_are_unique() {
        let mcd = McdConfig::enumerate();
        for (i, a) in mcd.iter().enumerate() {
            for b in &mcd[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn paper_best_sync_frequency_set_by_icache() {
        let model = TimingModel::default();
        let best = SyncConfig::paper_best();
        let f = best.global_frequency(&model);
        assert_eq!(f, model.sync_icache_frequency(best.icache));
        // The 64 KB DM cache is the slowest chosen structure.
        assert!(f < model.iq_frequency(IqSize::Q16));
        assert!(f < model.dl2_frequency(Dl2Config::K32W1, Variant::Optimal));
    }

    #[test]
    fn mcd_base_domains_faster_than_sync_best() {
        // The frequency-for-complexity trade: every MCD base domain out-
        // clocks the best synchronous machine's global clock.
        let sync = MachineConfig::best_synchronous();
        let sync_f = sync.initial_frequencies()[0];
        let mcd = MachineConfig::program_adaptive(McdConfig::smallest());
        for f in mcd.initial_frequencies() {
            assert!(f > sync_f, "{f} vs {sync_f}");
        }
    }

    #[test]
    fn adaptive_penalties_applied() {
        let sync = MachineConfig::best_synchronous();
        assert_eq!(sync.params.mispredict_fe_cycles, 9);
        assert_eq!(sync.params.mispredict_int_cycles, 7);
        let mcd = MachineConfig::phase_adaptive(McdConfig::smallest());
        assert_eq!(mcd.params.mispredict_fe_cycles, 10);
        assert_eq!(mcd.params.mispredict_int_cycles, 9);
    }

    #[test]
    fn memory_latency_includes_burst() {
        let p = CoreParams::default();
        // 80 ns + 7 * 2 ns for a 64-byte line in 8-byte beats.
        assert_eq!(p.memory_latency(), Femtos::from_ns(94));
    }

    #[test]
    fn op_latencies_sane() {
        let p = CoreParams::default();
        assert_eq!(p.op_latency_cycles(OpClass::IntAlu), 1);
        assert!(p.op_latency_cycles(OpClass::IntDiv) > p.op_latency_cycles(OpClass::IntMul));
        assert!(p.op_unpipelined(OpClass::FpDiv));
        assert!(!p.op_unpipelined(OpClass::FpMul));
    }

    #[test]
    fn control_policy_defaults_to_paper_and_is_overridable() {
        let m = MachineConfig::phase_adaptive(McdConfig::smallest());
        assert_eq!(m.control, ControlPolicy::PaperArgmin);
        let m = MachineConfig::phase_adaptive_with(McdConfig::smallest(), ControlPolicy::Static);
        assert_eq!(m.control, ControlPolicy::Static);
        let m = MachineConfig::best_synchronous()
            .with_control(ControlPolicy::Hysteresis { threshold: 5 });
        assert_eq!(m.control, ControlPolicy::Hysteresis { threshold: 5 });
    }

    #[test]
    fn cache_latencies_mirror_params() {
        let p = CoreParams::default();
        let lat = p.cache_latencies();
        assert_eq!(lat.l1_a_cycles, p.l1_a_cycles);
        assert_eq!(lat.l1_b_cycles, p.l1_b_cycles);
        assert_eq!(lat.l2_a_cycles, p.l2_a_cycles);
        assert_eq!(lat.l2_b_cycles, p.l2_b_cycles);
        // And the control crate's own default stays in sync with Table 5.
        assert_eq!(lat, gals_control::CacheLatencies::default());
    }

    #[test]
    fn config_keys_distinct() {
        assert_ne!(McdConfig::smallest().key(), McdConfig::largest().key());
        assert!(SyncConfig::paper_best().key().contains("64k1W"));
    }
}
