//! Steady-state allocation regression test for the cohort stepping
//! path (`run_chunk` over a [`PreparedTrace`]).
//!
//! The lockstep cohort runner pauses and resumes each simulator at
//! every chunk boundary; a per-pause allocation would multiply across K
//! members × (window / C) chunks and erase the batching win. As in
//! `alloc_steady_state.rs`, two runs of different lengths over the same
//! prepared trace are compared — determinism cancels construction and
//! warm-up, so any difference is attributable to the extra instructions
//! *and* the extra chunk pauses, both of which must allocate nothing.
//! This file holds a single `#[test]` because integration-test files
//! are separate binaries: nothing else can pollute the counter.

// The workspace avoids `unsafe` everywhere else; a `GlobalAlloc`
// implementation is impossible without it, and this one only forwards
// to `System` after bumping a counter.
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gals_core::{MachineConfig, Simulator};
use gals_workloads::{suite, PreparedTrace, SharedTrace};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to `System`, whose contract is
// upheld unchanged; the only added work is a lock-free atomic increment,
// which cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` untouched to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the (ptr, layout) pair untouched to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all three arguments untouched to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is as much an allocation as a fresh one.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `window` committed instructions through `run_chunk` in `chunk`
/// -instruction trace slices and returns the final runtime.
fn run_chunked(machine: MachineConfig, prep: &PreparedTrace, window: u64, chunk: u64) -> f64 {
    let mut sim = Simulator::new(machine);
    let mut upto = 0u64;
    loop {
        upto = upto.saturating_add(chunk);
        if sim.run_chunk(prep, window, upto) {
            break;
        }
    }
    sim.finish(prep.name()).runtime_ns()
}

#[test]
fn zero_steady_state_heap_allocations_per_chunked_instruction() {
    const WARM: u64 = 10_000;
    const LONG: u64 = 30_000;
    const CHUNK: u64 = 512;

    // gcc mixes loads, stores, branches, and multi-segment data traffic
    // (same rationale as the continuous-run variant); a 512-instruction
    // chunk gives the long run ~40 extra pause/resume cycles over the
    // short one, so a single allocating pause would fail the assertion.
    let spec = suite::by_name("gcc").expect("benchmark in suite");
    let machine = MachineConfig::best_synchronous();
    let slack = machine.params.max_in_flight() as u64;
    let trace = SharedTrace::capture(&mut spec.stream(), LONG + slack);
    let prep = PreparedTrace::new(&trace, machine.params.line_bytes);

    // Dry run: fault in lazy runtime state so the measured pair starts
    // from identical ground.
    let _ = run_chunked(machine.clone(), &prep, WARM, CHUNK);

    let a0 = alloc_calls();
    let short = run_chunked(machine.clone(), &prep, WARM, CHUNK);
    let a1 = alloc_calls();
    let long = run_chunked(machine.clone(), &prep, LONG, CHUNK);
    let a2 = alloc_calls();

    assert!(short > 0.0 && long > short);
    assert!(a1 > a0, "the counter must actually be counting");

    // The long run is the short run plus (LONG - WARM) steady-state
    // instructions and ~(LONG - WARM) / CHUNK extra pauses; determinism
    // cancels everything else. The PR 7 lazily allocated cache set
    // arrays may double a few more times on the longer run — O(log
    // sets) events total, never per instruction or per pause (see
    // `alloc_steady_state.rs`, whose chunked adpcm phase pins the
    // absolute zero).
    let short_allocs = a1 - a0;
    let long_allocs = a2 - a1;
    let growth = long_allocs.saturating_sub(short_allocs);
    assert!(
        growth <= 12,
        "the {} post-warm-up chunked instructions performed {} heap \
         allocations beyond lazy set-array doubling (chunk pauses must \
         allocate nothing)",
        LONG - WARM,
        growth,
    );
}
