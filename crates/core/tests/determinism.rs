//! Determinism regression tests for the hot-path overhaul: the
//! event-driven fast loop (waiter lists, idle-edge skipping, indexed LSQ
//! bookkeeping) must produce **bit-identical** results to the
//! straightforward reference loop for every machine style, because the
//! paper's sweeps assume a (benchmark, config, window) runtime is a pure
//! function of its inputs.

use gals_core::{ControlPolicy, MachineConfig, McdConfig, SimResult, Simulator, SyncConfig};
use gals_workloads::{suite, PreparedTrace, SharedTrace};

/// Runs one spec/config pair through both loops and asserts full
/// `SimResult` equality (committed counts, runtime, per-domain cycles,
/// cache summaries, and the reconfiguration trace).
fn assert_paths_identical(machine: MachineConfig, bench: &str, window: u64) -> SimResult {
    let spec = suite::by_name(bench).expect("benchmark in suite");
    let fast = Simulator::new(machine.clone()).run(&mut spec.stream(), window);
    let reference = Simulator::new(machine)
        .use_reference_loop()
        .run(&mut spec.stream(), window);
    assert_eq!(
        fast, reference,
        "fast and reference paths diverged on {bench} @ {window}"
    );
    assert_eq!(fast.committed, window);
    fast
}

#[test]
fn synchronous_machine_is_path_independent() {
    // The synchronous baseline exercises the single-clock (jitter-free)
    // edge loop and fixed structures.
    for bench in ["adpcm_encode", "gcc", "art"] {
        assert_paths_identical(MachineConfig::best_synchronous(), bench, 20_000);
    }
}

#[test]
fn program_adaptive_machine_is_path_independent() {
    // Four independent jittered clocks and the synchronization window:
    // every cross-domain transfer time must match edge for edge.
    for cfg in [McdConfig::smallest(), McdConfig::largest()] {
        for bench in ["gzip", "apsi"] {
            assert_paths_identical(MachineConfig::program_adaptive(cfg), bench, 20_000);
        }
    }
}

#[test]
fn phase_adaptive_machine_is_path_independent() {
    // The hardest case: interval controllers fire PLL relocks and
    // resizes mid-run, so any divergence in edge bookkeeping shows up as
    // a different reconfiguration trace.
    for bench in ["apsi", "art", "em3d"] {
        let r = assert_paths_identical(
            MachineConfig::phase_adaptive(McdConfig::smallest()),
            bench,
            60_000,
        );
        // The trace itself is part of the equality above; sanity-check
        // the run was long enough to exercise the controllers.
        assert!(r.branches > 0);
    }
}

#[test]
fn memory_bound_stall_skipping_is_exact() {
    // mcf/equake stream through memory: long MSHR-limited stalls are
    // exactly where idle-edge skipping pays off, and exactly where a
    // wrong next-work bound would change load issue order.
    for bench in ["equake", "health"] {
        assert_paths_identical(MachineConfig::best_synchronous(), bench, 15_000);
        assert_paths_identical(
            MachineConfig::program_adaptive(McdConfig::smallest()),
            bench,
            15_000,
        );
    }
}

#[test]
fn alternate_sync_configs_are_path_independent() {
    // A couple of corners of the 1,024-point synchronous space (small
    // IQs / large IQs shift the bottleneck between domains).
    let all = SyncConfig::enumerate();
    let first = all[0];
    let last = *all.last().unwrap();
    for cfg in [first, last] {
        assert_paths_identical(MachineConfig::synchronous(cfg), "crafty", 12_000);
    }
}

/// Golden results for `ControlPolicy::PaperArgmin` (the default),
/// captured after the issue-queue decision-cadence fix: §3.2
/// measurements are aggregated over each adaptation interval and the
/// queues are resized at the §3.1 boundary (the pre-fix engine decided
/// per ~N-instruction tracking interval, which thrashed the execution
/// PLLs on measurement noise and let `Static` beat adaptation — the
/// original `BENCH_policy.json` anomaly). Any drift in these tuples —
/// runtime, reconfiguration count, mispredicts, or a domain cycle count,
/// under either loop — means the default policy's behavior changed and
/// must be an intentional, documented decision.
#[test]
fn paper_argmin_matches_goldens() {
    /// (benchmark, window, runtime fs, reconfig count, mispredicts,
    /// per-domain cycle counts).
    type Golden = (&'static str, u64, u64, usize, u64, [u64; 4]);
    const GOLDENS: &[Golden] = &[
        (
            "apsi",
            60_000,
            59_818_793_897,
            2,
            463,
            [95_052, 90_924, 90_924, 81_913],
        ),
        (
            "art",
            60_000,
            100_316_612_922,
            2,
            694,
            [159_403, 152_481, 152_481, 137_658],
        ),
        (
            "em3d",
            60_000,
            1_174_259_363_386,
            1,
            645,
            [1_865_897, 1_784_873, 1_784_873, 1_424_197],
        ),
        (
            "gcc",
            45_000,
            204_072_493_049,
            1,
            1_205,
            [324_271, 310_190, 310_190, 260_139],
        ),
        (
            "mst",
            45_000,
            782_243_391_287,
            1,
            204,
            [1_242_984, 1_189_009, 1_189_009, 1_001_582],
        ),
    ];
    for &(bench, window, runtime_fs, n_reconfigs, mispredicts, cycles) in GOLDENS {
        let machine = MachineConfig::phase_adaptive(McdConfig::smallest());
        assert_eq!(machine.control, ControlPolicy::PaperArgmin);
        // assert_paths_identical covers the reference loop: both loops
        // produce this result or the equality there already failed.
        let r = assert_paths_identical(machine, bench, window);
        assert_eq!(r.runtime.as_fs(), runtime_fs, "{bench}: runtime drifted");
        assert_eq!(
            r.reconfigs.len(),
            n_reconfigs,
            "{bench}: reconfig trace drifted"
        );
        assert_eq!(r.mispredicts, mispredicts, "{bench}");
        assert_eq!(r.domain_cycles, cycles, "{bench}: domain cycles drifted");
    }
}

#[test]
fn alternate_policies_are_path_independent() {
    // Every selectable policy must satisfy the same fast ≡ reference
    // invariant as the default (their decisions move PLLs and resize
    // structures mid-run, exactly like the paper controller).
    for policy in [
        ControlPolicy::Hysteresis { threshold: 2 },
        ControlPolicy::PiFeedback,
        ControlPolicy::Static,
    ] {
        let machine = MachineConfig::phase_adaptive_with(McdConfig::smallest(), policy);
        let r = assert_paths_identical(machine, "apsi", 45_000);
        if policy == ControlPolicy::Static {
            assert!(
                r.reconfigs.is_empty(),
                "static policy must never reconfigure"
            );
        }
    }
}

/// The sweep engine's trace pooling replays a recorded prefix of the
/// benchmark stream instead of regenerating it per run. That substitution
/// must be invisible: a simulation fed a [`SharedTrace`] replay must be
/// bit-identical to one fed the live stream, under both run loops, for
/// every machine style — including the phase-adaptive style whose
/// mid-run reconfigurations would expose any divergence as a different
/// reconfig trace.
#[test]
fn shared_trace_replay_is_bit_identical_to_live_streams() {
    let cases: [(MachineConfig, &str, u64); 3] = [
        (MachineConfig::best_synchronous(), "gcc", 15_000),
        (
            MachineConfig::program_adaptive(McdConfig::smallest()),
            "equake",
            12_000,
        ),
        (
            MachineConfig::phase_adaptive(McdConfig::smallest()),
            "apsi",
            40_000,
        ),
    ];
    for (machine, bench, window) in cases {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        // Record enough to cover the committed window plus everything
        // the front end can fetch beyond it (same bound the pool uses).
        let need = window + machine.params.max_in_flight() as u64;
        let trace = SharedTrace::capture(&mut spec.stream(), need);

        let live_fast = Simulator::new(machine.clone()).run(&mut spec.stream(), window);
        let replay_fast = Simulator::new(machine.clone()).run(&mut trace.replay(), window);
        assert_eq!(
            live_fast, replay_fast,
            "{bench}: fast loop diverged between live stream and trace replay"
        );

        let live_ref = Simulator::new(machine.clone())
            .use_reference_loop()
            .run(&mut spec.stream(), window);
        let replay_ref = Simulator::new(machine)
            .use_reference_loop()
            .run(&mut trace.replay(), window);
        assert_eq!(
            live_ref, replay_ref,
            "{bench}: reference loop diverged between live stream and trace replay"
        );
        assert_eq!(live_fast, live_ref, "{bench}: loops diverged");
    }
}

/// Chunked stepping over a [`PreparedTrace`] is the lockstep-cohort
/// primitive: `run_chunk(prep, window, upto)` pauses the machine at its
/// trace pacing bound and resumes with all state preserved. The pause
/// must be architecturally invisible — the final `SimResult` must be
/// bit-identical to one continuous `run()` over the live stream for
/// *every* chunking schedule, every machine style, and both run loops,
/// or cohort composition would leak into sweep results.
#[test]
fn chunked_stepping_is_bit_identical_to_run() {
    let cases: [(MachineConfig, &str, u64); 3] = [
        (MachineConfig::best_synchronous(), "gcc", 12_000),
        (
            MachineConfig::program_adaptive(McdConfig::smallest()),
            "equake",
            10_000,
        ),
        (
            MachineConfig::phase_adaptive(McdConfig::smallest()),
            "apsi",
            40_000,
        ),
    ];
    for (machine, bench, window) in cases {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        let need = window + machine.params.max_in_flight() as u64;
        let trace = SharedTrace::capture(&mut spec.stream(), need);
        let prep = PreparedTrace::new(&trace, machine.params.line_bytes);

        let baseline = Simulator::new(machine.clone()).run(&mut spec.stream(), window);

        // Chunk sizes from pathological (7) through typical (2048) to
        // the degenerate single chunk (u64::MAX disables the gate).
        for chunk in [7u64, 256, 2_048, u64::MAX] {
            let mut sim = Simulator::new(machine.clone());
            let mut upto = 0u64;
            let mut turns = 0u64;
            loop {
                upto = upto.saturating_add(chunk);
                if sim.run_chunk(&prep, window, upto) {
                    break;
                }
                turns += 1;
                assert!(turns < 1_000_000, "{bench}: chunked run never finished");
            }
            let chunked = sim.finish(bench);
            assert_eq!(
                baseline, chunked,
                "{bench}: chunk size {chunk} diverged from continuous run"
            );
        }

        // Reference loop through the same chunked schedule.
        let mut sim = Simulator::new(machine.clone()).use_reference_loop();
        let mut upto = 0u64;
        loop {
            upto = upto.saturating_add(512);
            if sim.run_chunk(&prep, window, upto) {
                break;
            }
        }
        let chunked_ref = sim.finish(bench);
        assert_eq!(
            baseline, chunked_ref,
            "{bench}: chunked reference loop diverged"
        );
    }
}

#[test]
fn fast_path_is_repeatable() {
    // Same seed + config ⇒ byte-identical results across runs of the
    // fast path itself (fixed-seed determinism, not just path equality).
    let spec = suite::by_name("vpr").unwrap();
    let machine = MachineConfig::phase_adaptive(McdConfig::smallest());
    let a = Simulator::new(machine.clone()).run(&mut spec.stream(), 30_000);
    let b = Simulator::new(machine).run(&mut spec.stream(), 30_000);
    assert_eq!(a, b);
}
