//! Determinism regression tests for the hot-path overhaul: the
//! event-driven fast loop (waiter lists, idle-edge skipping, indexed LSQ
//! bookkeeping) must produce **bit-identical** results to the
//! straightforward reference loop for every machine style, because the
//! paper's sweeps assume a (benchmark, config, window) runtime is a pure
//! function of its inputs.

use gals_core::{MachineConfig, McdConfig, SimResult, Simulator, SyncConfig};
use gals_workloads::suite;

/// Runs one spec/config pair through both loops and asserts full
/// `SimResult` equality (committed counts, runtime, per-domain cycles,
/// cache summaries, and the reconfiguration trace).
fn assert_paths_identical(machine: MachineConfig, bench: &str, window: u64) -> SimResult {
    let spec = suite::by_name(bench).expect("benchmark in suite");
    let fast = Simulator::new(machine.clone()).run(&mut spec.stream(), window);
    let reference = Simulator::new(machine)
        .use_reference_loop()
        .run(&mut spec.stream(), window);
    assert_eq!(
        fast, reference,
        "fast and reference paths diverged on {bench} @ {window}"
    );
    assert_eq!(fast.committed, window);
    fast
}

#[test]
fn synchronous_machine_is_path_independent() {
    // The synchronous baseline exercises the single-clock (jitter-free)
    // edge loop and fixed structures.
    for bench in ["adpcm_encode", "gcc", "art"] {
        assert_paths_identical(MachineConfig::best_synchronous(), bench, 20_000);
    }
}

#[test]
fn program_adaptive_machine_is_path_independent() {
    // Four independent jittered clocks and the synchronization window:
    // every cross-domain transfer time must match edge for edge.
    for cfg in [McdConfig::smallest(), McdConfig::largest()] {
        for bench in ["gzip", "apsi"] {
            assert_paths_identical(MachineConfig::program_adaptive(cfg), bench, 20_000);
        }
    }
}

#[test]
fn phase_adaptive_machine_is_path_independent() {
    // The hardest case: interval controllers fire PLL relocks and
    // resizes mid-run, so any divergence in edge bookkeeping shows up as
    // a different reconfiguration trace.
    for bench in ["apsi", "art", "em3d"] {
        let r = assert_paths_identical(
            MachineConfig::phase_adaptive(McdConfig::smallest()),
            bench,
            60_000,
        );
        // The trace itself is part of the equality above; sanity-check
        // the run was long enough to exercise the controllers.
        assert!(r.branches > 0);
    }
}

#[test]
fn memory_bound_stall_skipping_is_exact() {
    // mcf/equake stream through memory: long MSHR-limited stalls are
    // exactly where idle-edge skipping pays off, and exactly where a
    // wrong next-work bound would change load issue order.
    for bench in ["equake", "health"] {
        assert_paths_identical(MachineConfig::best_synchronous(), bench, 15_000);
        assert_paths_identical(
            MachineConfig::program_adaptive(McdConfig::smallest()),
            bench,
            15_000,
        );
    }
}

#[test]
fn alternate_sync_configs_are_path_independent() {
    // A couple of corners of the 1,024-point synchronous space (small
    // IQs / large IQs shift the bottleneck between domains).
    let all = SyncConfig::enumerate();
    let first = all[0];
    let last = *all.last().unwrap();
    for cfg in [first, last] {
        assert_paths_identical(MachineConfig::synchronous(cfg), "crafty", 12_000);
    }
}

#[test]
fn fast_path_is_repeatable() {
    // Same seed + config ⇒ byte-identical results across runs of the
    // fast path itself (fixed-seed determinism, not just path equality).
    let spec = suite::by_name("vpr").unwrap();
    let machine = MachineConfig::phase_adaptive(McdConfig::smallest());
    let a = Simulator::new(machine.clone()).run(&mut spec.stream(), 30_000);
    let b = Simulator::new(machine).run(&mut spec.stream(), 30_000);
    assert_eq!(a, b);
}
