//! Steady-state allocation regression test.
//!
//! The simulator's hot structures are all preallocated at construction:
//! the instruction-window slab, the completion ring, every pipeline
//! queue, the MSHR list, and the store-line map (which reaches its
//! working capacity during warm-up and then only recycles entries).
//! This test pins that property with a counting global allocator: after
//! a warm-up window, simulating additional instructions must perform
//! **zero** further heap allocations.
//!
//! The measurement compares two runs of different lengths over the same
//! recorded trace. Determinism makes the shorter run's execution an
//! exact prefix of the longer one's, so construction and warm-up
//! allocations cancel and any difference is attributable to the extra
//! instructions alone. This file intentionally holds a single `#[test]`
//! (plus the allocator plumbing): integration-test files are separate
//! binaries, so no concurrently running test can pollute the counter.

// The workspace avoids `unsafe` everywhere else; a `GlobalAlloc`
// implementation is impossible without it, and this one only forwards
// to `System` after bumping a counter.
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gals_core::{MachineConfig, Simulator};
use gals_workloads::{suite, SharedTrace};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is as much an allocation as a fresh one.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn zero_steady_state_heap_allocations_per_instruction() {
    const WARM: u64 = 10_000;
    const LONG: u64 = 30_000;

    // gcc mixes loads, stores, branches, and multi-segment data traffic,
    // so the run exercises the LSQ, the store-line map, forwarding, the
    // MSHRs, and the predictor — everything that could plausibly
    // allocate per instruction.
    let spec = suite::by_name("gcc").expect("benchmark in suite");
    let machine = MachineConfig::best_synchronous();
    let slack = machine.params.max_in_flight() as u64;
    let trace = SharedTrace::capture(&mut spec.stream(), LONG + slack);

    // Dry run: fault in lazy runtime state (thread locals, allocator
    // size classes) so the measured pair starts from identical ground.
    let _ = Simulator::new(machine.clone()).run(&mut trace.replay(), WARM);

    let a0 = alloc_calls();
    let short = Simulator::new(machine.clone()).run(&mut trace.replay(), WARM);
    let a1 = alloc_calls();
    let long = Simulator::new(machine).run(&mut trace.replay(), LONG);
    let a2 = alloc_calls();

    assert_eq!(short.committed, WARM);
    assert_eq!(long.committed, LONG);
    assert!(a1 > a0, "the counter must actually be counting");

    // The long run is the short run plus (LONG - WARM) steady-state
    // instructions; determinism cancels everything else.
    let short_allocs = a1 - a0;
    let long_allocs = a2 - a1;
    assert_eq!(
        long_allocs,
        short_allocs,
        "the {} post-warm-up instructions performed {} heap allocations \
         (steady state must allocate nothing per instruction)",
        LONG - WARM,
        long_allocs - short_allocs,
    );
}
