//! Steady-state allocation regression test.
//!
//! The simulator's hot structures are all preallocated at construction:
//! the instruction-window slab, the completion ring, every pipeline
//! queue, the MSHR list, and the store-line map (which reaches its
//! working capacity during warm-up and then only recycles entries).
//! This test pins that property with a counting global allocator: after
//! a warm-up window, simulating additional instructions must perform
//! **zero** further heap allocations.
//!
//! The measurement compares two runs of different lengths over the same
//! recorded trace. Determinism makes the shorter run's execution an
//! exact prefix of the longer one's, so construction and warm-up
//! allocations cancel and any difference is attributable to the extra
//! instructions alone. This file intentionally holds a single `#[test]`
//! (plus the allocator plumbing): integration-test files are separate
//! binaries, so no concurrently running test can pollute the counter.

// The workspace avoids `unsafe` everywhere else; a `GlobalAlloc`
// implementation is impossible without it, and this one only forwards
// to `System` after bumping a counter.
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gals_core::{MachineConfig, Simulator};
use gals_workloads::{suite, PreparedTrace, SharedTrace};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to `System`, whose contract is
// upheld unchanged; the only added work is a lock-free atomic increment,
// which cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` untouched to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the (ptr, layout) pair untouched to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all three arguments untouched to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is as much an allocation as a fresh one.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn zero_steady_state_heap_allocations_per_instruction() {
    const WARM: u64 = 10_000;
    const LONG: u64 = 30_000;

    // gcc mixes loads, stores, branches, and multi-segment data traffic,
    // so the run exercises the LSQ, the store-line map, forwarding, the
    // MSHRs, and the predictor — everything that could plausibly
    // allocate per instruction.
    let spec = suite::by_name("gcc").expect("benchmark in suite");
    let machine = MachineConfig::best_synchronous();
    let slack = machine.params.max_in_flight() as u64;
    let trace = SharedTrace::capture(&mut spec.stream(), LONG + slack);

    // Dry run: fault in lazy runtime state (thread locals, allocator
    // size classes) so the measured pair starts from identical ground.
    let _ = Simulator::new(machine.clone()).run(&mut trace.replay(), WARM);

    let a0 = alloc_calls();
    let short = Simulator::new(machine.clone()).run(&mut trace.replay(), WARM);
    let a1 = alloc_calls();
    let long = Simulator::new(machine.clone()).run(&mut trace.replay(), LONG);
    let a2 = alloc_calls();

    assert_eq!(short.committed, WARM);
    assert_eq!(long.committed, LONG);
    assert!(a1 > a0, "the counter must actually be counting");

    // The long run is the short run plus (LONG - WARM) steady-state
    // instructions; determinism cancels everything else. Since PR 7 the
    // accounting caches allocate set storage lazily, so the longer run
    // may grow the per-cache set arrays a few doubling steps further —
    // O(log sets) allocation events total, not per-instruction. Pin
    // that bound tightly (observed: 4).
    let short_allocs = a1 - a0;
    let long_allocs = a2 - a1;
    let growth = long_allocs.saturating_sub(short_allocs);
    assert!(
        growth <= 12,
        "the {} post-warm-up instructions performed {} heap allocations \
         beyond lazy set-array doubling (must be O(log sets), got {})",
        LONG - WARM,
        growth,
        growth,
    );

    // Chunked single-simulator phase: after the lazy cache sets warm up,
    // steady state must allocate exactly **zero**. One simulator is
    // stepped over a prepared trace; the measured tail span starts well
    // past warm-up. adpcm's ~4 KB working set saturates the lazy set
    // arrays almost immediately (gcc above keeps discovering new L2
    // sets for hundreds of thousands of instructions, which is why the
    // differential phase bounds growth rather than zeroing it), so the
    // tail must not touch the allocator at all.
    let spec = suite::by_name("adpcm_encode").expect("benchmark in suite");
    let trace = SharedTrace::capture(&mut spec.stream(), LONG + slack);
    let prep = PreparedTrace::new(&trace, machine.params.line_bytes);
    let mut sim = Simulator::new(machine);
    assert!(sim.run_chunk(&prep, WARM * 2, u64::MAX));
    let b0 = alloc_calls();
    assert!(sim.run_chunk(&prep, LONG, u64::MAX));
    let b1 = alloc_calls();
    assert_eq!(
        b1 - b0,
        0,
        "the {} instructions after lazy-set warmup performed {} heap \
         allocations (steady state must allocate nothing)",
        LONG - WARM * 2,
        b1 - b0,
    );
    assert_eq!(sim.finish("adpcm_encode").committed, LONG);
}
