//! Behavioural integration tests for the core machine models, using
//! hand-built instruction streams (no workload crate) so causes are
//! isolated.

use gals_core::{
    Dl2Config, ICacheConfig, IqSize, MachineConfig, McdConfig, Simulator, SyncConfig,
    SyncICacheOption,
};
use gals_isa::{ArchReg, DynInst, InstructionStream, OpClass};

/// Loop of `period` instructions over a configurable code footprint with
/// a load every 4th instruction into a configurable data footprint.
struct LoopStream {
    i: u64,
    code_insts: u64,
    data_bytes: u64,
    chains: u8,
}

impl LoopStream {
    fn new(code_insts: u64, data_bytes: u64, chains: u8) -> Self {
        LoopStream {
            i: 0,
            code_insts,
            data_bytes,
            chains,
        }
    }
}

impl InstructionStream for LoopStream {
    fn next_inst(&mut self) -> DynInst {
        let i = self.i;
        self.i += 1;
        let pc = 0x10_0000 + (i % self.code_insts) * 4;
        let r = ArchReg::int(1 + (i % self.chains as u64) as u8);
        match i % 16 {
            15 => DynInst::branch(pc, r, true, 0x10_0000),
            x if x % 4 == 3 => {
                let addr = 0x2000_0000 + (i * 64) % self.data_bytes;
                DynInst::load(pc, r, r, addr)
            }
            _ => DynInst::alu(pc, OpClass::IntAlu, r, [Some(r), None]),
        }
    }
    fn name(&self) -> &str {
        "loop-stream"
    }
}

#[test]
fn larger_icache_removes_thrash_for_big_loops() {
    // 8K instructions = 32 KB of code: thrashes a 16 KB I$, fits 64 KB
    // (only cold misses remain; the window covers ~7 loop passes).
    let window = 60_000;
    let small = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
        .run(&mut LoopStream::new(8_192, 1 << 20, 8), window);
    let big = Simulator::new(MachineConfig::program_adaptive(McdConfig {
        icache: ICacheConfig::K64W4,
        ..McdConfig::smallest()
    }))
    .run(&mut LoopStream::new(8_192, 1 << 20, 8), window);
    assert!(
        big.icache.miss_rate() < small.icache.miss_rate() / 4.0,
        "64KB: {:.4}, 16KB: {:.4}",
        big.icache.miss_rate(),
        small.icache.miss_rate()
    );
}

#[test]
fn streaming_data_defeats_all_cache_configs() {
    // Data footprint 16 MB with stride 64: every load misses regardless
    // of configuration, so the smallest/fastest config wins on clock.
    let window = 20_000;
    let small = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
        .run(&mut LoopStream::new(256, 16 << 20, 8), window);
    let big = Simulator::new(MachineConfig::program_adaptive(McdConfig {
        dl2: Dl2Config::K256W8,
        ..McdConfig::smallest()
    }))
    .run(&mut LoopStream::new(256, 16 << 20, 8), window);
    assert!(small.runtime < big.runtime);
    assert!(small.l1d.miss_rate() > 0.9);
}

#[test]
fn sync_machine_single_clock_has_no_reconfig_and_equal_domains() {
    let cfg = SyncConfig {
        icache: SyncICacheOption::new(32, 1).unwrap(),
        dl2: Dl2Config::K64W2,
        iq_int: IqSize::Q32,
        iq_fp: IqSize::Q16,
    };
    let r = Simulator::new(MachineConfig::synchronous(cfg))
        .run(&mut LoopStream::new(256, 1 << 16, 8), 10_000);
    assert!(r.reconfigs.is_empty());
    let f = r.final_freqs[0];
    assert!(r.final_freqs.iter().all(|&x| x == f));
    // The global clock is the slowest structure: here the 32-entry IQ.
    let m = gals_core::TimingModel::default();
    assert_eq!(f, m.iq_frequency(IqSize::Q32));
}

#[test]
fn iq16_beats_iq64_on_serial_code() {
    // One serial chain: a 64-entry queue at 0.97 GHz can't help.
    let mk = |iq| {
        Simulator::new(MachineConfig::program_adaptive(McdConfig {
            iq_int: iq,
            ..McdConfig::smallest()
        }))
        .run(&mut LoopStream::new(256, 1 << 12, 1), 20_000)
    };
    let q16 = mk(IqSize::Q16);
    let q64 = mk(IqSize::Q64);
    assert!(
        q16.runtime < q64.runtime,
        "serial code must prefer the fast small queue: {} vs {}",
        q16.runtime_ns(),
        q64.runtime_ns()
    );
}

#[test]
fn results_scale_with_window() {
    // Cold-start (compulsory misses, predictor training) makes absolute
    // runtimes sub-linear in the window; the *marginal* cost of extra
    // instructions must be constant once warm.
    let run = |w: u64| {
        Simulator::new(MachineConfig::best_synchronous())
            .run(&mut LoopStream::new(256, 1 << 14, 8), w)
            .runtime_ns()
    };
    let (r1, r2, r3) = (run(10_000), run(20_000), run(30_000));
    let marginal_ratio = (r3 - r2) / (r2 - r1);
    assert!(
        (0.85..1.15).contains(&marginal_ratio),
        "steady-state marginal cost should be constant: {marginal_ratio}"
    );
}

#[test]
fn store_heavy_stream_commits() {
    struct Stores(u64);
    impl InstructionStream for Stores {
        fn next_inst(&mut self) -> DynInst {
            let i = self.0;
            self.0 += 1;
            let pc = 0x40_0000 + (i % 64) * 4;
            if i.is_multiple_of(3) {
                DynInst::store(
                    pc,
                    ArchReg::int(1),
                    ArchReg::int(2),
                    0x2000_0000 + (i % 512) * 8,
                )
            } else {
                DynInst::alu(
                    pc,
                    OpClass::IntAlu,
                    ArchReg::int(1),
                    [Some(ArchReg::int(1)), None],
                )
            }
        }
        fn name(&self) -> &str {
            "stores"
        }
    }
    let r = Simulator::new(MachineConfig::best_synchronous()).run(&mut Stores(0), 15_000);
    assert_eq!(r.committed, 15_000);
    assert!(r.l1d.accesses > 4_000, "store writes hit the D-cache");
}

#[test]
fn fp_workload_exercises_fp_domain() {
    struct FpStream(u64);
    impl InstructionStream for FpStream {
        fn next_inst(&mut self) -> DynInst {
            let i = self.0;
            self.0 += 1;
            let pc = 0x40_0000 + (i % 128) * 4;
            let f = ArchReg::fp(1 + (i % 8) as u8);
            match i % 8 {
                0 => DynInst::alu(pc, OpClass::FpMul, f, [Some(f), None]),
                7 => DynInst::branch(pc, ArchReg::int(1), true, 0x40_0000),
                _ => DynInst::alu(pc, OpClass::FpAdd, f, [Some(f), None]),
            }
        }
        fn name(&self) -> &str {
            "fp"
        }
    }
    let r = Simulator::new(MachineConfig::program_adaptive(McdConfig::smallest()))
        .run(&mut FpStream(0), 10_000);
    assert_eq!(r.committed, 10_000);
    assert!(r.domain_cycles[2] > 0, "fp domain clocked");
}
