//! Hybrid branch predictor (McFarling [20]) with the geometries of
//! Tables 2 and 3.
//!
//! The predictor combines:
//!
//! * a **gshare** component — a global branch history table (BHT) of
//!   `2^hg` two-bit counters indexed by the XOR of the branch PC with the
//!   `hg`-bit global history,
//! * a **local** component — a pattern history table (PHT) of per-branch
//!   `hl`-bit histories indexed by PC, each history indexing a local BHT
//!   of `2^hl` two-bit counters,
//! * a **metapredictor** of two-bit counters that selects which component
//!   to trust for each branch.
//!
//! In the adaptive MCD front end the predictor is resized *jointly* with
//! the instruction cache so that it never constrains the domain clock
//! (§2.2); [`PredictorGeometry::for_capacity_kb`] reproduces the
//! cache-size → geometry mapping shared by Tables 2 and 3.
//!
//! # Example
//!
//! ```
//! use gals_predictor::{HybridPredictor, PredictorGeometry};
//!
//! let mut p = HybridPredictor::new(PredictorGeometry::for_capacity_kb(16)?);
//! // A branch that is always taken is learned once the global history
//! // register has warmed up (hg bits of history shift in first).
//! for _ in 0..50 {
//!     p.update(0x400, true);
//! }
//! assert!(p.predict(0x400).taken);
//! # Ok::<(), gals_predictor::GeometryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod geometry;
mod hybrid;
mod target;

pub use geometry::{GeometryError, PredictorGeometry};
pub use hybrid::{Component, HybridPredictor, Prediction, PredictorStats};
pub use target::{Btb, ReturnAddressStack};
