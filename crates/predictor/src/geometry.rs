//! Predictor geometries (Tables 2 and 3).

use std::error::Error;
use std::fmt;

/// Error for unsupported instruction-cache capacities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError {
    kb: u32,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no predictor geometry for a {} KB instruction cache",
            self.kb
        )
    }
}

impl Error for GeometryError {}

/// The sizing of one hybrid-predictor instance.
///
/// Invariants: `gshare_entries == 2^hg_bits`,
/// `local_bht_entries == 2^hl_bits`, and `meta_entries == gshare_entries`
/// (as in Tables 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorGeometry {
    /// Global history width in bits (`hg`).
    pub hg_bits: u32,
    /// gshare BHT entries (`2^hg` two-bit counters).
    pub gshare_entries: u32,
    /// Metapredictor entries (two-bit counters).
    pub meta_entries: u32,
    /// Local history width in bits (`hl`).
    pub hl_bits: u32,
    /// Local BHT entries (`2^hl` two-bit counters).
    pub local_bht_entries: u32,
    /// Local PHT entries (per-branch history registers).
    pub local_pht_entries: u32,
}

impl PredictorGeometry {
    /// The geometry paired with an instruction cache of `kb` total KB.
    ///
    /// This single mapping reproduces both Table 2 (adaptive
    /// configurations: 16/32/48/64 KB) and Table 3 (fixed options:
    /// 4–64 KB): the paper sizes the predictor by the *capacity* of the
    /// companion cache so both have similar delay.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] for capacities not present in the tables.
    pub fn for_capacity_kb(kb: u32) -> Result<Self, GeometryError> {
        let (hg, hl, local_pht) = match kb {
            4 => (12, 10, 512),
            8 | 12 => (13, 10, 1024),
            16 | 24 => (14, 11, 1024),
            32 | 48 => (15, 12, 1024),
            64 => (16, 13, 1024),
            _ => return Err(GeometryError { kb }),
        };
        Ok(PredictorGeometry {
            hg_bits: hg,
            gshare_entries: 1 << hg,
            meta_entries: 1 << hg,
            hl_bits: hl,
            local_bht_entries: 1 << hl,
            local_pht_entries: local_pht,
        })
    }

    /// Total predictor storage in bits (2-bit counters in the three BHTs
    /// plus `hl`-bit histories in the local PHT), for reports.
    pub fn storage_bits(&self) -> u64 {
        2 * (self.gshare_entries as u64 + self.meta_entries as u64 + self.local_bht_entries as u64)
            + self.hl_bits as u64 * self.local_pht_entries as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_adaptive_rows() {
        // (kb, hg, gshare, meta, hl, local BHT, local PHT)
        let expect = [
            (16, 14, 16_384, 16_384, 11, 2_048, 1_024),
            (32, 15, 32_768, 32_768, 12, 4_096, 1_024),
            (48, 15, 32_768, 32_768, 12, 4_096, 1_024),
            (64, 16, 65_536, 65_536, 13, 8_192, 1_024),
        ];
        for (kb, hg, gs, meta, hl, lbht, lpht) in expect {
            let g = PredictorGeometry::for_capacity_kb(kb).unwrap();
            assert_eq!(g.hg_bits, hg, "{kb} KB");
            assert_eq!(g.gshare_entries, gs);
            assert_eq!(g.meta_entries, meta);
            assert_eq!(g.hl_bits, hl);
            assert_eq!(g.local_bht_entries, lbht);
            assert_eq!(g.local_pht_entries, lpht);
        }
    }

    #[test]
    fn table3_fixed_rows() {
        let expect = [
            (4, 12, 4_096, 10, 1_024, 512),
            (8, 13, 8_192, 10, 1_024, 1_024),
            (12, 13, 8_192, 10, 1_024, 1_024),
            (24, 14, 16_384, 11, 2_048, 1_024),
        ];
        for (kb, hg, gs, hl, lbht, lpht) in expect {
            let g = PredictorGeometry::for_capacity_kb(kb).unwrap();
            assert_eq!(g.hg_bits, hg, "{kb} KB");
            assert_eq!(g.gshare_entries, gs);
            assert_eq!(g.hl_bits, hl);
            assert_eq!(g.local_bht_entries, lbht);
            assert_eq!(g.local_pht_entries, lpht);
        }
    }

    #[test]
    fn unsupported_capacity_rejected() {
        assert!(PredictorGeometry::for_capacity_kb(128).is_err());
        assert!(PredictorGeometry::for_capacity_kb(0).is_err());
        let msg = PredictorGeometry::for_capacity_kb(5)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("5 KB"));
    }

    #[test]
    fn storage_grows_with_capacity() {
        let small = PredictorGeometry::for_capacity_kb(4)
            .unwrap()
            .storage_bits();
        let large = PredictorGeometry::for_capacity_kb(64)
            .unwrap()
            .storage_bits();
        assert!(large > small);
    }
}
