//! Branch *target* prediction: BTB and return-address stack.
//!
//! The direction predictor (the paper's focus, [`crate::HybridPredictor`])
//! decides taken/not-taken; these structures supply the *target* so that
//! taken control transfers redirect fetch without a bubble. The MCD
//! pipeline model assumes resident targets (trace-driven fetch already
//! knows the committed path), so these are provided as stand-alone,
//! fully-tested components for users building fetch-accurate frontends
//! on the same substrate.

/// A set-associative branch target buffer with LRU replacement.
///
/// # Example
///
/// ```
/// use gals_predictor::Btb;
///
/// let mut btb = Btb::new(512, 4).unwrap();
/// btb.update(0x4000, 0x5000);
/// assert_eq!(btb.lookup(0x4000), Some(0x5000));
/// assert_eq!(btb.lookup(0x4004), None);
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: usize,
    ways: usize,
    /// (tag, target, lru counter) per slot; tag = pc (full tag keeps the
    /// model conservative about aliasing).
    slots: Vec<(u64, u64, u64)>,
    tick: u64,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways`
    /// associativity.
    ///
    /// # Errors
    ///
    /// Returns `None` unless `entries` is a power-of-two multiple of
    /// `ways` with at least one set.
    pub fn new(entries: usize, ways: usize) -> Option<Self> {
        if ways == 0 || entries == 0 || !entries.is_multiple_of(ways) {
            return None;
        }
        let sets = entries / ways;
        if !sets.is_power_of_two() {
            return None;
        }
        Some(Btb {
            sets,
            ways,
            slots: vec![(u64::MAX, 0, 0); entries],
            tick: 0,
            lookups: 0,
            hits: 0,
        })
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Predicted target for the control transfer at `pc`, if cached.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        let base = self.set_of(pc) * self.ways;
        for slot in &mut self.slots[base..base + self.ways] {
            if slot.0 == pc {
                self.tick += 1;
                slot.2 = self.tick;
                self.hits += 1;
                return Some(slot.1);
            }
        }
        None
    }

    /// Installs or refreshes the target for `pc` (called at resolution).
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let base = self.set_of(pc) * self.ways;
        // Hit: refresh.
        for slot in &mut self.slots[base..base + self.ways] {
            if slot.0 == pc {
                slot.1 = target;
                slot.2 = self.tick;
                return;
            }
        }
        // Miss: evict LRU.
        let victim = self.slots[base..base + self.ways]
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.2)
            .map(|(i, _)| base + i)
            .expect("ways >= 1");
        self.slots[victim] = (pc, target, self.tick);
    }

    /// Hit rate across all lookups so far (1.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// A fixed-depth return-address stack with wrap-around overwrite (the
/// usual hardware behaviour: deep recursion silently loses the oldest
/// frames).
///
/// # Example
///
/// ```
/// use gals_predictor::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(8);
/// ras.push(0x1004);
/// ras.push(0x2008);
/// assert_eq!(ras.pop(), Some(0x2008));
/// assert_eq!(ras.pop(), Some(0x1004));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    ring: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        ReturnAddressStack {
            ring: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (a call's fall-through pc).
    pub fn push(&mut self, ret: u64) {
        self.top = (self.top + 1) % self.ring.len();
        self.ring[self.top] = ret;
        self.depth = (self.depth + 1).min(self.ring.len());
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.ring[self.top];
        self.top = (self.top + self.ring.len() - 1) % self.ring.len();
        self.depth -= 1;
        Some(v)
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_common::SplitMix64;

    #[test]
    fn btb_geometry_validated() {
        assert!(Btb::new(512, 4).is_some());
        assert!(Btb::new(0, 4).is_none());
        assert!(Btb::new(512, 0).is_none());
        assert!(Btb::new(500, 4).is_none()); // 125 sets: not a power of two
    }

    #[test]
    fn btb_learns_and_evicts_lru() {
        let mut btb = Btb::new(8, 2).unwrap(); // 4 sets x 2 ways
                                               // Three branches aliasing to the same set (stride = sets*4).
        let (a, b, c) = (0x1000, 0x1000 + 16, 0x1000 + 32);
        btb.update(a, 0xA);
        btb.update(b, 0xB);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(btb.lookup(a), Some(0xA));
        btb.update(c, 0xC);
        assert_eq!(btb.lookup(a), Some(0xA), "MRU entry survives");
        assert_eq!(btb.lookup(b), None, "LRU entry evicted");
        assert_eq!(btb.lookup(c), Some(0xC));
    }

    #[test]
    fn btb_update_refreshes_target() {
        let mut btb = Btb::new(16, 4).unwrap();
        btb.update(0x42, 0x100);
        btb.update(0x42, 0x200);
        assert_eq!(btb.lookup(0x42), Some(0x200));
    }

    #[test]
    fn btb_hit_rate_tracks() {
        let mut btb = Btb::new(64, 4).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            let pc = 0x1000 + rng.next_below(16) * 4;
            if btb.lookup(pc).is_none() {
                btb.update(pc, pc + 0x40);
            }
        }
        assert!(btb.hit_rate() > 0.5, "{}", btb.hit_rate());
    }

    #[test]
    fn ras_lifo_behaviour() {
        let mut ras = ReturnAddressStack::new(4);
        for i in 1..=4u64 {
            ras.push(i * 0x10);
        }
        assert_eq!(ras.depth(), 4);
        for i in (1..=4u64).rev() {
            assert_eq!(ras.pop(), Some(i * 0x10));
        }
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(0x1);
        ras.push(0x2);
        ras.push(0x3); // overwrites the oldest
        assert_eq!(ras.pop(), Some(0x3));
        assert_eq!(ras.pop(), Some(0x2));
        // 0x1 was lost to the wrap; hardware mispredicts here.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ras_zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
