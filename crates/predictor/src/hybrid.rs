//! The hybrid predictor implementation.

use std::fmt;

use crate::geometry::PredictorGeometry;

/// Which component supplied a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// The gshare (global-history) component.
    Gshare,
    /// The local-history component.
    Local,
}

/// A direction prediction and its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Component the metapredictor selected.
    pub chosen: Component,
    /// What gshare said (for meta-update bookkeeping).
    pub gshare_taken: bool,
    /// What the local component said.
    pub local_taken: bool,
}

/// Aggregate accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional-branch predictions made.
    pub lookups: u64,
    /// Predictions whose direction matched the outcome.
    pub correct: u64,
}

impl PredictorStats {
    /// Fraction of correct predictions (1.0 when no lookups yet).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.lookups - self.correct
    }
}

#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

/// McFarling-style hybrid predictor: gshare + local + metapredictor.
///
/// State update happens in [`HybridPredictor::update`] with the resolved
/// direction. The simulator calls `predict` at fetch and `update`
/// immediately after (trace-driven style); history corruption by wrong-path
/// execution is not modeled, which is the standard approximation when the
/// wrong path is not simulated.
#[derive(Clone)]
pub struct HybridPredictor {
    geometry: PredictorGeometry,
    gshare_bht: Vec<u8>,
    meta: Vec<u8>,
    local_pht: Vec<u16>,
    local_bht: Vec<u8>,
    global_history: u64,
    stats: PredictorStats,
}

impl fmt::Debug for HybridPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridPredictor")
            .field("geometry", &self.geometry)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl HybridPredictor {
    /// Creates a predictor with all counters weakly not-taken and empty
    /// histories.
    pub fn new(geometry: PredictorGeometry) -> Self {
        HybridPredictor {
            geometry,
            gshare_bht: vec![1; geometry.gshare_entries as usize],
            meta: vec![1; geometry.meta_entries as usize],
            local_pht: vec![0; geometry.local_pht_entries as usize],
            local_bht: vec![1; geometry.local_bht_entries as usize],
            global_history: 0,
            stats: PredictorStats::default(),
        }
    }

    /// The sizing of this instance.
    pub fn geometry(&self) -> &PredictorGeometry {
        &self.geometry
    }

    /// Accuracy counters.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    #[inline]
    fn gshare_index(&self, pc: u64) -> usize {
        let mask = (self.geometry.gshare_entries - 1) as u64;
        (((pc >> 2) ^ self.global_history) & mask) as usize
    }

    #[inline]
    fn meta_index(&self, pc: u64) -> usize {
        let mask = (self.geometry.meta_entries - 1) as u64;
        ((pc >> 2) & mask) as usize
    }

    #[inline]
    fn pht_index(&self, pc: u64) -> usize {
        ((pc >> 2) % self.geometry.local_pht_entries as u64) as usize
    }

    #[inline]
    fn local_bht_index(&self, history: u16) -> usize {
        (history as usize) & (self.geometry.local_bht_entries as usize - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> Prediction {
        let gshare_taken = counter_taken(self.gshare_bht[self.gshare_index(pc)]);
        let history = self.local_pht[self.pht_index(pc)];
        let local_taken = counter_taken(self.local_bht[self.local_bht_index(history)]);
        let chosen = if counter_taken(self.meta[self.meta_index(pc)]) {
            Component::Local
        } else {
            Component::Gshare
        };
        let taken = match chosen {
            Component::Local => local_taken,
            Component::Gshare => gshare_taken,
        };
        Prediction {
            taken,
            chosen,
            gshare_taken,
            local_taken,
        }
    }

    /// Trains all components with the resolved direction of the branch at
    /// `pc` and returns whether the prediction (as [`HybridPredictor::predict`]
    /// would have returned it) was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let p = self.predict(pc);
        let correct = p.taken == taken;
        self.stats.lookups += 1;
        if correct {
            self.stats.correct += 1;
        }

        // Metapredictor learns toward whichever component was right when
        // they disagree.
        if p.gshare_taken != p.local_taken {
            let mi = self.meta_index(pc);
            counter_update(&mut self.meta[mi], p.local_taken == taken);
        }

        // Component counters.
        let gi = self.gshare_index(pc);
        counter_update(&mut self.gshare_bht[gi], taken);
        let pi = self.pht_index(pc);
        let history = self.local_pht[pi];
        let li = self.local_bht_index(history);
        counter_update(&mut self.local_bht[li], taken);

        // Histories.
        let hg_mask = (1u64 << self.geometry.hg_bits) - 1;
        self.global_history = ((self.global_history << 1) | taken as u64) & hg_mask;
        let hl_mask = (1u16 << self.geometry.hl_bits) - 1;
        self.local_pht[pi] = ((history << 1) | taken as u16) & hl_mask;

        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_common::SplitMix64;

    fn predictor() -> HybridPredictor {
        HybridPredictor::new(PredictorGeometry::for_capacity_kb(16).unwrap())
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut p = predictor();
        for _ in 0..16 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000).taken);
        // Accuracy settles near 1.0 after warmup.
        let mut correct = 0;
        for _ in 0..100 {
            if p.update(0x1000, true) {
                correct += 1;
            }
        }
        assert_eq!(correct, 100);
    }

    #[test]
    fn learns_short_loop_pattern() {
        // Pattern TTTN repeating: a local history of >= 4 bits captures it
        // perfectly after warmup.
        let mut p = predictor();
        let pattern = [true, true, true, false];
        for i in 0..400 {
            p.update(0x2000, pattern[i % 4]);
        }
        let mut correct = 0;
        for i in 0..200 {
            if p.update(0x2000, pattern[i % 4]) {
                correct += 1;
            }
        }
        assert!(
            correct >= 195,
            "loop pattern should be near-perfect: {correct}/200"
        );
    }

    #[test]
    fn learns_alternating_branch() {
        let mut p = predictor();
        for i in 0..400u32 {
            p.update(0x3000, i % 2 == 0);
        }
        let mut correct = 0;
        for i in 0..200u32 {
            if p.update(0x3000, i % 2 == 0) {
                correct += 1;
            }
        }
        assert!(
            correct >= 195,
            "alternating should be near-perfect: {correct}/200"
        );
    }

    #[test]
    fn random_branches_near_chance() {
        let mut p = predictor();
        let mut rng = SplitMix64::new(42);
        let mut correct = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if p.update(0x4000, rng.chance(0.5)) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!((0.44..0.56).contains(&acc), "random accuracy {acc}");
    }

    #[test]
    fn interfering_branches_tracked_separately() {
        let mut p = predictor();
        for _ in 0..64 {
            p.update(0x5000, true);
            p.update(0x6000, false);
        }
        assert!(p.predict(0x5000).taken);
        assert!(!p.predict(0x6000).taken);
    }

    #[test]
    fn stats_count_correctly() {
        let mut p = predictor();
        // 50 updates: the global history register saturates after hg bits
        // of warmup, after which the biased branch predicts correctly.
        for _ in 0..50 {
            p.update(0x7000, true);
        }
        let s = p.stats();
        assert_eq!(s.lookups, 50);
        assert_eq!(s.correct + s.mispredicts(), 50);
        assert!(s.accuracy() > 0.5, "accuracy {}", s.accuracy());
    }

    #[test]
    fn empty_stats_accuracy_is_one() {
        assert_eq!(PredictorStats::default().accuracy(), 1.0);
    }

    #[test]
    fn larger_predictor_no_worse_on_many_branches() {
        // Many biased branches alias in a tiny predictor; the 64 KB-paired
        // geometry should do at least as well as the 4 KB-paired one.
        let mut small = HybridPredictor::new(PredictorGeometry::for_capacity_kb(4).unwrap());
        let mut large = HybridPredictor::new(PredictorGeometry::for_capacity_kb(64).unwrap());
        let mut rng = SplitMix64::new(7);
        let branches: Vec<(u64, bool)> = (0..512)
            .map(|i| (0x8000 + i * 4, rng.chance(0.5)))
            .collect();
        let (mut small_ok, mut large_ok) = (0u32, 0u32);
        for round in 0..40 {
            for &(pc, dir) in &branches {
                let s = small.update(pc, dir);
                let l = large.update(pc, dir);
                if round >= 8 {
                    small_ok += s as u32;
                    large_ok += l as u32;
                }
            }
        }
        assert!(
            large_ok >= small_ok,
            "large {large_ok} should be >= small {small_ok}"
        );
    }
}
