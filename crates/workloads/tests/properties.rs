//! Property tests for the synthetic workload substrate.

use gals_isa::{InstructionStream, OpClass};
use gals_workloads::{
    prepared_flags, suite, AccessPattern, BenchmarkSpec, DataSegment, PreparedTrace, Suite, NO_REG,
};
use proptest::prelude::*;

fn any_suite() -> impl Strategy<Value = Suite> {
    prop::sample::select(vec![
        Suite::MediaBench,
        Suite::Olden,
        Suite::SpecInt,
        Suite::SpecFp,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two streams from the same spec yield identical sequences; a
    /// different seed yields a different sequence.
    #[test]
    fn determinism_and_seed_sensitivity(
        seed in any::<u64>(),
        chains in 1u32..20,
        footprint_kb in 1u64..64,
        s in any_suite(),
    ) {
        let build = |sd: u64| {
            BenchmarkSpec::builder("prop", s)
                .seed(sd)
                .ilp(chains, 0, 0.2)
                .code(footprint_kb * 1024, 16, 0.01)
                .build()
                .unwrap()
        };
        let mut a = build(seed).stream();
        let mut b = build(seed).stream();
        let mut c = build(seed ^ 0x1234_5678).stream();
        let mut diverged = false;
        for _ in 0..500 {
            let ia = a.next_inst();
            prop_assert_eq!(ia, b.next_inst());
            if ia != c.next_inst() {
                diverged = true;
            }
        }
        prop_assert!(diverged, "different seeds should diverge");
    }

    /// All memory accesses stay inside the declared segments and all pcs
    /// stay inside the code footprint.
    #[test]
    fn addresses_respect_declared_regions(
        bytes_a in 64u64..262_144,
        bytes_b in 64u64..1_048_576,
        stride in 8u32..256,
    ) {
        let spec = BenchmarkSpec::builder("prop-mem", Suite::SpecInt)
            .segments(vec![
                DataSegment { bytes: bytes_a, weight: 1.0, pattern: AccessPattern::Stride(stride) },
                DataSegment { bytes: bytes_b, weight: 2.0, pattern: AccessPattern::Random },
            ])
            .build()
            .unwrap();
        let footprint = spec.code().footprint_bytes;
        let mut st = spec.stream();
        for _ in 0..3_000 {
            let i = st.next_inst();
            if i.op.is_mem() {
                prop_assert!(i.mem_addr >= 0x2000_0000);
            } else if !i.op.is_ctrl() {
                prop_assert!(i.pc < 0x0040_0000 + footprint + 64);
            }
        }
    }

    /// A recorded-and-reloaded trace replays instruction-for-instruction
    /// identically to the live stream it was captured from — including
    /// its looping contract: instruction `n + i` of the replay equals
    /// instruction `i`. This is the substrate guarantee the sweep trace
    /// pool's bit-identity rests on.
    #[test]
    fn trace_replay_is_instruction_identical_to_live_stream(
        n in 16u64..600,
        bench_idx in 0usize..8,
    ) {
        let spec = suite::all().into_iter().nth(bench_idx * 4).unwrap();
        let mut buf = Vec::new();
        gals_workloads::record(&mut spec.stream(), n, &mut buf).unwrap();
        let mut replay = gals_workloads::TraceReplay::load(spec.name(), buf.as_slice()).unwrap();
        prop_assert_eq!(replay.len() as u64, n);

        let mut live = spec.stream();
        let mut prefix = Vec::with_capacity(n as usize);
        for i in 0..n {
            let inst = live.next_inst();
            prop_assert_eq!(replay.next_inst(), inst, "inst {} diverged", i);
            prefix.push(inst);
        }
        // Past the end, TraceReplay loops back to the recorded prefix.
        for i in 0..n.min(64) {
            prop_assert_eq!(replay.next_inst(), prefix[i as usize], "loop inst {}", i);
        }
    }

    /// A `SharedTrace` captured from a live stream is bit-identical to
    /// that stream for its whole recorded length, from any number of
    /// independent replay cursors.
    #[test]
    fn shared_trace_is_instruction_identical_to_live_stream(
        n in 1u64..800,
        bench_idx in 0usize..8,
    ) {
        let spec = suite::all().into_iter().nth(bench_idx * 3 + 1).unwrap();
        let trace = gals_workloads::SharedTrace::capture(&mut spec.stream(), n);
        prop_assert_eq!(trace.len() as u64, n);
        prop_assert_eq!(trace.name(), spec.name());
        let mut live = spec.stream();
        let mut a = trace.replay();
        let mut b = trace.replay();
        for i in 0..n {
            let inst = live.next_inst();
            prop_assert_eq!(a.next_inst(), inst, "cursor a inst {}", i);
            prop_assert_eq!(b.next_inst(), inst, "cursor b inst {}", i);
        }
    }

    /// Every fact column of a [`PreparedTrace`] agrees with deriving the
    /// same fact on the fly from the replay cursor — for arbitrary
    /// recording lengths, line sizes, and benchmarks. The cohort fetch
    /// path reads these columns instead of the `DynInst`s, so a stale or
    /// misindexed column would silently change sweep results.
    #[test]
    fn prepared_trace_columns_match_on_the_fly_derivation(
        n in 16u64..800,
        line_shift in 4u32..8,
        bench_idx in 0usize..8,
    ) {
        let line_bytes = 1u64 << line_shift; // 16..=128 bytes
        let spec = suite::all().into_iter().nth(bench_idx * 3 + 2).unwrap();
        let trace = gals_workloads::SharedTrace::capture(&mut spec.stream(), n);
        let prep = PreparedTrace::new(&trace, line_bytes);
        prop_assert_eq!(prep.len() as u64, n);
        prop_assert_eq!(prep.line_bytes(), line_bytes);
        prop_assert_eq!(prep.name(), spec.name());

        let mut replay = trace.replay();
        for i in 0..n as usize {
            let inst = replay.next_inst();
            prop_assert_eq!(prep.inst(i), inst, "inst {} differs from replay", i);
            prop_assert_eq!(prep.fetch_line(i), inst.pc / line_bytes, "inst {}", i);

            let f = prep.flags(i);
            prop_assert_eq!(f & prepared_flags::BRANCH != 0, inst.op == OpClass::Branch);
            prop_assert_eq!(
                f & prepared_flags::TAKEN != 0,
                inst.op == OpClass::Branch && inst.taken,
                "inst {}: taken flag only records branch outcomes", i
            );
            prop_assert_eq!(f & prepared_flags::JUMP != 0, inst.op == OpClass::Jump);
            prop_assert_eq!(f & prepared_flags::MEM != 0, inst.op.is_mem());
            prop_assert_eq!(f & prepared_flags::STORE != 0, inst.op == OpClass::Store);
            prop_assert_eq!(f & prepared_flags::FP != 0, inst.op.is_fp());

            prop_assert_eq!(OpClass::ALL[prep.op_index(i) as usize], inst.op);
            let mem_line = if inst.op.is_mem() { inst.mem_addr >> 3 } else { 0 };
            prop_assert_eq!(prep.mem_line(i), mem_line, "inst {}", i);

            let srcs = inst.srcs.map(|s| s.map(|r| r.packed()).unwrap_or(NO_REG));
            prop_assert_eq!(prep.srcs_packed(i), srcs, "inst {}", i);
            let dst = inst.dst.map(|r| r.packed()).unwrap_or(NO_REG);
            prop_assert_eq!(prep.dst_packed(i), dst, "inst {}", i);
        }
    }

    /// Branch density matches the code model: exactly one control
    /// transfer per `block_len` instructions.
    #[test]
    fn control_density_matches_block_length(block_len in 3u32..16) {
        let spec = BenchmarkSpec::builder("prop-blocks", Suite::SpecInt)
            .block_len(block_len)
            .build()
            .unwrap();
        let mut st = spec.stream();
        let n = 5_000u32;
        let ctrl = (0..n).filter(|_| st.next_inst().op.is_ctrl()).count() as f64;
        let expect = n as f64 / block_len as f64;
        prop_assert!((ctrl - expect).abs() / expect < 0.05,
            "ctrl {} vs expected {}", ctrl, expect);
    }
}

#[test]
fn full_suite_streams_are_mutually_distinct() {
    // Every profile must generate a distinct dynamic stream (guards
    // against copy-paste profiles aliasing to identical seeds/params).
    let mut first_kilos: Vec<(String, Vec<u64>)> = Vec::new();
    for spec in suite::all() {
        let mut st = spec.stream();
        let sig: Vec<u64> = (0..1_000)
            .map(|_| st.next_inst().pc ^ st.next_inst().mem_addr)
            .collect();
        for (other, other_sig) in &first_kilos {
            assert_ne!(&sig, other_sig, "{} aliases {}", spec.name(), other);
        }
        first_kilos.push((spec.name().to_string(), sig));
    }
}
