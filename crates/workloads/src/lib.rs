//! Synthetic workload substrate: the stand-in for the paper's 32
//! MediaBench / Olden / SPEC2000 applications (Tables 6–8).
//!
//! The paper evaluates on Alpha binaries under SimpleScalar. Neither the
//! binaries, their inputs, nor an Alpha front end are available here, so
//! this crate synthesizes *dynamic instruction streams* whose measurable
//! properties — the only things a timing simulator observes — are
//! controlled per benchmark:
//!
//! * **Instruction mix** ([`OpMix`]) — ALU/multiply/divide/FP/load/store
//!   proportions.
//! * **Inherent ILP** ([`IlpModel`]) — instructions extend round-robin
//!   dependence chains through the architectural registers; the number of
//!   concurrent chains (and an extra serialization fraction) sets the
//!   dependence-chain depth the ILP controller of §3.2 measures.
//! * **Code footprint and locality** ([`CodeModel`]) — a synthetic basic-
//!   block graph walked with region locality; footprint determines
//!   I-cache pressure.
//! * **Branch behaviour** ([`BranchModel`]) — each block's terminating
//!   branch has a stable personality: loop-like (pattern of period `k`) or
//!   data-dependent ("hard", random with a bias), setting predictor
//!   accuracy.
//! * **Data working set** ([`DataSegment`]) — weighted segments accessed
//!   with strided, uniform-random, or pointer-chasing patterns; segment
//!   sizes determine which cache configurations capture the reuse.
//! * **Phases** ([`PhaseSpec`]) — timed parameter overrides reproducing
//!   the phase behaviour that the Phase-Adaptive controllers exploit
//!   (e.g. apsi's periodic working-set swings, art's ILP cycle —
//!   Figure 7).
//!
//! Streams are deterministic: a [`BenchmarkSpec`] plus its seed always
//! yields the identical instruction sequence, which design-space sweeps
//! rely on.
//!
//! # Example
//!
//! ```
//! use gals_isa::InstructionStream;
//! use gals_workloads::suite;
//!
//! let spec = suite::by_name("gcc").expect("gcc is in the suite");
//! let mut stream = spec.stream();
//! let first = stream.next_inst();
//! let mut again = spec.stream();
//! assert_eq!(again.next_inst(), first, "streams are deterministic");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod prepared;
mod spec;
mod stream;
pub mod suite;
mod trace;

pub use prepared::{flags as prepared_flags, PreparedTrace, NO_REG};
pub use spec::{
    AccessPattern, BenchmarkSpec, BranchModel, CodeModel, DataSegment, IlpModel, OpMix,
    PhaseOverrides, PhaseSpec, SpecError, Suite,
};
pub use stream::SyntheticStream;
pub use trace::{record, SharedReplay, SharedTrace, TraceReplay};
