//! The benchmark suite: synthetic stand-ins for every run in Tables 6–8.
//!
//! Each profile is calibrated so the application class stresses the same
//! adaptive structure the paper reports it stressing (see DESIGN.md §3 for
//! the substitution argument). Key mechanisms:
//!
//! * **I-cache pressure** — code footprints range from 2 KB kernels
//!   (adpcm) to ≈112 KB (gcc); large-footprint, fetch-bound apps are the
//!   ones the paper reports as Program-Adaptive losers (jpeg decompress,
//!   ghostscript, mesa mipmap, vpr, bzip2, gsm encode).
//! * **D/L2 capacity** — data segments sized to fit (or miss) at specific
//!   D/L2 configurations; em3d/mst/gcc/vortex/art carry multi-hundred-KB
//!   working sets that only upsized configurations capture, reproducing
//!   the paper's big winners.
//! * **Issue-queue ILP** — dependence-chain counts keep most applications
//!   happiest with the 16-entry queues (Table 9: 85%), while art cycles
//!   through chain regimes (Figure 7b).
//! * **Phases** — apsi alternates its data working set (Figure 7a); mst
//!   has short conflict bursts that defeat interval-delayed adaptation
//!   (§5.1); art cycles ILP.

use crate::spec::{
    AccessPattern, BenchmarkSpec, DataSegment, IlpModel, OpMix, PhaseOverrides, Suite,
};

const KB: u64 = 1024;

fn seg(bytes: u64, weight: f64, pattern: AccessPattern) -> DataSegment {
    DataSegment {
        bytes,
        weight,
        pattern,
    }
}

fn stride(bytes: u64, weight: f64) -> DataSegment {
    seg(bytes, weight, AccessPattern::Stride(64))
}

fn random(bytes: u64, weight: f64) -> DataSegment {
    seg(bytes, weight, AccessPattern::Random)
}

fn chase(bytes: u64, weight: f64) -> DataSegment {
    seg(bytes, weight, AccessPattern::PointerChase)
}

/// MediaBench profiles (Table 6).
fn mediabench() -> Vec<BenchmarkSpec> {
    let mut v = Vec::new();

    // Tiny ALU kernels over streaming samples; hard data-dependent
    // branches in the codec inner loop (§5.1 discusses adpcm decode's
    // vpdiff kernel).
    v.push(
        BenchmarkSpec::builder("adpcm_encode", Suite::MediaBench)
            .code(2 * KB, 40, 0.005)
            .branches(0.40, 0.55, 8)
            .ilp(9, 0, 0.12)
            .flat_frac(0.25)
            .segments(vec![stride(4 * KB, 1.0)])
            .paper_window("ref; encode (6.6M)")
            .build()
            .expect("adpcm_encode"),
    );
    v.push(
        BenchmarkSpec::builder("adpcm_decode", Suite::MediaBench)
            .code(2 * KB, 40, 0.004)
            .branches(0.50, 0.50, 8)
            .ilp(9, 0, 0.10)
            .flat_frac(0.25)
            .segments(vec![stride(4 * KB, 1.0)])
            .paper_window("ref; decode (5.5M)")
            .build()
            .expect("adpcm_decode"),
    );

    let epic_mix = OpMix {
        fp_add: 0.10,
        fp_mul: 0.08,
        ..OpMix::integer()
    };
    v.push(
        BenchmarkSpec::builder("epic_encode", Suite::MediaBench)
            .mix(epic_mix)
            .code(12 * KB, 60, 0.01)
            .branches(0.12, 0.60, 12)
            .ilp(10, 8, 0.10)
            .flat_frac(0.25)
            .segments(vec![stride(320 * KB, 3.0), random(16 * KB, 1.0)])
            .paper_window("ref; encode (53M)")
            .build()
            .expect("epic_encode"),
    );
    v.push(
        BenchmarkSpec::builder("epic_decode", Suite::MediaBench)
            .mix(epic_mix)
            .code(8 * KB, 48, 0.01)
            .branches(0.12, 0.60, 12)
            .ilp(8, 6, 0.12)
            .flat_frac(0.22)
            .segments(vec![stride(160 * KB, 2.0), random(8 * KB, 1.0)])
            .paper_window("ref; decode (6.7M)")
            .build()
            .expect("epic_decode"),
    );

    v.push(
        BenchmarkSpec::builder("jpeg_compress", Suite::MediaBench)
            .code(20 * KB, 80, 0.015)
            .branches(0.14, 0.60, 8)
            .ilp(10, 4, 0.10)
            .flat_frac(0.20)
            .mix(OpMix {
                fp_add: 0.04,
                fp_mul: 0.04,
                ..OpMix::integer()
            })
            .segments(vec![stride(96 * KB, 2.0), random(8 * KB, 1.0)])
            .paper_window("ref; compress (15.5M)")
            .build()
            .expect("jpeg_compress"),
    );
    // Program-Adaptive loser: mid-large code footprint, fetch bound.
    v.push(
        BenchmarkSpec::builder("jpeg_decompress", Suite::MediaBench)
            .code(48 * KB, 200, 0.03)
            .branches(0.18, 0.55, 6)
            .ilp(8, 4, 0.15)
            .flat_frac(0.15)
            .mix(OpMix {
                fp_add: 0.03,
                fp_mul: 0.03,
                ..OpMix::integer()
            })
            .segments(vec![stride(64 * KB, 2.0), random(8 * KB, 1.0)])
            .paper_window("ref; decompress (4.6M)")
            .build()
            .expect("jpeg_decompress"),
    );

    for (name, window) in [
        ("g721_encode", "ref; encode (0-200M)"),
        ("g721_decode", "ref; decode (0-200M)"),
    ] {
        v.push(
            BenchmarkSpec::builder(name, Suite::MediaBench)
                .code(6 * KB, 48, 0.008)
                .branches(0.30, 0.60, 8)
                .ilp(8, 0, 0.18)
                .flat_frac(0.20)
                .segments(vec![random(3 * KB, 1.0)])
                .paper_window(window)
                .build()
                .expect(name),
        );
    }

    // gsm encode: large footprint, near-zero improvement in the paper.
    v.push(
        BenchmarkSpec::builder("gsm_encode", Suite::MediaBench)
            .code(64 * KB, 220, 0.025)
            .branches(0.12, 0.60, 10)
            .ilp(9, 0, 0.22)
            .flat_frac(0.18)
            .segments(vec![random(8 * KB, 1.0)])
            .paper_window("ref; encode (0-200M)")
            .build()
            .expect("gsm_encode"),
    );
    v.push(
        BenchmarkSpec::builder("gsm_decode", Suite::MediaBench)
            .code(56 * KB, 200, 0.02)
            .branches(0.10, 0.60, 10)
            .ilp(9, 0, 0.20)
            .flat_frac(0.18)
            .segments(vec![random(8 * KB, 1.0)])
            .paper_window("ref; decode (0-74M)")
            .build()
            .expect("gsm_decode"),
    );

    // ghostscript: ≈96 KB of hot code; "performs well whenever the
    // instruction cache is larger than 32KB" (§5).
    v.push(
        BenchmarkSpec::builder("ghostscript", Suite::MediaBench)
            .code(96 * KB, 300, 0.035)
            .branches(0.15, 0.58, 8)
            .ilp(8, 0, 0.20)
            .flat_frac(0.15)
            .segments(vec![random(64 * KB, 2.0), random(512 * KB, 1.0)])
            .paper_window("ref; 0-200M")
            .build()
            .expect("ghostscript"),
    );

    // mesa mipmap: Program-Adaptive loser (-4.9%): big code + branchy.
    v.push(
        BenchmarkSpec::builder("mesa_mipmap", Suite::MediaBench)
            .mix(OpMix::floating_point())
            .code(64 * KB, 250, 0.03)
            .branches(0.22, 0.50, 6)
            .ilp(8, 10, 0.15)
            .flat_frac(0.15)
            .segments(vec![stride(512 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("ref; mipmap (44.7M)")
            .build()
            .expect("mesa_mipmap"),
    );
    v.push(
        BenchmarkSpec::builder("mesa_osdemo", Suite::MediaBench)
            .mix(OpMix::floating_point())
            .code(48 * KB, 150, 0.02)
            .branches(0.12, 0.60, 10)
            .ilp(8, 10, 0.12)
            .flat_frac(0.18)
            .segments(vec![stride(256 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("ref; osdemo (7.6M)")
            .build()
            .expect("mesa_osdemo"),
    );
    v.push(
        BenchmarkSpec::builder("mesa_texgen", Suite::MediaBench)
            .mix(OpMix::floating_point())
            .code(40 * KB, 120, 0.015)
            .branches(0.10, 0.60, 12)
            .ilp(10, 14, 0.08)
            .flat_frac(0.20)
            .segments(vec![random(384 * KB, 2.0), random(32 * KB, 1.0)])
            .paper_window("ref; texgen (75.8M)")
            .build()
            .expect("mesa_texgen"),
    );

    v.push(
        BenchmarkSpec::builder("mpeg2_encode", Suite::MediaBench)
            .code(16 * KB, 60, 0.01)
            .branches(0.08, 0.65, 12)
            .ilp(12, 8, 0.05)
            .flat_frac(0.25)
            .mix(OpMix {
                fp_add: 0.06,
                fp_mul: 0.05,
                ..OpMix::integer()
            })
            .segments(vec![stride(384 * KB, 3.0), random(32 * KB, 1.0)])
            .paper_window("ref; encode (0-171M)")
            .build()
            .expect("mpeg2_encode"),
    );
    v.push(
        BenchmarkSpec::builder("mpeg2_decode", Suite::MediaBench)
            .code(24 * KB, 80, 0.012)
            .branches(0.10, 0.62, 10)
            .ilp(10, 6, 0.08)
            .flat_frac(0.20)
            .mix(OpMix {
                fp_add: 0.05,
                fp_mul: 0.04,
                ..OpMix::integer()
            })
            .segments(vec![stride(256 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("ref; decode (0-200M)")
            .build()
            .expect("mpeg2_decode"),
    );

    v
}

/// Olden profiles (Table 7): pointer-intensive, memory-bound kernels.
#[allow(clippy::vec_init_then_push)]
fn olden() -> Vec<BenchmarkSpec> {
    let mut v = Vec::new();

    v.push(
        BenchmarkSpec::builder("bh", Suite::Olden)
            .mix(OpMix {
                fp_add: 0.06,
                fp_mul: 0.05,
                ..OpMix::pointer()
            })
            .code(8 * KB, 40, 0.01)
            .branches(0.10, 0.60, 10)
            .ilp(8, 6, 0.12)
            .flat_frac(0.15)
            .segments(vec![chase(256 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("2048 1; 0-200M")
            .build()
            .expect("bh"),
    );
    v.push(
        BenchmarkSpec::builder("bisort", Suite::Olden)
            .mix(OpMix::pointer())
            .code(3 * KB, 24, 0.005)
            .branches(0.25, 0.50, 6)
            .ilp(6, 2, 0.20)
            .flat_frac(0.10)
            .segments(vec![chase(512 * KB, 3.0), random(8 * KB, 1.0)])
            .paper_window("65000 0; entire program (127M)")
            .build()
            .expect("bisort"),
    );
    // em3d: the headline winner (+49% phase-adaptive) — a ~1.5 MB
    // working set with real reuse that only the 2 MB L2 captures.
    v.push(
        BenchmarkSpec::builder("em3d", Suite::Olden)
            .mix(OpMix::pointer())
            .code(4 * KB, 30, 0.003)
            .branches(0.06, 0.65, 16)
            .ilp(12, 4, 0.05)
            .flat_frac(0.30)
            .segments(vec![chase(1500 * KB, 5.0), random(8 * KB, 1.0)])
            .paper_window("4000 10; 70M-178M (108M)")
            .build()
            .expect("em3d"),
    );
    v.push(
        BenchmarkSpec::builder("health", Suite::Olden)
            .mix(OpMix::pointer())
            .code(5 * KB, 32, 0.006)
            .branches(0.15, 0.55, 8)
            .ilp(8, 2, 0.15)
            .flat_frac(0.12)
            .segments(vec![chase(700 * KB, 3.0), random(8 * KB, 1.0)])
            .paper_window("4 1000 1; 80M-127M (47M)")
            .build()
            .expect("health"),
    );
    // mst: strong winner, but Phase-Adaptive trails Program-Adaptive:
    // short conflict bursts arrive and end within one 15K-instruction
    // interval, so the controller's reaction is always one burst late
    // (§5.1). The short second phase reproduces that pathology.
    v.push(
        BenchmarkSpec::builder("mst", Suite::Olden)
            .mix(OpMix::pointer())
            .code(4 * KB, 28, 0.004)
            .branches(0.12, 0.55, 10)
            .ilp(8, 2, 0.10)
            .flat_frac(0.15)
            .segments(vec![chase(900 * KB, 4.0), random(8 * KB, 1.0)])
            .phase(52_000, PhaseOverrides::default())
            .phase(
                8_000,
                PhaseOverrides {
                    segments: Some(vec![
                        chase(900 * KB, 1.0),
                        random(48 * KB, 8.0), // conflict burst in a hot array
                    ]),
                    ..PhaseOverrides::default()
                },
            )
            .paper_window("1024 1; 70M-170M (100M)")
            .build()
            .expect("mst"),
    );
    v.push(
        BenchmarkSpec::builder("perimeter", Suite::Olden)
            .mix(OpMix::pointer())
            .code(6 * KB, 36, 0.008)
            .branches(0.20, 0.55, 6)
            .ilp(6, 2, 0.18)
            .flat_frac(0.10)
            .segments(vec![chase(384 * KB, 2.0), random(8 * KB, 1.0)])
            .paper_window("12 1; 0-200M")
            .build()
            .expect("perimeter"),
    );
    v.push(
        BenchmarkSpec::builder("power", Suite::Olden)
            .mix(OpMix::floating_point())
            .code(8 * KB, 40, 0.006)
            .branches(0.08, 0.62, 12)
            .ilp(10, 12, 0.08)
            .flat_frac(0.20)
            .segments(vec![random(32 * KB, 3.0), random(8 * KB, 1.0)])
            .paper_window("1 1; 0-200M")
            .build()
            .expect("power"),
    );
    // treeadd: pure streaming traversal — misses at every configuration,
    // so the smallest/fastest sizing wins.
    v.push(
        BenchmarkSpec::builder("treeadd", Suite::Olden)
            .mix(OpMix::pointer())
            .code(2 * KB, 16, 0.002)
            .branches(0.05, 0.65, 16)
            .ilp(10, 2, 0.08)
            .flat_frac(0.25)
            .segments(vec![chase(4096 * KB, 3.0), random(4 * KB, 1.0)])
            .paper_window("20 1; entire program (189M)")
            .build()
            .expect("treeadd"),
    );
    v.push(
        BenchmarkSpec::builder("tsp", Suite::Olden)
            .mix(OpMix {
                fp_add: 0.08,
                fp_mul: 0.06,
                ..OpMix::pointer()
            })
            .code(6 * KB, 36, 0.006)
            .branches(0.12, 0.58, 10)
            .ilp(8, 6, 0.12)
            .flat_frac(0.15)
            .segments(vec![chase(256 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("100000 1; 0-200M")
            .build()
            .expect("tsp"),
    );

    v
}

/// SPEC2000 integer profiles (Table 8, top).
#[allow(clippy::vec_init_then_push)]
fn spec_int() -> Vec<BenchmarkSpec> {
    let mut v = Vec::new();

    // bzip2: Program-Adaptive loser (-4.8%): branchy, serial, code just
    // past the 16 KB base I-cache, data served fine by the sync design.
    v.push(
        BenchmarkSpec::builder("bzip2", Suite::SpecInt)
            .code(32 * KB, 120, 0.02)
            .branches(0.42, 0.50, 6)
            .ilp(9, 0, 0.22)
            .flat_frac(0.12)
            .mix(OpMix {
                load: 0.24,
                store: 0.12,
                ..OpMix::integer()
            })
            .segments(vec![stride(192 * KB, 2.0), random(20 * KB, 2.0)])
            .paper_window("source 58; 1000M-1100M")
            .build()
            .expect("bzip2"),
    );
    v.push(
        BenchmarkSpec::builder("crafty", Suite::SpecInt)
            .code(64 * KB, 256, 0.03)
            .branches(0.22, 0.55, 8)
            .ilp(10, 0, 0.15)
            .flat_frac(0.18)
            .segments(vec![random(96 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("crafty"),
    );
    v.push(
        BenchmarkSpec::builder("eon", Suite::SpecInt)
            .mix(OpMix {
                fp_add: 0.08,
                fp_mul: 0.06,
                ..OpMix::integer()
            })
            .code(64 * KB, 220, 0.025)
            .branches(0.15, 0.58, 8)
            .ilp(8, 6, 0.15)
            .flat_frac(0.15)
            .segments(vec![random(32 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("eon"),
    );
    // gcc: the headline integer winner (+41/45%). Mechanism: a huge code
    // + data footprint that spills the 256 KB sync L2 but lives in the
    // upsized (1-2 MB) unified L2.
    v.push(
        BenchmarkSpec::builder("gcc", Suite::SpecInt)
            .code(112 * KB, 400, 0.04)
            .branches(0.18, 0.55, 8)
            .ilp(8, 0, 0.25)
            .flat_frac(0.10)
            .segments(vec![random(640 * KB, 4.0), random(24 * KB, 1.0)])
            .paper_window("166.i; 2000M-2100M")
            .build()
            .expect("gcc"),
    );
    v.push(
        BenchmarkSpec::builder("gzip", Suite::SpecInt)
            .code(12 * KB, 60, 0.01)
            .branches(0.20, 0.55, 8)
            .ilp(10, 0, 0.15)
            .flat_frac(0.18)
            .segments(vec![stride(192 * KB, 2.0), random(64 * KB, 1.0)])
            .paper_window("source 60; 1000M-1100M")
            .build()
            .expect("gzip"),
    );
    v.push(
        BenchmarkSpec::builder("parser", Suite::SpecInt)
            .mix(OpMix::pointer())
            .code(48 * KB, 180, 0.03)
            .branches(0.28, 0.55, 6)
            .ilp(9, 2, 0.20)
            .flat_frac(0.15)
            .segments(vec![chase(256 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("parser"),
    );
    v.push(
        BenchmarkSpec::builder("twolf", Suite::SpecInt)
            .code(32 * KB, 120, 0.02)
            .branches(0.30, 0.50, 6)
            .ilp(10, 0, 0.16)
            .flat_frac(0.18)
            .segments(vec![random(384 * KB, 3.0), random(16 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("twolf"),
    );
    // vortex: big winner (+33%): large code + object database in L2.
    v.push(
        BenchmarkSpec::builder("vortex", Suite::SpecInt)
            .code(96 * KB, 350, 0.035)
            .branches(0.12, 0.60, 10)
            .ilp(9, 0, 0.18)
            .flat_frac(0.12)
            .segments(vec![random(512 * KB, 4.0), random(24 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("vortex"),
    );
    // vpr: the biggest Program-Adaptive loser (-6.6%): branchy, mid-size
    // code, data that the sync design already captures.
    v.push(
        BenchmarkSpec::builder("vpr", Suite::SpecInt)
            .code(40 * KB, 150, 0.025)
            .branches(0.35, 0.50, 6)
            .ilp(9, 0, 0.18)
            .flat_frac(0.15)
            .segments(vec![stride(20 * KB, 2.0), random(6 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("vpr"),
    );

    v
}

/// SPEC2000 floating-point profiles (Table 8, bottom).
fn spec_fp() -> Vec<BenchmarkSpec> {
    let mut v = Vec::new();

    // apsi: strong periodic phases in D-cache capacity needs
    // (Figure 7a): the working set swings between L1-resident and
    // ≈120 KB every few tens of thousands of instructions.
    v.push(
        BenchmarkSpec::builder("apsi", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .code(24 * KB, 90, 0.012)
            .branches(0.06, 0.62, 12)
            .ilp(10, 14, 0.10)
            .flat_frac(0.20)
            .segments(vec![stride(24 * KB, 3.0), random(6 * KB, 1.0)])
            .phase(
                30_000,
                PhaseOverrides {
                    segments: Some(vec![stride(24 * KB, 3.0), random(6 * KB, 1.0)]),
                    ..PhaseOverrides::default()
                },
            )
            .phase(
                30_000,
                PhaseOverrides {
                    segments: Some(vec![stride(120 * KB, 3.0), random(12 * KB, 1.0)]),
                    ..PhaseOverrides::default()
                },
            )
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("apsi"),
    );
    // art: cycles through ILP regimes in a regular pattern (Figure 7b).
    let art_ilp = |ci, cf, serial, flat| IlpModel {
        chains_int: ci,
        chains_fp: cf,
        serial_frac: serial,
        flat_frac: flat,
    };
    v.push(
        BenchmarkSpec::builder("art", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .code(6 * KB, 24, 0.002)
            .branches(0.05, 0.65, 16)
            .ilp(6, 8, 0.25)
            .flat_frac(0.10)
            .segments(vec![stride(900 * KB, 4.0), random(16 * KB, 1.0)])
            .phase(
                25_000,
                PhaseOverrides {
                    ilp: Some(art_ilp(6, 8, 0.25, 0.10)),
                    ..PhaseOverrides::default()
                },
            )
            .phase(
                25_000,
                PhaseOverrides {
                    ilp: Some(art_ilp(10, 16, 0.0, 0.35)),
                    ..PhaseOverrides::default()
                },
            )
            .phase(
                25_000,
                PhaseOverrides {
                    ilp: Some(art_ilp(16, 24, 0.0, 0.30)),
                    ..PhaseOverrides::default()
                },
            )
            .phase(
                25_000,
                PhaseOverrides {
                    ilp: Some(art_ilp(14, 22, 0.0, 0.55)),
                    ..PhaseOverrides::default()
                },
            )
            .paper_window("ref; 300M-400M")
            .build()
            .expect("art"),
    );
    v.push(
        BenchmarkSpec::builder("equake", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .code(16 * KB, 64, 0.008)
            .branches(0.08, 0.60, 12)
            .ilp(10, 12, 0.10)
            .flat_frac(0.25)
            .segments(vec![
                chase(800 * KB, 3.0),
                stride(640 * KB, 2.0),
                random(16 * KB, 1.0),
            ])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("equake"),
    );
    v.push(
        BenchmarkSpec::builder("galgel", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .code(16 * KB, 56, 0.006)
            .branches(0.05, 0.65, 16)
            .ilp(12, 18, 0.05)
            .flat_frac(0.30)
            .segments(vec![stride(256 * KB, 3.0), random(32 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("galgel"),
    );
    // mesa (SPEC ref input): larger code, Phase-Adaptive winner.
    v.push(
        BenchmarkSpec::builder("mesa", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .code(64 * KB, 240, 0.03)
            .branches(0.15, 0.55, 8)
            .ilp(8, 10, 0.12)
            .flat_frac(0.15)
            .segments(vec![random(128 * KB, 2.0), random(16 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("mesa"),
    );
    v.push(
        BenchmarkSpec::builder("wupwise", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .code(12 * KB, 48, 0.005)
            .branches(0.06, 0.62, 16)
            .ilp(10, 16, 0.08)
            .flat_frac(0.25)
            .segments(vec![stride(512 * KB, 3.0), random(32 * KB, 1.0)])
            .paper_window("ref; 1000M-1100M")
            .build()
            .expect("wupwise"),
    );

    v
}

/// Every benchmark run of Figure 6, in the figure's x-axis order
/// (MediaBench, then Olden, then SPEC2000).
pub fn all() -> Vec<BenchmarkSpec> {
    let mut v = mediabench();
    v.extend(olden());
    // Figure 6 interleaves SPEC alphabetically (apsi, art, bzip2, ...);
    // reproduce that order.
    let mut spec: Vec<BenchmarkSpec> = spec_int().into_iter().chain(spec_fp()).collect();
    spec.sort_by(|a, b| a.name().cmp(b.name()));
    v.extend(spec);
    v
}

/// Looks up a benchmark by its Figure 6 name (e.g. `"gcc"`,
/// `"adpcm_encode"`).
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    all().into_iter().find(|s| s.name() == name)
}

/// Names of all benchmarks, in [`all`] order.
pub fn names() -> Vec<String> {
    all().iter().map(|s| s.name().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::InstructionStream;

    #[test]
    fn suite_has_40_runs() {
        assert_eq!(all().len(), 40);
    }

    #[test]
    fn names_are_unique() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn suite_counts_match_tables() {
        let v = all();
        let media = v.iter().filter(|s| s.suite() == Suite::MediaBench).count();
        let olden = v.iter().filter(|s| s.suite() == Suite::Olden).count();
        let si = v.iter().filter(|s| s.suite() == Suite::SpecInt).count();
        let sf = v.iter().filter(|s| s.suite() == Suite::SpecFp).count();
        assert_eq!(media, 16, "Table 6: 16 MediaBench runs");
        assert_eq!(olden, 9, "Table 7: 9 Olden runs");
        assert_eq!(si, 9, "Table 8: 9 SPECint runs");
        assert_eq!(sf, 6, "Table 8: 6 SPECfp runs");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gcc").is_some());
        assert!(by_name("em3d").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn phased_benchmarks_have_phases() {
        for name in ["apsi", "art", "mst"] {
            let s = by_name(name).unwrap();
            assert!(!s.phases().is_empty(), "{name} should be phased");
        }
        assert!(by_name("gcc").unwrap().phases().is_empty());
    }

    #[test]
    fn every_benchmark_streams() {
        for s in all() {
            let mut st = s.stream();
            for _ in 0..2_000 {
                let _ = st.next_inst();
            }
            assert_eq!(st.produced(), 2_000, "{}", s.name());
        }
    }

    #[test]
    fn figure6_order_starts_with_mediabench() {
        let names = names();
        assert_eq!(names[0], "adpcm_encode");
        assert_eq!(names[15], "mpeg2_decode");
        assert_eq!(names[16], "bh");
        assert_eq!(names[24], "tsp");
        assert_eq!(names[25], "apsi");
        assert_eq!(names[39], "wupwise");
    }

    #[test]
    fn paper_windows_recorded() {
        for s in all() {
            assert!(!s.paper_window().is_empty(), "{}", s.name());
        }
    }
}
