//! Benchmark specifications: the tunable knobs of the synthetic workload
//! generator.

use std::error::Error;
use std::fmt;

use crate::stream::SyntheticStream;

/// Benchmark suite provenance (Tables 6–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MediaBench (Table 6).
    MediaBench,
    /// Olden pointer-intensive suite (Table 7).
    Olden,
    /// SPEC2000 integer (Table 8, top half).
    SpecInt,
    /// SPEC2000 floating-point (Table 8, bottom half).
    SpecFp,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::MediaBench => "MediaBench",
            Suite::Olden => "Olden",
            Suite::SpecInt => "SPEC2000-INT",
            Suite::SpecFp => "SPEC2000-FP",
        };
        f.write_str(s)
    }
}

/// Validation error for benchmark specifications.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid benchmark spec: {}", self.0)
    }
}

impl Error for SpecError {}

/// Relative weights of non-control instruction classes.
///
/// Weights need not sum to one; they are normalized at stream build time.
/// Control transfers are produced by the code model (every basic block
/// ends in one), so they are not part of the mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Single-cycle integer ALU.
    pub int_alu: f64,
    /// Integer multiply.
    pub int_mul: f64,
    /// Integer divide.
    pub int_div: f64,
    /// FP add/subtract/compare.
    pub fp_add: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// FP divide.
    pub fp_div: f64,
    /// FP square root.
    pub fp_sqrt: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
}

impl OpMix {
    /// A typical integer-code mix: ALU-dominated, ~25% memory.
    pub fn integer() -> Self {
        OpMix {
            int_alu: 0.50,
            int_mul: 0.02,
            int_div: 0.005,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            fp_sqrt: 0.0,
            load: 0.20,
            store: 0.10,
        }
    }

    /// A typical floating-point mix: substantial FP with memory streaming.
    pub fn floating_point() -> Self {
        OpMix {
            int_alu: 0.22,
            int_mul: 0.01,
            int_div: 0.0,
            fp_add: 0.18,
            fp_mul: 0.14,
            fp_div: 0.015,
            fp_sqrt: 0.005,
            load: 0.25,
            store: 0.10,
        }
    }

    /// Memory-dominated pointer-chasing mix (Olden).
    pub fn pointer() -> Self {
        OpMix {
            int_alu: 0.40,
            int_mul: 0.01,
            int_div: 0.0,
            fp_add: 0.02,
            fp_mul: 0.01,
            fp_div: 0.0,
            fp_sqrt: 0.0,
            load: 0.32,
            store: 0.10,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.fp_sqrt
            + self.load
            + self.store
    }

    /// Fraction of the mix that is floating point.
    pub fn fp_fraction(&self) -> f64 {
        (self.fp_add + self.fp_mul + self.fp_div + self.fp_sqrt) / self.total()
    }

    fn validate(&self) -> Result<(), SpecError> {
        let all = [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.fp_sqrt,
            self.load,
            self.store,
        ];
        if all.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(SpecError("negative or non-finite mix weight".into()));
        }
        if self.total() <= 0.0 {
            return Err(SpecError("mix weights sum to zero".into()));
        }
        Ok(())
    }
}

/// Dependence-chain structure controlling inherent ILP (§3.2's M_N).
///
/// Computational instructions either **extend a chain** (read and rewrite
/// one of a fixed set of round-robin accumulator registers) or are
/// **flat** (read only stale, never-rewritten registers, so their result
/// has dependence depth 1). The measured dependence-chain depth over a
/// window of N instructions is then roughly `ceil(N·(1−flat)/chains)`,
/// giving direct control over which issue-queue size the §3.2 controller
/// prefers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpModel {
    /// Concurrent integer dependence chains (1–24; registers r1–r24 are
    /// the integer accumulators, the rest are reserved for pointers,
    /// scratch, and the base register).
    pub chains_int: u32,
    /// Concurrent floating-point dependence chains (0–28; f1–f28).
    pub chains_fp: u32,
    /// Probability that an instruction *additionally* reads the
    /// immediately preceding instruction's destination, deepening chains
    /// beyond round-robin (0 = maximal parallelism for the chain count,
    /// 1 = heavily serial).
    pub serial_frac: f64,
    /// Fraction of computational instructions that are flat (depth 1).
    pub flat_frac: f64,
}

impl IlpModel {
    /// Maximum concurrent integer chains.
    pub const MAX_CHAINS_INT: u32 = 24;
    /// Maximum concurrent floating-point chains.
    pub const MAX_CHAINS_FP: u32 = 28;

    fn validate(&self, mix: &OpMix) -> Result<(), SpecError> {
        if self.chains_int == 0 || self.chains_int > Self::MAX_CHAINS_INT {
            return Err(SpecError(format!(
                "chains_int must be 1-{}, got {}",
                Self::MAX_CHAINS_INT,
                self.chains_int
            )));
        }
        if self.chains_fp > Self::MAX_CHAINS_FP {
            return Err(SpecError(format!(
                "chains_fp must be 0-{}, got {}",
                Self::MAX_CHAINS_FP,
                self.chains_fp
            )));
        }
        if mix.fp_fraction() > 0.0 && self.chains_fp == 0 {
            return Err(SpecError("mix contains FP but chains_fp is zero".into()));
        }
        if !(0.0..=1.0).contains(&self.serial_frac) {
            return Err(SpecError("serial_frac must be in [0,1]".into()));
        }
        if !(0.0..=1.0).contains(&self.flat_frac) {
            return Err(SpecError("flat_frac must be in [0,1]".into()));
        }
        Ok(())
    }
}

/// Static code layout and fetch locality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeModel {
    /// Total static code footprint in bytes (4-byte instructions laid out
    /// in basic blocks).
    pub footprint_bytes: u64,
    /// Mean basic-block length in instructions (the terminating control
    /// transfer included).
    pub block_len: u32,
    /// Size of the currently-hot region in blocks; fetch mostly stays
    /// within the region (loops) before moving on.
    pub region_blocks: u32,
    /// Per-block probability of jumping to a different region of the
    /// footprint (long-range call/return behaviour).
    pub region_switch: f64,
}

impl CodeModel {
    /// Number of basic blocks implied by the footprint.
    pub fn blocks(&self) -> u32 {
        ((self.footprint_bytes / 4) as u32 / self.block_len).max(1)
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.block_len == 0 || self.block_len > 64 {
            return Err(SpecError("block_len must be 1-64".into()));
        }
        if self.footprint_bytes < 256 {
            return Err(SpecError("footprint must be at least 256 bytes".into()));
        }
        if self.region_blocks == 0 {
            return Err(SpecError("region_blocks must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.region_switch) {
            return Err(SpecError("region_switch must be in [0,1]".into()));
        }
        Ok(())
    }
}

/// Branch-outcome behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchModel {
    /// Fraction of blocks whose terminator is a data-dependent ("hard")
    /// branch with near-random outcomes.
    pub hard_frac: f64,
    /// Taken probability of hard branches.
    pub hard_bias: f64,
    /// Loop trip count for easy branches: taken `period-1` times, then
    /// not taken (perfectly learnable by the local component for periods
    /// within the history length).
    pub easy_period: u32,
}

impl BranchModel {
    fn validate(&self) -> Result<(), SpecError> {
        if !(0.0..=1.0).contains(&self.hard_frac) || !(0.0..=1.0).contains(&self.hard_bias) {
            return Err(SpecError("branch fractions must be in [0,1]".into()));
        }
        if self.easy_period < 2 {
            return Err(SpecError("easy_period must be >= 2".into()));
        }
        Ok(())
    }
}

/// Memory access pattern of one data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Sequential scan with the given byte stride.
    Stride(u32),
    /// Uniform random within the segment.
    Random,
    /// Pointer chasing: each load's address depends on the previous
    /// load's value (serialized loads, random placement).
    PointerChase,
}

/// One region of the data working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSegment {
    /// Segment size in bytes; determines which cache level captures it.
    pub bytes: u64,
    /// Relative probability of an access landing in this segment.
    pub weight: f64,
    /// Access pattern within the segment.
    pub pattern: AccessPattern,
}

impl DataSegment {
    fn validate(&self) -> Result<(), SpecError> {
        if self.bytes < 64 {
            return Err(SpecError("segment smaller than a cache line".into()));
        }
        if !self.weight.is_finite() || self.weight < 0.0 {
            return Err(SpecError("segment weight must be non-negative".into()));
        }
        if let AccessPattern::Stride(s) = self.pattern {
            if s == 0 {
                return Err(SpecError("stride must be positive".into()));
            }
        }
        Ok(())
    }
}

/// Parameter overrides active during one phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseOverrides {
    /// Replacement ILP model.
    pub ilp: Option<IlpModel>,
    /// Replacement data segments.
    pub segments: Option<Vec<DataSegment>>,
    /// Replacement instruction mix.
    pub mix: Option<OpMix>,
    /// Replacement hard-branch fraction.
    pub hard_frac: Option<f64>,
}

/// One phase of a phased benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase length in instructions.
    pub len_insts: u64,
    /// Parameters that differ from the base spec during this phase.
    pub overrides: PhaseOverrides,
}

/// A complete benchmark specification.
///
/// Construct via [`BenchmarkSpec::builder`]; obtain the deterministic
/// instruction stream via [`BenchmarkSpec::stream`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    name: String,
    suite: Suite,
    seed: u64,
    mix: OpMix,
    ilp: IlpModel,
    code: CodeModel,
    branches: BranchModel,
    segments: Vec<DataSegment>,
    phases: Vec<PhaseSpec>,
    paper_window: String,
}

impl BenchmarkSpec {
    /// Starts building a spec with the given name and suite.
    pub fn builder(name: impl Into<String>, suite: Suite) -> BenchmarkSpecBuilder {
        BenchmarkSpecBuilder {
            name: name.into(),
            suite,
            seed: None,
            mix: OpMix::integer(),
            ilp: IlpModel {
                chains_int: 6,
                chains_fp: 0,
                serial_frac: 0.2,
                flat_frac: 0.2,
            },
            code: CodeModel {
                footprint_bytes: 8 * 1024,
                block_len: 7,
                region_blocks: 32,
                region_switch: 0.02,
            },
            branches: BranchModel {
                hard_frac: 0.15,
                hard_bias: 0.6,
                easy_period: 8,
            },
            segments: vec![DataSegment {
                bytes: 8 * 1024,
                weight: 1.0,
                pattern: AccessPattern::Random,
            }],
            phases: Vec::new(),
            paper_window: String::new(),
        }
    }

    /// Benchmark name (Figure 6 x-axis label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source suite.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Instruction mix.
    pub fn mix(&self) -> &OpMix {
        &self.mix
    }

    /// ILP model.
    pub fn ilp(&self) -> &IlpModel {
        &self.ilp
    }

    /// Code model.
    pub fn code(&self) -> &CodeModel {
        &self.code
    }

    /// Branch model.
    pub fn branches(&self) -> &BranchModel {
        &self.branches
    }

    /// Data segments.
    pub fn segments(&self) -> &[DataSegment] {
        &self.segments
    }

    /// Phase script (empty for unphased benchmarks).
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The simulation window quoted in Tables 6–8 (documentation only; the
    /// harness chooses its own scaled-down window).
    pub fn paper_window(&self) -> &str {
        &self.paper_window
    }

    /// Builds the deterministic instruction stream for this benchmark.
    pub fn stream(&self) -> SyntheticStream {
        SyntheticStream::new(self.clone())
    }
}

/// Builder for [`BenchmarkSpec`] (see [`BenchmarkSpec::builder`]).
#[derive(Debug, Clone)]
pub struct BenchmarkSpecBuilder {
    name: String,
    suite: Suite,
    seed: Option<u64>,
    mix: OpMix,
    ilp: IlpModel,
    code: CodeModel,
    branches: BranchModel,
    segments: Vec<DataSegment>,
    phases: Vec<PhaseSpec>,
    paper_window: String,
}

impl BenchmarkSpecBuilder {
    /// Overrides the stream seed (default: a hash of the name).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the instruction mix.
    pub fn mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the chain structure of the ILP model (keeping the current
    /// flat fraction).
    pub fn ilp(mut self, chains_int: u32, chains_fp: u32, serial_frac: f64) -> Self {
        self.ilp.chains_int = chains_int;
        self.ilp.chains_fp = chains_fp;
        self.ilp.serial_frac = serial_frac;
        self
    }

    /// Sets the flat (depth-1) instruction fraction of the ILP model.
    pub fn flat_frac(mut self, flat_frac: f64) -> Self {
        self.ilp.flat_frac = flat_frac;
        self
    }

    /// Sets the code model.
    pub fn code(mut self, footprint_bytes: u64, region_blocks: u32, region_switch: f64) -> Self {
        self.code.footprint_bytes = footprint_bytes;
        self.code.region_blocks = region_blocks;
        self.code.region_switch = region_switch;
        self
    }

    /// Sets the mean basic-block length.
    pub fn block_len(mut self, len: u32) -> Self {
        self.code.block_len = len;
        self
    }

    /// Sets the branch model.
    pub fn branches(mut self, hard_frac: f64, hard_bias: f64, easy_period: u32) -> Self {
        self.branches = BranchModel {
            hard_frac,
            hard_bias,
            easy_period,
        };
        self
    }

    /// Replaces the data segments.
    pub fn segments(mut self, segments: Vec<DataSegment>) -> Self {
        self.segments = segments;
        self
    }

    /// Appends a phase.
    pub fn phase(mut self, len_insts: u64, overrides: PhaseOverrides) -> Self {
        self.phases.push(PhaseSpec {
            len_insts,
            overrides,
        });
        self
    }

    /// Records the paper's quoted simulation window (documentation).
    pub fn paper_window(mut self, w: impl Into<String>) -> Self {
        self.paper_window = w.into();
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when any model parameter is out of range or
    /// inconsistent (e.g. an FP mix with zero FP chains).
    pub fn build(self) -> Result<BenchmarkSpec, SpecError> {
        self.mix.validate()?;
        self.ilp.validate(&self.mix)?;
        self.code.validate()?;
        self.branches.validate()?;
        if self.segments.is_empty() {
            return Err(SpecError("at least one data segment required".into()));
        }
        for s in &self.segments {
            s.validate()?;
        }
        if self.segments.iter().map(|s| s.weight).sum::<f64>() <= 0.0 {
            return Err(SpecError("segment weights sum to zero".into()));
        }
        for p in &self.phases {
            if p.len_insts == 0 {
                return Err(SpecError("phase length must be positive".into()));
            }
            if let Some(ilp) = &p.overrides.ilp {
                ilp.validate(p.overrides.mix.as_ref().unwrap_or(&self.mix))?;
            }
            if let Some(mix) = &p.overrides.mix {
                mix.validate()?;
            }
            if let Some(segs) = &p.overrides.segments {
                if segs.is_empty() {
                    return Err(SpecError("phase segments must be non-empty".into()));
                }
                for s in segs {
                    s.validate()?;
                }
            }
            if let Some(h) = p.overrides.hard_frac {
                if !(0.0..=1.0).contains(&h) {
                    return Err(SpecError("phase hard_frac must be in [0,1]".into()));
                }
            }
        }
        let seed = self.seed.unwrap_or_else(|| fnv1a(self.name.as_bytes()));
        Ok(BenchmarkSpec {
            name: self.name,
            suite: self.suite,
            seed,
            mix: self.mix,
            ilp: self.ilp,
            code: self.code,
            branches: self.branches,
            segments: self.segments,
            phases: self.phases,
            paper_window: self.paper_window,
        })
    }
}

/// FNV-1a hash for stable name-derived seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_build() {
        let s = BenchmarkSpec::builder("demo", Suite::SpecInt)
            .build()
            .unwrap();
        assert_eq!(s.name(), "demo");
        assert_eq!(s.suite(), Suite::SpecInt);
        assert!(s.phases().is_empty());
        assert!(s.seed() != 0);
    }

    #[test]
    fn seed_is_name_stable() {
        let a = BenchmarkSpec::builder("gcc", Suite::SpecInt)
            .build()
            .unwrap();
        let b = BenchmarkSpec::builder("gcc", Suite::SpecInt)
            .build()
            .unwrap();
        let c = BenchmarkSpec::builder("gzip", Suite::SpecInt)
            .build()
            .unwrap();
        assert_eq!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
    }

    #[test]
    fn fp_mix_requires_fp_chains() {
        let err = BenchmarkSpec::builder("bad", Suite::SpecFp)
            .mix(OpMix::floating_point())
            .ilp(8, 0, 0.1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("chains_fp"));
    }

    #[test]
    fn chain_limits_enforced() {
        assert!(BenchmarkSpec::builder("bad", Suite::SpecInt)
            .ilp(0, 0, 0.1)
            .build()
            .is_err());
        assert!(BenchmarkSpec::builder("bad", Suite::SpecInt)
            .ilp(IlpModel::MAX_CHAINS_INT + 1, 0, 0.1)
            .build()
            .is_err());
    }

    #[test]
    fn segments_validated() {
        assert!(BenchmarkSpec::builder("bad", Suite::SpecInt)
            .segments(vec![])
            .build()
            .is_err());
        assert!(BenchmarkSpec::builder("bad", Suite::SpecInt)
            .segments(vec![DataSegment {
                bytes: 16,
                weight: 1.0,
                pattern: AccessPattern::Random,
            }])
            .build()
            .is_err());
        assert!(BenchmarkSpec::builder("bad", Suite::SpecInt)
            .segments(vec![DataSegment {
                bytes: 4096,
                weight: 1.0,
                pattern: AccessPattern::Stride(0),
            }])
            .build()
            .is_err());
    }

    #[test]
    fn phases_validated() {
        let err = BenchmarkSpec::builder("bad", Suite::SpecFp)
            .phase(0, PhaseOverrides::default())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("phase length"));
    }

    #[test]
    fn code_model_blocks() {
        let c = CodeModel {
            footprint_bytes: 16 * 1024,
            block_len: 8,
            region_blocks: 16,
            region_switch: 0.01,
        };
        assert_eq!(c.blocks(), 512);
    }

    #[test]
    fn mix_fp_fraction() {
        assert_eq!(OpMix::integer().fp_fraction(), 0.0);
        assert!(OpMix::floating_point().fp_fraction() > 0.3);
    }
}
