//! The deterministic synthetic instruction stream generator.

use gals_common::SplitMix64;
use gals_isa::{ArchReg, DynInst, InstructionStream, OpClass};

use crate::spec::{AccessPattern, BenchmarkSpec, DataSegment, IlpModel, OpMix, PhaseOverrides};

/// Base address of the synthetic code region.
const CODE_BASE: u64 = 0x0040_0000;
/// Base address of the synthetic data region.
const DATA_BASE: u64 = 0x2000_0000;
/// Gap between data segments (keeps them disjoint and set-spread).
const SEGMENT_ALIGN: u64 = 1 << 22; // 4 MB

/// Integer register roles (see `IlpModel` docs).
const R_STALE: u8 = 0; // never written
const R_CHAIN_BASE: u8 = 1; // r1..=r24
const R_FLAT_SCRATCH: u8 = 25;
const R_PTR_BASE: u8 = 26; // r26..=r30: pointer-chase registers
const R_DATA_BASE: u8 = 31; // segment base register, never written
/// Maximum pointer-chase segments (r26..=r30).
const MAX_PTR_SEGMENTS: usize = 5;

/// FP register roles.
const F_STALE: u8 = 0;
const F_CHAIN_BASE: u8 = 1; // f1..=f28
const F_FLAT_BASE: u8 = 29; // f29..=f31 rotate as flat scratch

#[derive(Debug, Clone)]
struct SegState {
    base: u64,
    bytes: u64,
    cum_weight: f64,
    pattern: AccessPattern,
    cursor: u64,
    ptr_reg: Option<u8>,
}

#[derive(Debug, Clone)]
struct ActiveParams {
    ilp: IlpModel,
    hard_frac: f64,
    /// Cumulative (weight, class) thresholds for the nine mix classes.
    mix_cum: [(f64, OpClass); 9],
    mix_total: f64,
    fp_load_frac: f64,
    segs: Vec<SegState>,
    seg_total_weight: f64,
}

fn build_mix_cum(mix: &OpMix) -> ([(f64, OpClass); 9], f64) {
    let entries = [
        (mix.int_alu, OpClass::IntAlu),
        (mix.int_mul, OpClass::IntMul),
        (mix.int_div, OpClass::IntDiv),
        (mix.fp_add, OpClass::FpAdd),
        (mix.fp_mul, OpClass::FpMul),
        (mix.fp_div, OpClass::FpDiv),
        (mix.fp_sqrt, OpClass::FpSqrt),
        (mix.load, OpClass::Load),
        (mix.store, OpClass::Store),
    ];
    let mut cum = 0.0;
    let mut out = [(0.0, OpClass::Nop); 9];
    for (i, (w, c)) in entries.iter().enumerate() {
        cum += w;
        out[i] = (cum, *c);
    }
    (out, cum)
}

fn build_segments(segments: &[DataSegment]) -> (Vec<SegState>, f64) {
    let mut segs = Vec::with_capacity(segments.len());
    let mut cum = 0.0;
    let mut base = DATA_BASE;
    let mut ptr_idx = 0usize;
    for (i, s) in segments.iter().enumerate() {
        // Stagger segment bases so distinct segments do not all collide
        // in the low cache sets (pure power-of-two alignment would map
        // every segment start to set 0). 8,384 = 131 cache lines.
        base += i as u64 * 8_384;
        cum += s.weight;
        let ptr_reg = if s.pattern == AccessPattern::PointerChase {
            let reg = R_PTR_BASE + (ptr_idx % MAX_PTR_SEGMENTS) as u8;
            ptr_idx += 1;
            Some(reg)
        } else {
            None
        };
        segs.push(SegState {
            base,
            bytes: s.bytes,
            cum_weight: cum,
            pattern: s.pattern,
            cursor: 0,
            ptr_reg,
        });
        base += s.bytes.div_ceil(SEGMENT_ALIGN).max(1) * SEGMENT_ALIGN;
    }
    (segs, cum)
}

fn build_active(spec: &BenchmarkSpec, overrides: Option<&PhaseOverrides>) -> ActiveParams {
    let ilp = overrides.and_then(|o| o.ilp).unwrap_or(*spec.ilp());
    let mix = overrides.and_then(|o| o.mix).unwrap_or(*spec.mix());
    let hard_frac = overrides
        .and_then(|o| o.hard_frac)
        .unwrap_or(spec.branches().hard_frac);
    let seg_source: &[DataSegment] = overrides
        .and_then(|o| o.segments.as_deref())
        .unwrap_or_else(|| spec.segments());
    let (mix_cum, mix_total) = build_mix_cum(&mix);
    let (segs, seg_total_weight) = build_segments(seg_source);
    let fp_load_frac = if ilp.chains_fp > 0 {
        mix.fp_fraction()
    } else {
        0.0
    };
    ActiveParams {
        ilp,
        hard_frac,
        mix_cum,
        mix_total,
        fp_load_frac,
        segs,
        seg_total_weight,
    }
}

/// The synthetic instruction stream (see the [crate docs](crate) for the
/// model). Obtained from [`BenchmarkSpec::stream`].
pub struct SyntheticStream {
    spec: BenchmarkSpec,
    rng: SplitMix64,
    active: ActiveParams,

    // Code walk.
    n_blocks: u32,
    block_len: u32,
    cur_block: u32,
    region_start: u32,
    body_left: u32,
    /// Stable per-block personality rolls in [0, 65535].
    rolls: Vec<u16>,
    /// Per-block visit counters for easy-branch loop patterns.
    visits: Vec<u32>,

    // Dependence chains.
    cursor_int: u32,
    cursor_fp: u32,
    flat_fp_rot: u8,
    last_dst: Option<ArchReg>,

    // Phase machinery.
    inst_count: u64,
    phase_idx: usize,
    phase_left: u64,
}

impl std::fmt::Debug for SyntheticStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticStream")
            .field("name", &self.spec.name())
            .field("inst_count", &self.inst_count)
            .field("phase_idx", &self.phase_idx)
            .finish_non_exhaustive()
    }
}

impl SyntheticStream {
    /// Builds the stream for a spec (deterministic in the spec's seed).
    pub fn new(spec: BenchmarkSpec) -> Self {
        let mut rng = SplitMix64::new(spec.seed());
        let n_blocks = spec.code().blocks();
        let block_len = spec.code().block_len;
        let mut roll_rng = rng.fork(0xB10C);
        let rolls = (0..n_blocks).map(|_| roll_rng.next_u64() as u16).collect();
        let (phase_idx, phase_left, overrides) = if spec.phases().is_empty() {
            (0, u64::MAX, None)
        } else {
            (
                0,
                spec.phases()[0].len_insts,
                Some(&spec.phases()[0].overrides),
            )
        };
        let active = build_active(&spec, overrides);
        SyntheticStream {
            rng,
            n_blocks,
            block_len,
            cur_block: 0,
            region_start: 0,
            body_left: block_len.saturating_sub(1),
            rolls,
            visits: vec![0; n_blocks as usize],
            cursor_int: 0,
            cursor_fp: 0,
            flat_fp_rot: 0,
            last_dst: None,
            inst_count: 0,
            phase_idx,
            phase_left,
            active,
            spec,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Instructions produced so far.
    pub fn produced(&self) -> u64 {
        self.inst_count
    }

    /// Index of the active phase (0 for unphased benchmarks).
    pub fn phase_index(&self) -> usize {
        self.phase_idx
    }

    #[inline]
    fn block_pc(&self, block: u32, offset: u32) -> u64 {
        CODE_BASE + (block as u64 * self.block_len as u64 + offset as u64) * 4
    }

    fn maybe_switch_phase(&mut self) {
        if self.phase_left != u64::MAX {
            if self.phase_left == 0 {
                let phases = self.spec.phases();
                self.phase_idx = (self.phase_idx + 1) % phases.len();
                self.phase_left = phases[self.phase_idx].len_insts;
                self.active = build_active(&self.spec, Some(&phases[self.phase_idx].overrides));
            }
            self.phase_left -= 1;
        }
    }

    /// Picks a block uniformly within the current region.
    #[inline]
    fn random_region_block(&mut self) -> u32 {
        let region = self.spec.code().region_blocks.min(self.n_blocks);
        (self.region_start + self.rng.next_below(region as u64) as u32) % self.n_blocks
    }

    /// The next sequential block, wrapping to the region start when
    /// leaving the region.
    #[inline]
    fn sequential_block(&self) -> u32 {
        let region = self.spec.code().region_blocks.min(self.n_blocks);
        let next = (self.cur_block + 1) % self.n_blocks;
        let offset = (next + self.n_blocks - self.region_start) % self.n_blocks;
        if offset >= region {
            self.region_start
        } else {
            next
        }
    }

    /// Emits the current block's terminating control transfer and selects
    /// the next block.
    fn emit_terminator(&mut self) -> DynInst {
        let pc = self.block_pc(self.cur_block, self.block_len - 1);
        // Occasional long-range region switch (calls, returns, new loop
        // nests).
        if self.rng.chance(self.spec.code().region_switch) {
            self.region_start = self.rng.next_below(self.n_blocks as u64) as u32;
        }

        let roll = self.rolls[self.cur_block as usize] as f64 / 65536.0;
        const JUMP_FRAC: f64 = 0.12;
        let inst;
        let next_block;
        if roll < JUMP_FRAC {
            // Unconditional jump: short call within the region.
            let target = if self.rng.chance(0.3) {
                self.random_region_block()
            } else {
                self.sequential_block()
            };
            inst = DynInst::jump(pc, self.block_pc(target, 0));
            next_block = target;
        } else if roll < JUMP_FRAC + self.active.hard_frac {
            // Hard, data-dependent branch.
            let taken = self.rng.chance(self.spec.branches().hard_bias);
            let target = self.random_region_block();
            let cond =
                ArchReg::int(R_CHAIN_BASE + (self.cursor_int % self.active.ilp.chains_int) as u8);
            inst = DynInst::branch(pc, cond, taken, self.block_pc(target, 0));
            next_block = if taken {
                target
            } else {
                self.sequential_block()
            };
        } else {
            // Easy loop branch: taken (loop back) except every
            // `easy_period`-th visit.
            let period = self.spec.branches().easy_period;
            let v = &mut self.visits[self.cur_block as usize];
            *v += 1;
            let taken = !(*v).is_multiple_of(period);
            // Loop span derived from the stable roll: 0-3 blocks back.
            let span = (self.rolls[self.cur_block as usize] >> 8) as u32 % 4;
            let back = (self.cur_block + self.n_blocks - span.min(self.cur_block)) % self.n_blocks;
            let cond =
                ArchReg::int(R_CHAIN_BASE + (self.cursor_int % self.active.ilp.chains_int) as u8);
            inst = DynInst::branch(pc, cond, taken, self.block_pc(back, 0));
            next_block = if taken { back } else { self.sequential_block() };
        }
        self.cur_block = next_block;
        self.body_left = self.block_len.saturating_sub(1);
        inst
    }

    /// Chain-extension bookkeeping for a computational op of the given
    /// class; returns (dst, srcs).
    fn chain_regs(&mut self, fp: bool) -> (ArchReg, [Option<ArchReg>; 2]) {
        let ilp = self.active.ilp;
        if self.rng.chance(ilp.flat_frac) {
            // Flat op: depth-1 result into scratch.
            if fp {
                let dst = ArchReg::fp(F_FLAT_BASE + self.flat_fp_rot % 3);
                self.flat_fp_rot = self.flat_fp_rot.wrapping_add(1);
                (dst, [Some(ArchReg::fp(F_STALE)), None])
            } else {
                (
                    ArchReg::int(R_FLAT_SCRATCH),
                    [Some(ArchReg::int(R_STALE)), None],
                )
            }
        } else {
            let tail = if fp {
                let c = self.cursor_fp;
                self.cursor_fp = (self.cursor_fp + 1) % ilp.chains_fp.max(1);
                ArchReg::fp(F_CHAIN_BASE + c as u8)
            } else {
                let c = self.cursor_int;
                self.cursor_int = (self.cursor_int + 1) % ilp.chains_int;
                ArchReg::int(R_CHAIN_BASE + c as u8)
            };
            let extra = if self.rng.chance(ilp.serial_frac) {
                self.last_dst
            } else {
                None
            };
            (tail, [Some(tail), extra])
        }
    }

    /// Picks a data segment (weighted) and produces the next address in
    /// its pattern.
    fn segment_access(&mut self) -> (usize, u64) {
        let u = self.rng.next_f64() * self.active.seg_total_weight;
        let idx = self
            .active
            .segs
            .iter()
            .position(|s| u < s.cum_weight)
            .unwrap_or(self.active.segs.len() - 1);
        let seg = &mut self.active.segs[idx];
        let offset = match seg.pattern {
            AccessPattern::Stride(stride) => {
                let o = seg.cursor;
                seg.cursor = (seg.cursor + stride as u64) % seg.bytes;
                o
            }
            AccessPattern::Random | AccessPattern::PointerChase => {
                self.rng.next_below(seg.bytes) & !7
            }
        };
        (idx, seg.base + offset)
    }

    /// Emits one body (non-terminator) instruction.
    fn emit_body(&mut self, pc: u64) -> DynInst {
        let u = self.rng.next_f64() * self.active.mix_total;
        let class = self
            .active
            .mix_cum
            .iter()
            .find(|(cum, _)| u < *cum)
            .map(|(_, c)| *c)
            .unwrap_or(OpClass::IntAlu);

        let inst = match class {
            OpClass::Load => {
                let (idx, addr) = self.segment_access();
                let seg_ptr = self.active.segs[idx].ptr_reg;
                if let Some(p) = seg_ptr {
                    // Pointer chase: address depends on the previous
                    // pointer load of this segment.
                    let preg = ArchReg::int(p);
                    DynInst::load(pc, preg, preg, addr)
                } else if self.rng.chance(self.active.ilp.flat_frac) {
                    // Flat load: feeds no chain (fresh data, depth 1).
                    DynInst::load(
                        pc,
                        ArchReg::int(R_FLAT_SCRATCH),
                        ArchReg::int(R_DATA_BASE),
                        addr,
                    )
                } else if self.rng.chance(self.active.fp_load_frac) {
                    // FP load extends an FP chain *through* the load: the
                    // address derives from the chain's running index, so
                    // the load inherits and deepens the dependence.
                    let c = self.cursor_fp;
                    self.cursor_fp = (self.cursor_fp + 1) % self.active.ilp.chains_fp.max(1);
                    let tail = ArchReg::fp(F_CHAIN_BASE + c as u8);
                    DynInst {
                        srcs: [Some(tail), None],
                        ..DynInst::load(pc, tail, tail, addr)
                    }
                } else {
                    let c = self.cursor_int;
                    self.cursor_int = (self.cursor_int + 1) % self.active.ilp.chains_int;
                    let tail = ArchReg::int(R_CHAIN_BASE + c as u8);
                    DynInst::load(pc, tail, tail, addr)
                }
            }
            OpClass::Store => {
                let (_, addr) = self.segment_access();
                let data = if self.rng.chance(self.active.fp_load_frac)
                    && self.active.ilp.chains_fp > 0
                {
                    ArchReg::fp(F_CHAIN_BASE + (self.cursor_fp % self.active.ilp.chains_fp) as u8)
                } else {
                    ArchReg::int(
                        R_CHAIN_BASE + (self.cursor_int % self.active.ilp.chains_int) as u8,
                    )
                };
                DynInst::store(pc, data, ArchReg::int(R_DATA_BASE), addr)
            }
            c => {
                let fp = c.is_fp();
                let (dst, srcs) = self.chain_regs(fp);
                DynInst::alu(pc, c, dst, srcs)
            }
        };
        if let Some(d) = inst.dst {
            self.last_dst = Some(d);
        }
        inst
    }
}

impl InstructionStream for SyntheticStream {
    fn next_inst(&mut self) -> DynInst {
        self.maybe_switch_phase();
        self.inst_count += 1;
        if self.body_left == 0 {
            self.emit_terminator()
        } else {
            let offset = self.block_len - 1 - self.body_left;
            let pc = self.block_pc(self.cur_block, offset);
            self.body_left -= 1;
            self.emit_body(pc)
        }
    }

    fn name(&self) -> &str {
        self.spec.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BenchmarkSpec, Suite};

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::builder("t", Suite::SpecInt)
            .code(8 * 1024, 32, 0.02)
            .ilp(8, 0, 0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic() {
        let mut a = spec().stream();
        let mut b = spec().stream();
        for _ in 0..10_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn pcs_stay_within_footprint() {
        let s = spec();
        let footprint = s.code().footprint_bytes;
        let mut st = s.stream();
        for _ in 0..50_000 {
            let i = st.next_inst();
            assert!(i.pc >= CODE_BASE);
            assert!(i.pc < CODE_BASE + footprint + 64, "pc outside footprint");
        }
    }

    #[test]
    fn control_transfers_end_blocks() {
        let mut st = spec().stream();
        let block_len = st.spec().code().block_len as u64;
        for _ in 0..5_000 {
            let i = st.next_inst();
            let offset_in_block = (i.pc - CODE_BASE) / 4 % block_len;
            if i.op.is_ctrl() {
                assert_eq!(offset_in_block, block_len - 1, "terminator at block end");
            } else {
                assert!(offset_in_block < block_len - 1);
            }
        }
    }

    #[test]
    fn taken_branches_land_on_block_starts() {
        let mut st = spec().stream();
        let block_len = st.spec().code().block_len as u64;
        for _ in 0..5_000 {
            let i = st.next_inst();
            if i.op.is_ctrl() && i.taken {
                assert_eq!((i.target - CODE_BASE) / 4 % block_len, 0);
            }
        }
    }

    #[test]
    fn memory_addresses_fall_in_segments() {
        let s = BenchmarkSpec::builder("mem", Suite::SpecInt)
            .segments(vec![
                crate::spec::DataSegment {
                    bytes: 64 * 1024,
                    weight: 1.0,
                    pattern: AccessPattern::Stride(64),
                },
                crate::spec::DataSegment {
                    bytes: 1024 * 1024,
                    weight: 1.0,
                    pattern: AccessPattern::Random,
                },
            ])
            .build()
            .unwrap();
        let mut st = s.stream();
        let mut seen_mem = 0;
        for _ in 0..20_000 {
            let i = st.next_inst();
            if i.op.is_mem() {
                seen_mem += 1;
                assert!(i.mem_addr >= DATA_BASE, "addr {:#x}", i.mem_addr);
            }
        }
        assert!(
            seen_mem > 3_000,
            "expected plenty of memory ops: {seen_mem}"
        );
    }

    #[test]
    fn mix_proportions_roughly_hold() {
        let mut st = spec().stream();
        let mut loads = 0u32;
        let mut total_body = 0u32;
        for _ in 0..50_000 {
            let i = st.next_inst();
            if !i.op.is_ctrl() {
                total_body += 1;
                if i.op == OpClass::Load {
                    loads += 1;
                }
            }
        }
        let frac = loads as f64 / total_body as f64;
        // Mix requests load = 0.20 of 0.825 total weight ≈ 0.2424.
        assert!((0.20..0.29).contains(&frac), "load fraction {frac}");
    }

    #[test]
    fn phases_cycle() {
        let over = PhaseOverrides {
            hard_frac: Some(0.9),
            ..PhaseOverrides::default()
        };
        let s = BenchmarkSpec::builder("ph", Suite::SpecFp)
            .phase(1_000, PhaseOverrides::default())
            .phase(1_000, over)
            .build()
            .unwrap();
        let mut st = s.stream();
        assert_eq!(st.phase_index(), 0);
        for _ in 0..1_500 {
            st.next_inst();
        }
        assert_eq!(st.phase_index(), 1);
        for _ in 0..1_000 {
            st.next_inst();
        }
        assert_eq!(st.phase_index(), 0, "phases cycle");
    }

    #[test]
    fn pointer_chase_serializes_loads() {
        let s = BenchmarkSpec::builder("ptr", Suite::Olden)
            .segments(vec![crate::spec::DataSegment {
                bytes: 1024 * 1024,
                weight: 1.0,
                pattern: AccessPattern::PointerChase,
            }])
            .build()
            .unwrap();
        let mut st = s.stream();
        let mut ptr_loads = 0;
        for _ in 0..20_000 {
            let i = st.next_inst();
            if i.op == OpClass::Load {
                // Pointer loads read and write the same pointer register.
                if i.dst.is_some() && i.srcs[0] == i.dst {
                    ptr_loads += 1;
                }
            }
        }
        assert!(ptr_loads > 2_000, "pointer loads: {ptr_loads}");
    }

    #[test]
    fn produced_counts() {
        let mut st = spec().stream();
        for _ in 0..123 {
            st.next_inst();
        }
        assert_eq!(st.produced(), 123);
    }
}
