//! Trace recording and replay.
//!
//! The synthetic generator is deterministic, but regenerating a stream
//! re-runs the whole model per instruction. For repeated sweeps over the
//! same benchmark — or for importing externally produced traces — two
//! complementary mechanisms are provided:
//!
//! * [`SharedTrace`] materializes a prefix of any live
//!   [`InstructionStream`] into an immutable `Arc<[DynInst]>` that many
//!   simulations (across threads) replay concurrently via
//!   [`SharedTrace::replay`] — each replay is a cursor over the shared
//!   storage, so N configurations sweeping one benchmark pay for one
//!   stream generation instead of N. Replays are **strict**: reading
//!   past the recorded end panics instead of silently looping, because
//!   a looped instruction would diverge from the live stream the trace
//!   stands in for.
//! * [`record`] serializes the first `n` instructions of any
//!   [`InstructionStream`] to a writer, and [`TraceReplay`] streams them
//!   back, looping when the simulator asks for more instructions than
//!   were recorded (matching the generator's infinite-stream contract
//!   for standalone trace files). `TraceReplay` is a looping cursor over
//!   the same [`SharedTrace`] storage.
//!
//! The on-disk encoding is a fixed 27-byte little-endian record per
//! instruction (pc, op, packed registers, address, target, flags) with a
//! small header carrying a magic, version, and count.

use std::io::{self, Read, Write};
use std::sync::Arc;

use gals_isa::{ArchReg, DynInst, InstructionStream, OpClass};

const MAGIC: &[u8; 8] = b"GALSTRC1";
const RECORD_BYTES: usize = 27;

fn op_to_byte(op: OpClass) -> u8 {
    OpClass::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn byte_to_op(b: u8) -> Option<OpClass> {
    OpClass::ALL.get(b as usize).copied()
}

fn reg_to_byte(r: Option<ArchReg>) -> u8 {
    r.map(|r| r.packed()).unwrap_or(0xFF)
}

fn byte_to_reg(b: u8) -> Option<ArchReg> {
    if b == 0xFF {
        None
    } else {
        Some(ArchReg::from_packed(b))
    }
}

fn encode(inst: &DynInst, buf: &mut [u8; RECORD_BYTES]) {
    buf[0..8].copy_from_slice(&inst.pc.to_le_bytes());
    buf[8] = op_to_byte(inst.op);
    buf[9] = reg_to_byte(inst.srcs[0]);
    buf[10] = reg_to_byte(inst.srcs[1]);
    buf[11] = reg_to_byte(inst.dst);
    buf[12..20].copy_from_slice(&inst.mem_addr.to_le_bytes());
    buf[20..28.min(RECORD_BYTES)].copy_from_slice(&inst.target.to_le_bytes()[..7]);
    // Pack the taken bit into the top byte of the (48-bit practical)
    // target space: targets are virtual addresses well below 2^55.
    if inst.taken {
        buf[26] |= 0x80;
    }
}

fn decode(buf: &[u8; RECORD_BYTES]) -> io::Result<DynInst> {
    let pc = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    let op = byte_to_op(buf[8])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad opcode byte"))?;
    if buf[9] != 0xFF && buf[9] >= 64
        || buf[10] != 0xFF && buf[10] >= 64
        || buf[11] != 0xFF && buf[11] >= 64
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad register byte",
        ));
    }
    let mem_addr = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let mut target_bytes = [0u8; 8];
    target_bytes[..7].copy_from_slice(&buf[20..27]);
    let taken = target_bytes[6] & 0x80 != 0;
    target_bytes[6] &= 0x7F;
    let target = u64::from_le_bytes(target_bytes);
    Ok(DynInst {
        pc,
        op,
        srcs: [byte_to_reg(buf[9]), byte_to_reg(buf[10])],
        dst: byte_to_reg(buf[11]),
        mem_addr,
        taken,
        target,
    })
}

/// Records the next `n` instructions of `stream` to `writer`.
///
/// The writer can be a `File`, a `Vec<u8>`, or anything `Write`; pass
/// `&mut writer` to keep ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn record<S, W>(stream: &mut S, n: u64, mut writer: W) -> io::Result<()>
where
    S: InstructionStream + ?Sized,
    W: Write,
{
    writer.write_all(MAGIC)?;
    writer.write_all(&1u32.to_le_bytes())?; // version
    writer.write_all(&n.to_le_bytes())?;
    let mut buf = [0u8; RECORD_BYTES];
    for _ in 0..n {
        let inst = stream.next_inst();
        encode(&inst, &mut buf);
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// An immutable, reference-counted instruction trace shared by many
/// concurrent replays.
///
/// Cloning is an `Arc` bump; the instruction storage is allocated once.
/// This is the storage layer behind both the strict [`SharedReplay`]
/// (sweep trace pooling) and the looping [`TraceReplay`] (trace files).
#[derive(Debug, Clone)]
pub struct SharedTrace {
    name: Arc<str>,
    insts: Arc<[DynInst]>,
}

impl SharedTrace {
    /// Materializes the next `n` instructions of a live stream. The
    /// stream's determinism contract makes the result bit-identical to
    /// what any identically constructed stream would produce, so a
    /// replay is a drop-in substitute for the first `n` instructions.
    pub fn capture<S>(stream: &mut S, n: u64) -> Self
    where
        S: InstructionStream + ?Sized,
    {
        let insts: Vec<DynInst> = (0..n).map(|_| stream.next_inst()).collect();
        SharedTrace {
            name: Arc::from(stream.name()),
            insts: insts.into(),
        }
    }

    /// Wraps an already-decoded instruction sequence.
    pub fn from_insts(name: impl Into<String>, insts: Vec<DynInst>) -> Self {
        SharedTrace {
            name: Arc::from(name.into().as_str()),
            insts: insts.into(),
        }
    }

    /// Benchmark name reported by replays (must match the source
    /// stream's name for results to be interchangeable).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The recorded instructions.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// A strict replay cursor from the beginning: bit-identical to the
    /// source stream for [`SharedTrace::len`] instructions, panicking on
    /// a read past the end (see the [module docs](self)).
    pub fn replay(&self) -> SharedReplay {
        SharedReplay {
            trace: self.clone(),
            cursor: 0,
        }
    }
}

/// A strict (non-looping) replay cursor over a [`SharedTrace`].
///
/// Construction is allocation-free (two `Arc` bumps), and so is every
/// [`InstructionStream::next_inst`] call — which is what lets the
/// steady-state-allocation regression test run the simulator over one.
#[derive(Debug, Clone)]
pub struct SharedReplay {
    trace: SharedTrace,
    cursor: usize,
}

impl SharedReplay {
    /// Instructions consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl InstructionStream for SharedReplay {
    fn next_inst(&mut self) -> DynInst {
        assert!(
            self.cursor < self.trace.insts.len(),
            "shared trace underrun: {} recorded instructions for {:?} all consumed \
             (the trace was captured shorter than this run's fetch demand)",
            self.trace.insts.len(),
            self.trace.name(),
        );
        let inst = self.trace.insts[self.cursor];
        self.cursor += 1;
        inst
    }

    fn name(&self) -> &str {
        self.trace.name()
    }
}

/// Replays a recorded trace as an [`InstructionStream`], looping when
/// exhausted.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: SharedTrace,
    cursor: usize,
}

impl TraceReplay {
    /// Loads a trace from a reader.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad magic/version, or corrupt records.
    pub fn load<R: Read>(name: impl Into<String>, mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut word = [0u8; 4];
        reader.read_exact(&mut word)?;
        if u32::from_le_bytes(word) != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported trace version",
            ));
        }
        let mut count_bytes = [0u8; 8];
        reader.read_exact(&mut count_bytes)?;
        let n = u64::from_le_bytes(count_bytes);
        let mut insts = Vec::with_capacity(n.min(1 << 24) as usize);
        let mut buf = [0u8; RECORD_BYTES];
        for _ in 0..n {
            reader.read_exact(&mut buf)?;
            insts.push(decode(&buf)?);
        }
        if insts.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(TraceReplay {
            trace: SharedTrace::from_insts(name.into(), insts),
            cursor: 0,
        })
    }

    /// Number of recorded instructions (the loop period).
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Always false — loading rejects empty traces.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// The shared storage backing this replay (e.g. to hand the same
    /// trace to other threads without re-decoding).
    pub fn shared(&self) -> &SharedTrace {
        &self.trace
    }
}

impl InstructionStream for TraceReplay {
    fn next_inst(&mut self) -> DynInst {
        let inst = self.trace.insts[self.cursor];
        self.cursor = (self.cursor + 1) % self.trace.insts.len();
        inst
    }

    fn name(&self) -> &str {
        self.trace.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn round_trip_preserves_instructions() {
        let spec = suite::by_name("gzip").unwrap();
        let mut original = spec.stream();
        let mut buf = Vec::new();
        record(&mut original, 5_000, &mut buf).unwrap();

        let mut reference = spec.stream();
        let mut replay = TraceReplay::load("gzip-trace", buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 5_000);
        for i in 0..5_000 {
            assert_eq!(replay.next_inst(), reference.next_inst(), "inst {i}");
        }
    }

    #[test]
    fn replay_loops_after_exhaustion() {
        let spec = suite::by_name("power").unwrap();
        let mut buf = Vec::new();
        record(&mut spec.stream(), 100, &mut buf).unwrap();
        let mut replay = TraceReplay::load("loop", buf.as_slice()).unwrap();
        let first: Vec<DynInst> = (0..100).map(|_| replay.next_inst()).collect();
        let second: Vec<DynInst> = (0..100).map(|_| replay.next_inst()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReplay::load("x", &b"NOTATRACE.."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_trace_rejected() {
        let spec = suite::by_name("power").unwrap();
        let mut buf = Vec::new();
        record(&mut spec.stream(), 10, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(TraceReplay::load("x", buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_rejected() {
        let mut buf = Vec::new();
        let spec = suite::by_name("power").unwrap();
        record(&mut spec.stream(), 0, &mut buf).unwrap();
        assert!(TraceReplay::load("x", buf.as_slice()).is_err());
    }

    #[test]
    fn shared_capture_matches_live_stream() {
        let spec = suite::by_name("gzip").unwrap();
        let trace = SharedTrace::capture(&mut spec.stream(), 2_000);
        assert_eq!(trace.len(), 2_000);
        assert_eq!(trace.name(), "gzip");
        let mut live = spec.stream();
        let mut replay = trace.replay();
        assert_eq!(replay.name(), live.name());
        for i in 0..2_000 {
            assert_eq!(replay.next_inst(), live.next_inst(), "inst {i}");
        }
        assert_eq!(replay.consumed(), 2_000);
    }

    #[test]
    fn shared_replays_are_independent_cursors() {
        let spec = suite::by_name("power").unwrap();
        let trace = SharedTrace::capture(&mut spec.stream(), 64);
        let mut a = trace.replay();
        let mut b = trace.replay();
        a.next_inst();
        a.next_inst();
        // b is unaffected by a's progress and matches a fresh stream.
        assert_eq!(b.next_inst(), spec.stream().next_inst());
    }

    #[test]
    #[should_panic(expected = "shared trace underrun")]
    fn shared_replay_refuses_to_loop() {
        let spec = suite::by_name("power").unwrap();
        let trace = SharedTrace::capture(&mut spec.stream(), 10);
        let mut replay = trace.replay();
        for _ in 0..11 {
            replay.next_inst();
        }
    }

    #[test]
    fn trace_replay_exposes_shared_storage() {
        let spec = suite::by_name("power").unwrap();
        let mut buf = Vec::new();
        record(&mut spec.stream(), 50, &mut buf).unwrap();
        let replay = TraceReplay::load("power", buf.as_slice()).unwrap();
        let shared = replay.shared().clone();
        assert_eq!(shared.len(), 50);
        let mut strict = shared.replay();
        let mut live = spec.stream();
        for _ in 0..50 {
            assert_eq!(strict.next_inst(), live.next_inst());
        }
    }

    #[test]
    fn all_op_classes_round_trip() {
        use gals_isa::ArchReg;
        let insts = vec![
            DynInst::alu(
                0x10,
                OpClass::FpSqrt,
                ArchReg::fp(3),
                [Some(ArchReg::fp(1)), None],
            ),
            DynInst::load(0x14, ArchReg::int(5), ArchReg::int(6), 0xDEAD_BEE0),
            DynInst::store(0x18, ArchReg::int(7), ArchReg::int(8), 0xFEED_F00D & !7),
            DynInst::branch(0x1C, ArchReg::int(9), true, 0x40),
            DynInst::jump(0x20, 0x80),
            DynInst::nop(0x24),
        ];
        struct VecStream(Vec<DynInst>, usize);
        impl InstructionStream for VecStream {
            fn next_inst(&mut self) -> DynInst {
                let i = self.1;
                self.1 += 1;
                self.0[i % self.0.len()]
            }
        }
        let mut s = VecStream(insts.clone(), 0);
        let mut buf = Vec::new();
        record(&mut s, insts.len() as u64, &mut buf).unwrap();
        let mut replay = TraceReplay::load("ops", buf.as_slice()).unwrap();
        for expect in &insts {
            assert_eq!(&replay.next_inst(), expect);
        }
    }
}
