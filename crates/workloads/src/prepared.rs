//! Config-independent densification of a [`SharedTrace`].
//!
//! A design-space sweep replays one benchmark recording under hundreds
//! of machine configurations. Every one of those simulations re-derives
//! the same per-instruction facts from the `Arc<[DynInst]>` storage —
//! the fetch-line index (`pc / line_bytes`, a 64-bit division in the
//! fetch hot path), the branch/jump/memory classification, the packed
//! operand registers. [`PreparedTrace`] performs that derivation once,
//! into flat structure-of-arrays columns that a cohort of lockstep
//! simulators indexes directly: the facts for a chunk of C instructions
//! occupy a few contiguous cache lines that stay resident while K
//! simulators advance over the same chunk.
//!
//! The densification is *config-independent* except for one parameter:
//! the I-cache line size used for the fetch-line column. Line size is a
//! [`CoreParams`] field in principle (64 bytes in every preset), so the
//! prepared trace records the value it was built with and consumers
//! must check [`PreparedTrace::line_bytes`] against their machine
//! configuration before using the column (the simulator asserts it).
//!
//! Cloning is two `Arc` bumps; the columns are built once and shared.

use std::sync::Arc;

use gals_isa::{DynInst, OpClass};

use crate::trace::SharedTrace;

/// Per-instruction classification flags (bit positions in the
/// [`PreparedTrace::flags`] column).
pub mod flags {
    /// Conditional branch.
    pub const BRANCH: u8 = 1 << 0;
    /// Branch outcome: taken (meaningful with [`BRANCH`]).
    pub const TAKEN: u8 = 1 << 1;
    /// Unconditional jump/call/return.
    pub const JUMP: u8 = 1 << 2;
    /// Load or store.
    pub const MEM: u8 = 1 << 3;
    /// Store (subset of [`MEM`]).
    pub const STORE: u8 = 1 << 4;
    /// Floating-point operation.
    pub const FP: u8 = 1 << 5;
}

/// Sentinel in the packed source/destination columns: no register.
pub const NO_REG: u8 = 0xFF;

/// The flat fact columns (one `Arc` allocation shared by all clones).
#[derive(Debug)]
struct Facts {
    /// `pc / line_bytes` — the I-cache line index fetch crosses on.
    fetch_line: Box<[u64]>,
    /// Classification bits (see [`flags`]).
    flags: Box<[u8]>,
    /// `OpClass` index into [`OpClass::ALL`] (the latency class).
    op: Box<[u8]>,
    /// `mem_addr >> 3` — the 8-byte line store-to-load forwarding keys
    /// on (zero for non-memory operations).
    mem_line: Box<[u64]>,
    /// Packed source registers ([`NO_REG`] = absent).
    srcs: Box<[[u8; 2]]>,
    /// Packed destination register ([`NO_REG`] = absent).
    dst: Box<[u8]>,
    /// Cumulative rolling hash over every preceding fact column entry:
    /// `digest[i]` summarizes instructions `0..=i`. Cross-cohort
    /// interval memoization keys snapshots on
    /// [`PreparedTrace::prefix_digest`] so a memoized machine state is
    /// only ever spliced onto the exact trace prefix it was simulated
    /// over.
    digest: Box<[u64]>,
}

/// One splitmix64 scramble round — the per-instruction mixing step of
/// the rolling prefix digest.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`SharedTrace`] plus its one-time structure-of-arrays
/// densification (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct PreparedTrace {
    trace: SharedTrace,
    line_bytes: u64,
    facts: Arc<Facts>,
}

impl PreparedTrace {
    /// Densifies `trace` for machines whose I-cache line size is
    /// `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn new(trace: &SharedTrace, line_bytes: u64) -> Self {
        assert!(line_bytes > 0, "line_bytes must be positive");
        let insts = trace.insts();
        let n = insts.len();
        let mut fetch_line = Vec::with_capacity(n);
        let mut fl = Vec::with_capacity(n);
        let mut op = Vec::with_capacity(n);
        let mut mem_line = Vec::with_capacity(n);
        let mut srcs = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        let mut digest = Vec::with_capacity(n);
        let mut rolling = mix(line_bytes ^ 0x9E37_79B9_7F4A_7C15);
        for inst in insts {
            fetch_line.push(inst.pc / line_bytes);
            let mut f = 0u8;
            match inst.op {
                OpClass::Branch => {
                    f |= flags::BRANCH;
                    if inst.taken {
                        f |= flags::TAKEN;
                    }
                }
                OpClass::Jump => f |= flags::JUMP,
                _ => {}
            }
            if inst.op.is_mem() {
                f |= flags::MEM;
                if inst.op == OpClass::Store {
                    f |= flags::STORE;
                }
            }
            if inst.op.is_fp() {
                f |= flags::FP;
            }
            fl.push(f);
            op.push(
                OpClass::ALL
                    .iter()
                    .position(|&o| o == inst.op)
                    .expect("every OpClass is in ALL") as u8,
            );
            mem_line.push(if inst.op.is_mem() {
                inst.mem_addr >> 3
            } else {
                0
            });
            let sp = inst.srcs.map(|s| s.map(|r| r.packed()).unwrap_or(NO_REG));
            let dp = inst.dst.map(|r| r.packed()).unwrap_or(NO_REG);
            srcs.push(sp);
            dst.push(dp);
            let packed_regs = u64::from(sp[0]) | (u64::from(sp[1]) << 8) | (u64::from(dp) << 16);
            let packed_class = u64::from(*fl.last().expect("just pushed"))
                | (u64::from(*op.last().expect("just pushed")) << 8);
            rolling = mix(rolling
                ^ mix(inst.pc)
                ^ mix(*mem_line.last().expect("just pushed"))
                ^ (packed_regs << 32)
                ^ (packed_class << 24));
            digest.push(rolling);
        }
        PreparedTrace {
            trace: trace.clone(),
            line_bytes,
            facts: Arc::new(Facts {
                fetch_line: fetch_line.into(),
                flags: fl.into(),
                op: op.into(),
                mem_line: mem_line.into(),
                srcs: srcs.into(),
                dst: dst.into(),
                digest: digest.into(),
            }),
        }
    }

    /// The I-cache line size the fetch-line column was derived with.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of prepared instructions.
    pub fn len(&self) -> usize {
        self.facts.flags.len()
    }

    /// True when the source recording was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Benchmark name of the source recording.
    pub fn name(&self) -> &str {
        self.trace.name()
    }

    /// The backing recording.
    pub fn trace(&self) -> &SharedTrace {
        &self.trace
    }

    /// The full dynamic instruction at index `i` (reads the shared
    /// recording; the columns carry only the derived facts).
    #[inline]
    pub fn inst(&self, i: usize) -> DynInst {
        self.trace.insts()[i]
    }

    /// The I-cache line index instruction `i` fetches from.
    #[inline]
    pub fn fetch_line(&self, i: usize) -> u64 {
        self.facts.fetch_line[i]
    }

    /// Classification bits for instruction `i` (see [`flags`]).
    #[inline]
    pub fn flags(&self, i: usize) -> u8 {
        self.facts.flags[i]
    }

    /// The [`OpClass::ALL`] index (latency class) of instruction `i`.
    #[inline]
    pub fn op_index(&self, i: usize) -> u8 {
        self.facts.op[i]
    }

    /// The 8-byte data line (`mem_addr >> 3`) of instruction `i`, or 0
    /// for non-memory operations.
    #[inline]
    pub fn mem_line(&self, i: usize) -> u64 {
        self.facts.mem_line[i]
    }

    /// Packed source registers of instruction `i` ([`NO_REG`] = none).
    #[inline]
    pub fn srcs_packed(&self, i: usize) -> [u8; 2] {
        self.facts.srcs[i]
    }

    /// Packed destination register of instruction `i` ([`NO_REG`] =
    /// none).
    #[inline]
    pub fn dst_packed(&self, i: usize) -> u8 {
        self.facts.dst[i]
    }

    /// Rolling digest of the first `n` prepared instructions (0 for
    /// `n == 0`). Two prepared traces agreeing on `prefix_digest(n)`
    /// carry the same first `n` instructions' fact columns (up to hash
    /// collision), so a simulator state reached over one prefix can be
    /// memoized and spliced onto the other.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[inline]
    pub fn prefix_digest(&self, n: usize) -> u64 {
        if n == 0 {
            0
        } else {
            self.facts.digest[n - 1]
        }
    }
}
