//! Streak-damped decision wrapper (the generalized form of the old
//! issue-queue controller's `STICKINESS` guard).

use crate::controller::{Decision, DomainController, IntervalStats};

/// Wraps any [`DomainController`] and only forwards a switch after the
/// same non-current candidate has won `threshold` *consecutive*
/// intervals.
///
/// Rationale (§3.2): a tracking interval is only ~N instructions while a
/// PLL relock spans tens of thousands; without damping, quantization
/// noise in the measured dependence depth would thrash the clock. The
/// streak resets whenever the inner policy prefers the incumbent, a
/// different challenger takes the lead, or the domain is locked
/// (mid-relock decisions must not bank progress toward the next one).
///
/// A `threshold` of 1 degenerates to the inner policy with lock-gating
/// only; the paper's issue-queue controller is `threshold == 3`
/// ([`Hysteresis::PAPER_IQ_STICKINESS`]) around the raw ILP argmax.
#[derive(Debug, Clone)]
pub struct Hysteresis {
    inner: Box<dyn DomainController>,
    threshold: u32,
    /// Leading challenger and its consecutive-win count.
    streak: (usize, u32),
}

impl Hysteresis {
    /// Consecutive intervals a challenger must win before a resize, as
    /// the paper's issue-queue controller fixes it.
    pub const PAPER_IQ_STICKINESS: u32 = 3;

    /// Wraps `inner` with a `threshold`-interval streak requirement
    /// (`threshold >= 1`).
    pub fn new(inner: Box<dyn DomainController>, threshold: u32) -> Self {
        assert!(threshold >= 1, "hysteresis threshold must be positive");
        let streak = (inner.current(), 0);
        Hysteresis {
            inner,
            threshold,
            streak,
        }
    }

    /// The streak threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl DomainController for Hysteresis {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn box_clone(&self) -> Box<dyn DomainController> {
        Box::new(self.clone())
    }

    fn decide(&mut self, stats: &IntervalStats<'_>) -> Decision {
        let current = self.inner.current();
        if stats.locked() {
            self.streak = (current, 0);
            return Decision::Stay;
        }
        let want = match self.inner.decide(stats) {
            Decision::Stay => {
                self.streak = (current, 0);
                return Decision::Stay;
            }
            Decision::Switch(w) => w,
        };
        if self.streak.0 == want {
            self.streak.1 += 1;
        } else {
            self.streak = (want, 1);
        }
        if self.streak.1 >= self.threshold {
            self.inner.set_current(want);
            self.streak = (want, 0);
            Decision::Switch(want)
        } else {
            Decision::Stay
        }
    }

    fn current(&self) -> usize {
        self.inner.current()
    }

    fn set_current(&mut self, idx: usize) {
        self.inner.set_current(idx);
        self.streak = (idx, 0);
    }

    fn candidates(&self) -> usize {
        self.inner.candidates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::argmin::ArgminIqController;

    fn ilp(want: usize, locked: bool) -> IntervalStats<'static> {
        IntervalStats::Ilp {
            scores: [0.0; 4],
            want,
            locked,
        }
    }

    #[test]
    fn switches_only_after_streak() {
        let mut h = Hysteresis::new(Box::new(ArgminIqController::new(0)), 3);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Switch(2));
        assert_eq!(h.current(), 2);
        // Streak consumed: the next win starts a fresh count.
        assert_eq!(h.decide(&ilp(0, false)), Decision::Stay);
    }

    #[test]
    fn challenger_change_resets_streak() {
        let mut h = Hysteresis::new(Box::new(ArgminIqController::new(0)), 3);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(3, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Switch(2));
    }

    #[test]
    fn incumbent_win_resets_streak() {
        let mut h = Hysteresis::new(Box::new(ArgminIqController::new(1)), 2);
        assert_eq!(h.decide(&ilp(3, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(1, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(3, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(3, false)), Decision::Switch(3));
    }

    #[test]
    fn lock_resets_streak() {
        let mut h = Hysteresis::new(Box::new(ArgminIqController::new(0)), 2);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, true)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Stay);
        assert_eq!(h.decide(&ilp(2, false)), Decision::Switch(2));
    }

    #[test]
    fn threshold_one_is_lock_gating_only() {
        let mut h = Hysteresis::new(Box::new(ArgminIqController::new(0)), 1);
        assert_eq!(h.decide(&ilp(3, false)), Decision::Switch(3));
    }
}
