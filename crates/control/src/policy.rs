//! The selectable adaptation-control policies.

use std::fmt;
use std::str::FromStr;

use crate::controller::{Decision, DomainController, IntervalStats};

/// Which control policy drives a phase-adaptive machine's resizing.
///
/// The policy is selected on `MachineConfig` (the core crate threads it
/// through to the [`AdaptationEngine`](crate::AdaptationEngine)) and
/// applies to all four adaptive structures — I-cache, D/L2 pair, and
/// both issue queues. Every policy sees exactly the same interval
/// statistics ([`IntervalStats`](crate::IntervalStats)); only the
/// decision rule differs:
///
/// * [`PaperArgmin`](ControlPolicy::PaperArgmin) — the paper's §3
///   algorithm and the **default**: exact per-configuration cost
///   reconstruction with an argmin jump for the caches, and the §3.2
///   effective-ILP argmax damped by a 3-interval stickiness streak for
///   the issue queues. Matches the pre-refactor hard-wired controllers
///   bit-for-bit on the golden-pinned determinism runs; the one
///   intentional deviation is the argmin tie-break, which now requires
///   a challenger to be *strictly* cheaper than the incumbent instead
///   of beating an epsilon-scaled (×0.999999) incumbent cost, so
///   decisions can differ from the old code only when two
///   configurations' reconstructed costs agree to within 1e-6 relative.
/// * [`Hysteresis`](ControlPolicy::Hysteresis) — the same argmin/argmax
///   preferences, but *every* domain (caches included) must see the same
///   challenger win `threshold` consecutive intervals before a resize.
///   Generalizes the old `IqController::STICKINESS` constant into a
///   tunable, composable damper.
/// * [`PiFeedback`](ControlPolicy::PiFeedback) — a proportional–integral
///   step controller regulating a measured pressure signal toward a
///   setpoint, after the control-loop-feedback GALS literature; moves at
///   most one configuration step per interval.
/// * [`Static`](ControlPolicy::Static) — never reconfigures. The machine
///   keeps its Accounting Caches and B partitions but holds the initial
///   configuration, isolating the adaptation benefit from the MCD
///   substrate cost in ablations.
///
/// To add a policy: implement
/// [`DomainController`](crate::DomainController) for each domain flavor
/// you care about (return `Stay` for the other), add a variant here, and
/// extend the engine's factory — the simulator, sweeps, and `bench`
/// binaries pick it up through this enum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ControlPolicy {
    /// The paper's §3 controllers (default).
    #[default]
    PaperArgmin,
    /// Argmin/argmax preferences damped by a `threshold`-interval streak
    /// requirement on every domain.
    Hysteresis {
        /// Consecutive intervals a challenger must win before a resize.
        threshold: u32,
    },
    /// Proportional–integral single-step feedback control.
    PiFeedback,
    /// No adaptation: hold the initial configuration for the whole run.
    Static,
}

impl ControlPolicy {
    /// Every selectable policy at its default parameters (the set the
    /// comparison sweeps iterate).
    pub const BUILTIN: [ControlPolicy; 4] = [
        ControlPolicy::PaperArgmin,
        ControlPolicy::Hysteresis { threshold: 3 },
        ControlPolicy::PiFeedback,
        ControlPolicy::Static,
    ];

    /// Stable short key for cache files and artifacts (`argmin`,
    /// `hyst3`, `pi`, `static`).
    pub fn key(&self) -> String {
        match self {
            ControlPolicy::PaperArgmin => "argmin".to_string(),
            ControlPolicy::Hysteresis { threshold } => format!("hyst{threshold}"),
            ControlPolicy::PiFeedback => "pi".to_string(),
            ControlPolicy::Static => "static".to_string(),
        }
    }
}

impl fmt::Display for ControlPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlPolicy::PaperArgmin => f.write_str("paper-argmin"),
            ControlPolicy::Hysteresis { threshold } => {
                write!(f, "hysteresis({threshold})")
            }
            ControlPolicy::PiFeedback => f.write_str("pi-feedback"),
            ControlPolicy::Static => f.write_str("static"),
        }
    }
}

/// Error from parsing a [`ControlPolicy`] key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown control policy {:?} (expected argmin, hyst<N>, pi, or static)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for ControlPolicy {
    type Err = ParsePolicyError;

    /// Parses the [`ControlPolicy::key`] form (`argmin`, `hyst<N>`,
    /// `pi`, `static`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "argmin" | "paper" => Ok(ControlPolicy::PaperArgmin),
            "pi" => Ok(ControlPolicy::PiFeedback),
            "static" => Ok(ControlPolicy::Static),
            _ => {
                if let Some(n) = s.strip_prefix("hyst") {
                    let threshold: u32 = n
                        .parse()
                        .ok()
                        .filter(|&t| t >= 1)
                        .ok_or_else(|| ParsePolicyError(s.to_string()))?;
                    Ok(ControlPolicy::Hysteresis { threshold })
                } else {
                    Err(ParsePolicyError(s.to_string()))
                }
            }
        }
    }
}

/// The no-op policy: a controller that always stays put.
#[derive(Debug, Clone)]
pub struct StaticController {
    current: usize,
    candidates: usize,
}

impl StaticController {
    /// A controller pinned at `current` among `candidates` options.
    pub fn new(current: usize, candidates: usize) -> Self {
        assert!(current < candidates);
        StaticController {
            current,
            candidates,
        }
    }
}

impl DomainController for StaticController {
    fn name(&self) -> &'static str {
        "static"
    }

    fn box_clone(&self) -> Box<dyn DomainController> {
        Box::new(self.clone())
    }

    fn decide(&mut self, _stats: &IntervalStats<'_>) -> Decision {
        Decision::Stay
    }

    fn current(&self) -> usize {
        self.current
    }

    fn set_current(&mut self, idx: usize) {
        assert!(idx < self.candidates);
        self.current = idx;
    }

    fn candidates(&self) -> usize {
        self.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for p in ControlPolicy::BUILTIN {
            assert_eq!(p.key().parse::<ControlPolicy>().unwrap(), p);
        }
        assert_eq!(
            "hyst7".parse::<ControlPolicy>().unwrap(),
            ControlPolicy::Hysteresis { threshold: 7 }
        );
    }

    #[test]
    fn bad_keys_rejected() {
        assert!("".parse::<ControlPolicy>().is_err());
        assert!("hyst0".parse::<ControlPolicy>().is_err());
        assert!("hystx".parse::<ControlPolicy>().is_err());
        assert!("argmax".parse::<ControlPolicy>().is_err());
    }

    #[test]
    fn default_is_the_paper() {
        assert_eq!(ControlPolicy::default(), ControlPolicy::PaperArgmin);
    }

    #[test]
    fn static_controller_never_moves() {
        let mut c = StaticController::new(2, 4);
        let l1 = gals_cache::AccountingStats {
            pos_hits: [100; 8],
            misses: 50,
            writebacks: 0,
            accesses: 850,
        };
        let stats = IntervalStats::Cache {
            l1: &l1,
            l2: None,
            miss_ns: 20.0,
            locked: false,
        };
        for _ in 0..10 {
            assert_eq!(c.decide(&stats), Decision::Stay);
        }
        assert_eq!(c.current(), 2);
    }
}
