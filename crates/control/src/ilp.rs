//! The deterministic ILP measurement algorithm of §3.2.
//!
//! At rename, every instruction's destination register receives a
//! timestamp one greater than the largest timestamp among its source
//! registers; the running maximum M after N instructions is the depth of
//! the deepest dependence chain, so N/M estimates the window's inherent
//! ILP. Tracking runs for all four candidate queue sizes simultaneously;
//! the interval for size N ends when *either* the integer or the
//! floating-point instruction count reaches N ("this operation correctly
//! stifles consideration of larger queue sizes that can never be filled
//! for the less dominant instruction type").

use gals_isa::{DynInst, RegClass};
use gals_timing::IqSize;

/// Snapshot recorded when a queue size's tracking interval ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Snapshot {
    /// Max dependence depth M_N, clamped to the tracker's bit width.
    m: u32,
    /// Integer instructions seen when the interval ended.
    n_int: u32,
    /// FP instructions seen when the interval ended.
    n_fp: u32,
}

/// The per-queue-size recommendation produced by one tracking interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpDecision {
    /// Best integer issue-queue size.
    pub iq_int: IqSize,
    /// Best floating-point issue-queue size.
    pub iq_fp: IqSize,
}

/// Hardware-faithful ILP tracker: 64 per-register timestamp counters
/// (4/5/6/6 bits for the four queue sizes — we keep 6-bit values and clamp
/// per size when an interval ends) plus two instruction counters.
#[derive(Debug, Clone)]
pub struct IlpTracker {
    ts: [u8; 64],
    m: u32,
    n_int: u32,
    n_fp: u32,
    recorded: [Option<Snapshot>; 4],
}

impl Default for IlpTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl IlpTracker {
    /// A freshly reset tracker.
    pub fn new() -> Self {
        IlpTracker {
            ts: [0; 64],
            m: 0,
            n_int: 0,
            n_fp: 0,
            recorded: [None; 4],
        }
    }

    /// Resets all counters and timestamps (done after every decision).
    pub fn reset(&mut self) {
        *self = IlpTracker::new();
    }

    /// Feeds one renamed instruction through the timestamp logic.
    pub fn observe(&mut self, inst: &DynInst) {
        // Timestamp propagation: ts[dst] = max(ts[srcs]) + 1, saturating
        // at the 6-bit tracker width.
        if let Some(dst) = inst.dst {
            let src_max = inst
                .sources()
                .map(|r| self.ts[r.packed() as usize] as u32)
                .max()
                .unwrap_or(0);
            let t = (src_max + 1).min(63);
            self.ts[dst.packed() as usize] = t as u8;
            if t > self.m {
                self.m = t;
            }
        }

        // Class counting: FP loads count as FP work (the queue they load
        // for), everything else by execution class.
        let class = match inst.dst {
            Some(d) => d.class(),
            None => inst.op.reg_class(),
        };
        match class {
            RegClass::Int => self.n_int += 1,
            RegClass::Fp => self.n_fp += 1,
        }

        // Close intervals whose dominant-type count just arrived.
        for size in IqSize::ALL {
            let idx = size.index();
            if self.recorded[idx].is_none() {
                let n = size.entries();
                if self.n_int >= n || self.n_fp >= n {
                    let cap = (1u32 << size.ilp_timestamp_bits()) - 1;
                    self.recorded[idx] = Some(Snapshot {
                        m: self.m.clamp(1, cap),
                        n_int: self.n_int,
                        n_fp: self.n_fp,
                    });
                }
            }
        }
    }

    /// True once all four queue sizes have a recorded snapshot.
    pub fn complete(&self) -> bool {
        self.recorded.iter().all(Option::is_some)
    }

    /// Effective-ILP score for queue size `size` and class `class`:
    /// `min(N, n_class) / M_N × f_N`, the §3.2 objective.
    fn score(&self, size: IqSize, class: RegClass, freq_ghz: f64) -> f64 {
        let snap = self.recorded[size.index()].expect("interval not complete");
        let n_class = match class {
            RegClass::Int => snap.n_int,
            RegClass::Fp => snap.n_fp,
        };
        let filled = n_class.min(size.entries());
        filled as f64 / snap.m as f64 * freq_ghz
    }

    /// All four effective-ILP scores for `class`, indexed like
    /// `IqSize::ALL` (the raw signal handed to pluggable policies).
    ///
    /// # Panics
    ///
    /// Panics if called before [`IlpTracker::complete`] returns true.
    pub fn scores(&self, class: RegClass, freqs_ghz: [f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for size in IqSize::ALL {
            out[size.index()] = self.score(size, class, freqs_ghz[size.index()]);
        }
        out
    }

    /// Produces the decision for both queues, given the four candidate
    /// frequencies in GHz, then resets the tracker.
    ///
    /// # Panics
    ///
    /// Panics if called before [`IlpTracker::complete`] returns true.
    pub fn decide(&mut self, freqs_ghz: [f64; 4]) -> IlpDecision {
        let pick = |class: RegClass, t: &IlpTracker| {
            // Starvation rule (§3.2's stifling, applied fully): if the
            // class could not even fill the smallest queue by the time
            // the largest interval closed, its estimates are noise — the
            // queue can never fill, so stay at the fastest size.
            let n64 = match class {
                RegClass::Int => t.recorded[3].expect("interval not complete").n_int,
                RegClass::Fp => t.recorded[3].expect("interval not complete").n_fp,
            };
            if n64 < IqSize::Q16.entries() {
                return IqSize::Q16;
            }
            let mut best = IqSize::Q16;
            let mut best_score = f64::NEG_INFINITY;
            for size in IqSize::ALL {
                let s = t.score(size, class, freqs_ghz[size.index()]);
                if s > best_score {
                    best_score = s;
                    best = size;
                }
            }
            best
        };
        let d = IlpDecision {
            iq_int: pick(RegClass::Int, self),
            iq_fp: pick(RegClass::Fp, self),
        };
        self.reset();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::{ArchReg, OpClass};

    /// Reference implementation: longest register dependence chain with
    /// unit latencies, computed directly on the instruction list.
    fn brute_force_depth(insts: &[DynInst]) -> u32 {
        let mut ts = [0u32; 64];
        let mut m = 0;
        for i in insts {
            if let Some(d) = i.dst {
                let s = i
                    .sources()
                    .map(|r| ts[r.packed() as usize])
                    .max()
                    .unwrap_or(0);
                ts[d.packed() as usize] = s + 1;
                m = m.max(s + 1);
            }
        }
        m
    }

    fn serial_chain(n: usize) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                DynInst::alu(
                    0x1000 + i as u64 * 4,
                    OpClass::IntAlu,
                    ArchReg::int(1),
                    [Some(ArchReg::int(1)), None],
                )
            })
            .collect()
    }

    fn parallel_insts(n: usize, chains: u8) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                let r = ArchReg::int(1 + (i as u8 % chains));
                DynInst::alu(0x1000 + i as u64 * 4, OpClass::IntAlu, r, [Some(r), None])
            })
            .collect()
    }

    #[test]
    fn serial_code_prefers_smallest_queue() {
        let mut t = IlpTracker::new();
        for i in serial_chain(100) {
            t.observe(&i);
        }
        assert!(t.complete());
        // Figure 4-like frequencies.
        let d = t.decide([1.52, 1.05, 1.01, 0.97]);
        assert_eq!(d.iq_int, IqSize::Q16);
    }

    #[test]
    fn wide_parallel_code_prefers_larger_queue() {
        let mut t = IlpTracker::new();
        // 20 chains diluted with depth-1 "flat" work (reads of a never-
        // written register): the measured chain depth M grows much more
        // slowly than N, so a larger window wins despite its slower clock.
        for i in 0..120usize {
            let inst = if i % 2 == 0 {
                DynInst::alu(
                    0x2000 + i as u64 * 4,
                    OpClass::IntAlu,
                    ArchReg::int(25),
                    [Some(ArchReg::int(0)), None],
                )
            } else {
                let r = ArchReg::int(1 + ((i / 2) as u8 % 20));
                DynInst::alu(0x2000 + i as u64 * 4, OpClass::IntAlu, r, [Some(r), None])
            };
            t.observe(&inst);
        }
        let d = t.decide([1.52, 1.05, 1.01, 0.97]);
        assert!(
            d.iq_int > IqSize::Q16,
            "diluted parallel chains should justify a bigger queue, got {:?}",
            d.iq_int
        );
    }

    #[test]
    fn tracker_matches_brute_force_depth() {
        use gals_common::SplitMix64;
        let mut rng = SplitMix64::new(99);
        for trial in 0..50 {
            let n = 64 + (trial % 7) * 10;
            let insts: Vec<DynInst> = (0..n)
                .map(|i| {
                    let dst = ArchReg::int(1 + (rng.next_below(20)) as u8);
                    let s1 = ArchReg::int(1 + (rng.next_below(20)) as u8);
                    let s2 = if rng.chance(0.3) {
                        Some(ArchReg::int(1 + (rng.next_below(20)) as u8))
                    } else {
                        None
                    };
                    DynInst::alu(0x1000 + i as u64 * 4, OpClass::IntAlu, dst, [Some(s1), s2])
                })
                .collect();
            let mut t = IlpTracker::new();
            for i in &insts {
                t.observe(i);
            }
            let expect = brute_force_depth(&insts).clamp(1, 63);
            assert_eq!(t.m.max(1), expect, "trial {trial}");
        }
    }

    #[test]
    fn interval_ends_on_dominant_type() {
        // Pure integer code: the FP count never advances, yet intervals
        // still close because the *int* count reaches N.
        let mut t = IlpTracker::new();
        for i in serial_chain(64) {
            t.observe(&i);
        }
        assert!(t.complete());
    }

    #[test]
    fn fp_starved_queue_scores_low() {
        // Mostly-integer code: the FP queue's effective ILP for large
        // sizes is throttled by min(N, n_fp).
        let mut t = IlpTracker::new();
        for (i, inst) in parallel_insts(128, 20).into_iter().enumerate() {
            t.observe(&inst);
            if i % 16 == 0 {
                // Occasional FP op.
                t.observe(&DynInst::alu(
                    0x9000 + i as u64 * 4,
                    OpClass::FpAdd,
                    ArchReg::fp(1),
                    [Some(ArchReg::fp(1)), None],
                ));
            }
        }
        assert!(t.complete());
        let d = t.decide([1.52, 1.05, 1.01, 0.97]);
        assert_eq!(d.iq_fp, IqSize::Q16, "starved FP queue stays small");
    }

    #[test]
    fn scores_agree_with_decide() {
        let mut t = IlpTracker::new();
        for i in parallel_insts(200, 12) {
            t.observe(&i);
        }
        assert!(t.complete());
        let freqs = [1.52, 1.05, 1.01, 0.97];
        let scores = t.scores(RegClass::Int, freqs);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap();
        let d = t.decide(freqs);
        assert_eq!(d.iq_int.index(), argmax);
    }

    #[test]
    fn decide_resets() {
        let mut t = IlpTracker::new();
        for i in serial_chain(100) {
            t.observe(&i);
        }
        let _ = t.decide([1.52, 1.05, 1.01, 0.97]);
        assert!(!t.complete());
        assert_eq!(t.n_int + t.n_fp, 0);
    }

    #[test]
    #[should_panic(expected = "interval not complete")]
    fn early_decide_panics() {
        let mut t = IlpTracker::new();
        t.observe(&serial_chain(1)[0]);
        let _ = t.decide([1.5, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn timestamps_saturate() {
        let mut t = IlpTracker::new();
        for i in serial_chain(200) {
            t.observe(&i);
        }
        // 200-deep chain clamps at the 6-bit width.
        assert_eq!(t.m, 63);
        // And the 16-entry snapshot clamps at 4 bits.
        assert_eq!(t.recorded[0].unwrap().m, 15);
    }
}
