//! Policy-pluggable adaptation control for the phase-adaptive GALS/MCD
//! machine — the paper's §3 on-line algorithms behind a trait boundary.
//!
//! The paper's contribution is a *specific* control law: per
//! 15K-instruction interval, reconstruct every cache configuration's
//! cost from the Accounting Cache and jump to the argmin (§3.1), and
//! per ILP tracking interval, follow the effective-ILP argmax damped by
//! a 3-interval stickiness streak (§3.2). This crate generalizes the
//! machinery so that law becomes one [`ControlPolicy`] among several:
//!
//! * [`DomainController`] — the policy boundary: one adaptive domain's
//!   interval statistics in ([`IntervalStats`]), a resize [`Decision`]
//!   out.
//! * [`AdaptationEngine`] — owns the four domain controllers, the §3.2
//!   [`IlpTracker`], PLL-relock gating, pending-resize bookkeeping, and
//!   a decision trace. The simulator feeds it statistics and executes
//!   the structural changes it approves.
//! * Policies: [`ControlPolicy::PaperArgmin`] (the default —
//!   golden-pinned against the pre-refactor hard-wired controllers),
//!   [`ControlPolicy::Hysteresis`] (tunable stickiness on every
//!   domain), [`ControlPolicy::PiFeedback`] (single-step
//!   proportional–integral regulation), and [`ControlPolicy::Static`]
//!   (no adaptation — the MCD-substrate baseline).
//!
//! # Example
//!
//! ```
//! use gals_control::{
//!     AdaptationEngine, CacheLatencies, ControlPolicy, EngineSetup,
//! };
//! use gals_timing::{IqSize, TimingModel};
//!
//! let timing = TimingModel::default();
//! let mut engine = AdaptationEngine::new(
//!     ControlPolicy::default(),
//!     &EngineSetup {
//!         timing: &timing,
//!         latencies: CacheLatencies::default(),
//!         interval_insts: 15_000,
//!         mem_ns: 94.0,
//!         l2_service_init_ns: 47.0,
//!         ic_idx: 0,
//!         dl2_idx: 0,
//!         iq_int: IqSize::Q16,
//!         iq_fp: IqSize::Q16,
//!     },
//! );
//! assert_eq!(engine.policy(), ControlPolicy::PaperArgmin);
//! assert!(engine.trace().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod argmin;
mod controller;
mod engine;
mod hysteresis;
mod ilp;
mod pi;
mod policy;
mod service;

pub use argmin::{ArgminCacheController, ArgminIqController, CacheLatencies};
pub use controller::{Decision, DomainController, IntervalStats};
pub use engine::{AdaptationEngine, ControlDomain, DecisionRecord, EngineSetup};
pub use hysteresis::Hysteresis;
pub use ilp::{IlpDecision, IlpTracker};
pub use pi::PiController;
pub use policy::{ControlPolicy, ParsePolicyError, StaticController};
pub use service::ServiceAvg;
