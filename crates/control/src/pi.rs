//! A PI-feedback control policy, after the control-loop literature on
//! GALS chip multiprocessors: instead of reconstructing every candidate
//! configuration's cost and jumping to the argmin, regulate a single
//! measured pressure signal toward a setpoint and move one configuration
//! step at a time when the accumulated control effort crosses a
//! threshold.

use crate::controller::{Decision, DomainController, IntervalStats};

/// What the pressure signal means for this domain.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PiSignal {
    /// Cache domain: pressure is the fraction of interval accesses served
    /// beyond the A partition (B hits + misses), computed for the
    /// *current* candidate's A width. High pressure argues for a wider A
    /// partition; pressure under the setpoint argues for shedding ways to
    /// regain clock frequency.
    Cache {
        /// A-partition ways per candidate index.
        a_ways: [u32; 4],
        /// Physical ways of the accounting array.
        total_ways: u32,
    },
    /// Issue-queue domain: the error is the (signed) distance from the
    /// current size index to the tracker's recommended index, normalized
    /// to the candidate range.
    Ilp,
}

/// A proportional–integral step controller over one adaptive domain.
///
/// Per interval: `u = kp·error + ∫ki·error`; when `u` leaves the
/// `±deadband` the configuration moves one step in `u`'s direction and
/// the integrator resets (anti-windup). Locked intervals freeze the
/// integrator entirely so relock time cannot bank control effort.
#[derive(Debug, Clone)]
pub struct PiController {
    signal: PiSignal,
    current: usize,
    kp: f64,
    ki: f64,
    setpoint: f64,
    deadband: f64,
    integral: f64,
}

impl PiController {
    /// Default proportional gain.
    pub const KP: f64 = 1.0;
    /// Default integral gain.
    pub const KI: f64 = 0.25;
    /// Default cache-pressure setpoint (fraction of accesses allowed
    /// beyond the A partition before upsizing pressure accumulates).
    pub const CACHE_SETPOINT: f64 = 0.05;
    /// Default control-effort deadband.
    pub const DEADBAND: f64 = 0.5;

    /// A PI controller for a cache domain whose candidates have the given
    /// A-partition widths over `total_ways` physical ways.
    pub fn cache(a_ways: [u32; 4], total_ways: u32, current: usize) -> Self {
        PiController {
            signal: PiSignal::Cache { a_ways, total_ways },
            current,
            kp: Self::KP,
            ki: Self::KI,
            setpoint: Self::CACHE_SETPOINT,
            deadband: Self::DEADBAND,
            integral: 0.0,
        }
    }

    /// A PI controller for an issue-queue domain.
    pub fn issue_queue(current: usize) -> Self {
        PiController {
            signal: PiSignal::Ilp,
            current,
            kp: Self::KP,
            ki: Self::KI,
            setpoint: 0.0,
            deadband: Self::DEADBAND,
            integral: 0.0,
        }
    }

    /// The signed error for this interval, or `None` when the interval
    /// carries no usable signal (e.g. an idle cache).
    fn error(&self, stats: &IntervalStats<'_>) -> Option<f64> {
        match (&self.signal, stats) {
            (PiSignal::Cache { a_ways, total_ways }, IntervalStats::Cache { l1, l2, .. }) => {
                let a = a_ways[self.current];
                let mut beyond = l1.hits_in_b(a, *total_ways) + l1.misses;
                let mut total = l1.accesses;
                if let Some(l2) = l2 {
                    beyond += l2.hits_in_b(a, *total_ways) + l2.misses;
                    total += l2.accesses;
                }
                if total == 0 {
                    return None;
                }
                Some(beyond as f64 / total as f64 - self.setpoint)
            }
            (PiSignal::Ilp, IntervalStats::Ilp { want, .. }) => {
                Some((*want as f64 - self.current as f64) / 3.0 - self.setpoint)
            }
            _ => {
                debug_assert!(false, "PI controller fed mismatched stats flavor");
                None
            }
        }
    }
}

impl DomainController for PiController {
    fn name(&self) -> &'static str {
        "pi"
    }

    fn box_clone(&self) -> Box<dyn DomainController> {
        Box::new(self.clone())
    }

    fn decide(&mut self, stats: &IntervalStats<'_>) -> Decision {
        if stats.locked() {
            return Decision::Stay;
        }
        let Some(error) = self.error(stats) else {
            return Decision::Stay;
        };
        self.integral += self.ki * error;
        let u = self.kp * error + self.integral;
        if u > self.deadband && self.current + 1 < 4 {
            self.integral = 0.0;
            Decision::Switch(self.current + 1)
        } else if u < -self.deadband && self.current > 0 {
            self.integral = 0.0;
            Decision::Switch(self.current - 1)
        } else {
            // Clamp the integrator when pinned at a rail so a long
            // saturated phase cannot wind up an instant multi-step swing.
            if (self.current + 1 == 4 && u > self.deadband)
                || (self.current == 0 && u < -self.deadband)
            {
                self.integral = 0.0;
            }
            Decision::Stay
        }
    }

    fn current(&self) -> usize {
        self.current
    }

    fn set_current(&mut self, idx: usize) {
        assert!(idx < 4);
        self.current = idx;
    }

    fn candidates(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_cache::AccountingStats;

    fn stats(pos_hits: [u64; 8], misses: u64) -> AccountingStats {
        AccountingStats {
            pos_hits,
            misses,
            writebacks: 0,
            accesses: pos_hits.iter().sum::<u64>() + misses,
        }
    }

    fn cache_view(l1: &AccountingStats) -> IntervalStats<'_> {
        IntervalStats::Cache {
            l1,
            l2: None,
            miss_ns: 20.0,
            locked: false,
        }
    }

    fn step(ctrl: &mut PiController, stats: &IntervalStats<'_>) -> Decision {
        let d = ctrl.decide(stats);
        if let Decision::Switch(i) = d {
            ctrl.set_current(i);
        }
        d
    }

    #[test]
    fn sustained_pressure_upsizes_one_step_at_a_time() {
        let mut ctrl = PiController::cache([1, 2, 3, 4], 4, 0);
        // 60% of accesses fall beyond a 1-way A partition, 30% beyond a
        // 2-way one: pressure persists through the first upsize.
        let s = stats([400, 300, 300, 0, 0, 0, 0, 0], 0);
        let mut switches = Vec::new();
        for _ in 0..20 {
            if let Decision::Switch(i) = step(&mut ctrl, &cache_view(&s)) {
                switches.push(i);
            }
        }
        assert!(!switches.is_empty(), "pressure should eventually upsize");
        // Monotone single steps: 1, then 2 (after which position-1 hits
        // land in A and the pressure vanishes).
        for w in switches.windows(2) {
            assert_eq!(w[1], w[0] + 1, "PI moves one step at a time");
        }
        assert!(ctrl.current() >= 2);
    }

    #[test]
    fn low_pressure_downsizes() {
        let mut ctrl = PiController::cache([1, 2, 3, 4], 4, 3);
        // Everything hits way 0: A width 1 suffices, clock is being
        // wasted at width 4.
        let s = stats([1_000, 0, 0, 0, 0, 0, 0, 0], 0);
        for _ in 0..160 {
            let _ = step(&mut ctrl, &cache_view(&s));
        }
        assert_eq!(ctrl.current(), 0, "steady low pressure sheds all ways");
    }

    #[test]
    fn locked_intervals_freeze_the_integrator() {
        let mut a = PiController::cache([1, 2, 3, 4], 4, 0);
        let mut b = a.clone();
        let s = stats([500, 500, 0, 0, 0, 0, 0, 0], 0);
        let locked = IntervalStats::Cache {
            l1: &s,
            l2: None,
            miss_ns: 20.0,
            locked: true,
        };
        // `a` sees two locked intervals interleaved; `b` does not. The
        // locked intervals must not advance `a` toward the switch.
        assert_eq!(a.decide(&locked), Decision::Stay);
        assert_eq!(a.decide(&locked), Decision::Stay);
        let (da, db) = (a.decide(&cache_view(&s)), b.decide(&cache_view(&s)));
        assert_eq!(da, db);
    }

    #[test]
    fn iq_error_follows_want() {
        let mut ctrl = PiController::issue_queue(0);
        let want3 = IntervalStats::Ilp {
            scores: [0.0; 4],
            want: 3,
            locked: false,
        };
        let mut first_switch = None;
        for round in 0..10 {
            if let Decision::Switch(i) = step(&mut ctrl, &want3) {
                first_switch.get_or_insert((round, i));
            }
        }
        let (_, idx) = first_switch.expect("persistent want must move the queue");
        assert_eq!(idx, 1, "first move is a single step");
        assert!(ctrl.current() > 1, "persistent want keeps stepping");
    }
}
