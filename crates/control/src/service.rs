//! Miss-service-time estimation shared by the cache policies.

/// Running average with exponential decay, used to estimate miss service
/// costs for the cache controllers.
#[derive(Debug, Clone)]
pub struct ServiceAvg {
    value_ns: f64,
}

impl ServiceAvg {
    /// Starts the average at `initial_ns`.
    pub fn new(initial_ns: f64) -> Self {
        ServiceAvg {
            value_ns: initial_ns,
        }
    }

    /// Folds in one observed service time.
    pub fn update(&mut self, sample_ns: f64) {
        // 1/16 decay: cheap in hardware (shift), responsive to phases.
        self.value_ns += (sample_ns - self.value_ns) / 16.0;
    }

    /// The current estimate in nanoseconds.
    pub fn get(&self) -> f64 {
        self.value_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_average_converges() {
        let mut avg = ServiceAvg::new(10.0);
        for _ in 0..200 {
            avg.update(90.0);
        }
        assert!((avg.get() - 90.0).abs() < 1.0);
    }
}
