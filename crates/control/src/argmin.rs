//! The paper's §3 argmin controllers, behind the [`DomainController`]
//! trait.

use gals_cache::{CostPoint, CostTable};
use gals_timing::{Dl2Config, ICacheConfig, TimingModel, Variant};

use crate::controller::{Decision, DomainController, IntervalStats};

/// The cache-latency constants (Table 5) the cost tables are built from.
///
/// This mirrors the relevant slice of the core crate's `CoreParams` so
/// the control subsystem does not depend on the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLatencies {
    /// L1 A-partition latency in cycles (I and D).
    pub l1_a_cycles: u64,
    /// L1 B-partition latency per configuration index (Table 5:
    /// 2/8, 2/5, 2/2, 2/–).
    pub l1_b_cycles: [Option<u64>; 4],
    /// L2 A-partition latency in cycles.
    pub l2_a_cycles: u64,
    /// L2 B-partition latency per configuration index (12/43, 12/27,
    /// 12/12, 12/–).
    pub l2_b_cycles: [Option<u64>; 4],
}

impl Default for CacheLatencies {
    fn default() -> Self {
        CacheLatencies {
            l1_a_cycles: 2,
            l1_b_cycles: [Some(8), Some(5), Some(2), None],
            l2_a_cycles: 12,
            l2_b_cycles: [Some(43), Some(27), Some(12), None],
        }
    }
}

/// Interval controller for one adaptive cache (the I-cache) or cache pair
/// (L1-D + L2), implementing §3.1: at the end of each 15K-instruction
/// interval, reconstruct every configuration's total access cost from the
/// Accounting Cache statistics and pick the argmin.
#[derive(Debug, Clone)]
pub struct ArgminCacheController {
    l1_table: CostTable,
    /// Joint L2 table for the D/L2 pair (None for the I-cache controller,
    /// whose misses are costed via the measured L2 service average).
    l2_table: Option<CostTable>,
    current: usize,
}

impl ArgminCacheController {
    /// Builds the D/L2 pair controller: four joint configurations whose
    /// clock follows Figure 2 and whose B latencies follow Table 5.
    pub fn for_dl2_pair(lat: &CacheLatencies, timing: &TimingModel, current: usize) -> Self {
        let mut l1_points = Vec::with_capacity(4);
        let mut l2_points = Vec::with_capacity(4);
        for (idx, cfg) in Dl2Config::ALL.iter().enumerate() {
            let f = timing.dl2_frequency(*cfg, Variant::Adaptive);
            let cycle_ns = 1e9 / f.as_hz() as f64;
            l1_points.push(CostPoint {
                a_ways: cfg.ways(),
                a_cycles: lat.l1_a_cycles,
                b_cycles: lat.l1_b_cycles[idx],
                cycle_ns,
            });
            l2_points.push(CostPoint {
                a_ways: cfg.ways(),
                a_cycles: lat.l2_a_cycles,
                b_cycles: lat.l2_b_cycles[idx],
                cycle_ns,
            });
        }
        ArgminCacheController {
            l1_table: CostTable::new(l1_points, 8),
            l2_table: Some(CostTable::new(l2_points, 8)),
            current,
        }
    }

    /// Builds the I-cache controller: four configurations whose clock
    /// follows Figure 3 (adaptive curve).
    pub fn for_icache(lat: &CacheLatencies, timing: &TimingModel, current: usize) -> Self {
        let points = ICacheConfig::ALL
            .iter()
            .enumerate()
            .map(|(idx, cfg)| {
                let f = timing.icache_frequency(*cfg);
                CostPoint {
                    a_ways: cfg.ways(),
                    a_cycles: lat.l1_a_cycles,
                    b_cycles: lat.l1_b_cycles[idx],
                    cycle_ns: 1e9 / f.as_hz() as f64,
                }
            })
            .collect();
        ArgminCacheController {
            l1_table: CostTable::new(points, 4),
            l2_table: None,
            current,
        }
    }

    /// Reconstructed total access cost (ns) of candidate `idx` for the
    /// interval.
    fn cost_ns(&self, idx: usize, stats: &IntervalStats<'_>) -> f64 {
        let IntervalStats::Cache {
            l1, l2, miss_ns, ..
        } = stats
        else {
            unreachable!("guarded by decide");
        };
        match self.l2_table.as_ref() {
            // Pair: L1 hits cost cycles; every L1 miss is an L2 access
            // already counted in l2_stats; L2 misses go to memory.
            Some(l2_table) => {
                self.l1_table.cost_ns(idx, l1, 0.0)
                    + l2_table.cost_ns(idx, l2.expect("pair needs L2 stats"), *miss_ns)
            }
            // Single cache: misses costed at the measured next-level
            // service time.
            None => self.l1_table.cost_ns(idx, l1, *miss_ns),
        }
    }
}

impl DomainController for ArgminCacheController {
    fn name(&self) -> &'static str {
        "argmin"
    }

    fn box_clone(&self) -> Box<dyn DomainController> {
        Box::new(self.clone())
    }

    fn decide(&mut self, stats: &IntervalStats<'_>) -> Decision {
        if !matches!(stats, IntervalStats::Cache { .. }) {
            debug_assert!(false, "cache controller fed non-cache stats");
            return Decision::Stay;
        }
        if stats.locked() {
            return Decision::Stay;
        }
        // Exact tie-break toward the current configuration: a challenger
        // must be *strictly cheaper* than the incumbent (and than every
        // earlier challenger) to win, so exact ties never relock the PLL
        // and near-ties are decided by the actual costs — not by an
        // epsilon scale factor that could flip a genuine argmin.
        let mut best = self.current;
        let mut best_cost = self.cost_ns(self.current, stats);
        for idx in 0..self.l1_table.points().len() {
            if idx == self.current {
                continue;
            }
            let cost = self.cost_ns(idx, stats);
            if cost < best_cost {
                best_cost = cost;
                best = idx;
            }
        }
        if best != self.current {
            Decision::Switch(best)
        } else {
            Decision::Stay
        }
    }

    fn current(&self) -> usize {
        self.current
    }

    fn set_current(&mut self, idx: usize) {
        assert!(idx < self.l1_table.points().len());
        self.current = idx;
    }

    fn candidates(&self) -> usize {
        self.l1_table.points().len()
    }
}

/// The raw §3.2 issue-queue preference: follow the ILP tracker's
/// recommendation immediately. Undamped — the engine composes this with
/// a [`Hysteresis`](crate::Hysteresis) wrapper (the paper's stickiness
/// guard) before letting it near a PLL.
#[derive(Debug, Clone)]
pub struct ArgminIqController {
    current: usize,
}

impl ArgminIqController {
    /// Starts at queue-size index `current` (into `IqSize::ALL`).
    pub fn new(current: usize) -> Self {
        ArgminIqController { current }
    }
}

impl DomainController for ArgminIqController {
    fn name(&self) -> &'static str {
        "argmin-ilp"
    }

    fn box_clone(&self) -> Box<dyn DomainController> {
        Box::new(self.clone())
    }

    fn decide(&mut self, stats: &IntervalStats<'_>) -> Decision {
        let IntervalStats::Ilp { want, .. } = stats else {
            debug_assert!(false, "issue-queue controller fed non-ILP stats");
            return Decision::Stay;
        };
        if *want != self.current {
            Decision::Switch(*want)
        } else {
            Decision::Stay
        }
    }

    fn current(&self) -> usize {
        self.current
    }

    fn set_current(&mut self, idx: usize) {
        assert!(idx < 4);
        self.current = idx;
    }

    fn candidates(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_cache::AccountingStats;

    fn stats(pos_hits: [u64; 8], misses: u64) -> AccountingStats {
        AccountingStats {
            pos_hits,
            misses,
            writebacks: 0,
            accesses: pos_hits.iter().sum::<u64>() + misses,
        }
    }

    fn cache_stats<'a>(
        l1: &'a AccountingStats,
        l2: Option<&'a AccountingStats>,
        miss_ns: f64,
    ) -> IntervalStats<'a> {
        IntervalStats::Cache {
            l1,
            l2,
            miss_ns,
            locked: false,
        }
    }

    #[test]
    fn dl2_controller_upsizes_for_deep_reuse() {
        let lat = CacheLatencies::default();
        let timing = TimingModel::default();
        let mut ctrl = ArgminCacheController::for_dl2_pair(&lat, &timing, 0);
        // Loads hit MRU positions 1-3 in L1: a wider A partition avoids
        // the B-partition latency entirely.
        let l1 = stats([1_000, 8_000, 8_000, 8_000, 0, 0, 0, 0], 100);
        let l2 = stats([80, 10, 5, 5, 0, 0, 0, 0], 20);
        let d = ctrl.decide(&cache_stats(&l1, Some(&l2), 94.0));
        let Decision::Switch(idx) = d else {
            panic!("expected upsizing, got {d:?}");
        };
        assert!(idx >= 2, "expected upsizing, got {idx}");
    }

    #[test]
    fn dl2_controller_stays_small_for_shallow_reuse() {
        let lat = CacheLatencies::default();
        let timing = TimingModel::default();
        let mut ctrl = ArgminCacheController::for_dl2_pair(&lat, &timing, 0);
        let l1 = stats([50_000, 100, 0, 0, 0, 0, 0, 0], 200);
        let l2 = stats([250, 20, 0, 0, 0, 0, 0, 0], 30);
        assert_eq!(
            ctrl.decide(&cache_stats(&l1, Some(&l2), 94.0)),
            Decision::Stay
        );
        assert_eq!(ctrl.current(), 0);
    }

    #[test]
    fn icache_controller_downsizes_back() {
        let lat = CacheLatencies::default();
        let timing = TimingModel::default();
        let mut ctrl = ArgminCacheController::for_icache(&lat, &timing, 3);
        // Everything hits MRU position 0: the direct-mapped config wins
        // on clock alone.
        let s = stats([100_000, 10, 0, 0, 0, 0, 0, 0], 50);
        let d = ctrl.decide(&cache_stats(&s, None, 20.0));
        assert_eq!(d, Decision::Switch(0));
        // The decision is a preference; the engine confirms it.
        assert_eq!(ctrl.current(), 3);
        ctrl.set_current(0);
        assert_eq!(ctrl.current(), 0);
    }

    #[test]
    fn locked_interval_is_a_hold() {
        let lat = CacheLatencies::default();
        let timing = TimingModel::default();
        let mut ctrl = ArgminCacheController::for_icache(&lat, &timing, 3);
        let s = stats([100_000, 10, 0, 0, 0, 0, 0, 0], 50);
        let d = ctrl.decide(&IntervalStats::Cache {
            l1: &s,
            l2: None,
            miss_ns: 20.0,
            locked: true,
        });
        assert_eq!(d, Decision::Stay);
    }

    #[test]
    fn exact_tie_keeps_current() {
        // Two configurations with identical reconstructed cost: the
        // incumbent must win (no pointless PLL relock), and a strictly
        // cheaper challenger must win even by a hair.
        let lat = CacheLatencies::default();
        let timing = TimingModel::default();
        let mut ctrl = ArgminCacheController::for_icache(&lat, &timing, 1);
        // No accesses at all: every configuration costs exactly 0.
        let s = stats([0; 8], 0);
        assert_eq!(ctrl.decide(&cache_stats(&s, None, 20.0)), Decision::Stay);
        assert_eq!(ctrl.current(), 1);
    }

    #[test]
    fn raw_iq_follows_want() {
        let mut ctrl = ArgminIqController::new(0);
        let ilp = |want| IntervalStats::Ilp {
            scores: [0.0; 4],
            want,
            locked: false,
        };
        assert_eq!(ctrl.decide(&ilp(0)), Decision::Stay);
        assert_eq!(ctrl.decide(&ilp(2)), Decision::Switch(2));
        ctrl.set_current(2);
        assert_eq!(ctrl.decide(&ilp(2)), Decision::Stay);
    }
}
