//! The policy boundary: interval statistics in, a resize decision out.

use gals_cache::AccountingStats;

/// End-of-interval statistics handed to a [`DomainController`].
///
/// Two interval flavors exist, matching the paper's two control loops:
/// cache domains are evaluated from their Accounting Cache counters
/// (§3.1), issue queues from the rename-time ILP timestamp tracker
/// (§3.2). Both are evaluated once per adaptation interval (15K
/// committed instructions, sized "comparable to the PLL lock-down
/// time"); the issue-queue flavor aggregates the many ~N-instruction
/// tracking intervals that completed inside the adaptation interval,
/// because deciding per tracking interval would thrash the PLLs on
/// measurement noise. A policy that only understands one flavor should
/// return [`Decision::Stay`] for the other.
#[derive(Debug)]
pub enum IntervalStats<'a> {
    /// Accounting-cache interval counters for an adaptive cache (or the
    /// jointly-resized D/L2 pair).
    Cache {
        /// First-level (I-cache or L1-D) interval counters.
        l1: &'a AccountingStats,
        /// Joint second-level counters (D/L2 pair controller only).
        l2: Option<&'a AccountingStats>,
        /// Average service time (ns) of a miss out of the last modeled
        /// level: measured L2 service for the I-cache, memory for the
        /// D/L2 pair.
        miss_ns: f64,
        /// The domain's PLL is mid-relock or a resize is still pending;
        /// the engine will not act this interval, and stateful policies
        /// should suspend streaks/integrators rather than accumulate
        /// stale pressure.
        locked: bool,
    },
    /// One adaptation interval's aggregated ILP measurements for an
    /// issue queue.
    Ilp {
        /// Mean effective-ILP score (`min(N, n_class)/M_N × f_N`, higher
        /// is better) per candidate queue size over the interval's
        /// completed tracking intervals, indexed like `IqSize::ALL`.
        scores: [f64; 4],
        /// The interval's recommendation: the candidate that won the
        /// majority of the completed tracking intervals' raw §3.2
        /// decisions (argmax over scores with the starvation rule,
        /// per tracking interval), ties kept by the incumbent.
        want: usize,
        /// See [`IntervalStats::Cache::locked`].
        locked: bool,
    },
}

impl IntervalStats<'_> {
    /// Whether the domain is locked (PLL relock or pending resize).
    pub fn locked(&self) -> bool {
        match self {
            IntervalStats::Cache { locked, .. } | IntervalStats::Ilp { locked, .. } => *locked,
        }
    }
}

/// A controller's verdict for the next interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current configuration.
    Stay,
    /// Reconfigure to the candidate with this index (into the domain's
    /// upsizing-ordered configuration list).
    Switch(usize),
}

/// One adaptive domain's control policy: at the end of each interval the
/// engine feeds it that interval's statistics and it answers with a
/// [`Decision`].
///
/// Contract:
///
/// * `decide` expresses a *preference* — it must not assume the switch
///   happens. The engine (or a wrapper such as
///   [`Hysteresis`](crate::Hysteresis)) confirms an accepted decision
///   via [`DomainController::set_current`].
/// * Implementations must be deterministic: the same statistics sequence
///   must produce the same decision sequence (sweep results are cached
///   on that assumption).
/// * When `stats.locked()` is true the engine will discard a `Switch`,
///   so policies should return [`Decision::Stay`] and treat the interval
///   as a hold (reset streaks, freeze integrators) rather than let state
///   accumulate toward a move they cannot make.
pub trait DomainController: std::fmt::Debug + Send + Sync {
    /// Short policy name, used in decision traces and artifacts.
    fn name(&self) -> &'static str;

    /// Clones the controller behind the trait object. Simulator snapshots
    /// (cohort interval memoization) clone whole machines, so every policy
    /// must be deep-copyable mid-run with its streaks/integrators intact.
    fn box_clone(&self) -> Box<dyn DomainController>;

    /// End-of-interval decision.
    fn decide(&mut self, stats: &IntervalStats<'_>) -> Decision;

    /// The currently targeted configuration index (the last confirmed
    /// decision; the physically effective configuration may lag while a
    /// PLL relock is in flight).
    fn current(&self) -> usize;

    /// Confirms a configuration (decision accepted by the engine, or an
    /// externally forced reset).
    fn set_current(&mut self, idx: usize);

    /// Number of candidate configurations.
    fn candidates(&self) -> usize;
}

impl Clone for Box<dyn DomainController> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}
