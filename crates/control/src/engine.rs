//! The adaptation engine: owns the per-domain controllers, the ILP
//! tracker, PLL-relock gating, pending-resize state, and the decision
//! trace. The simulator feeds it statistics and executes the structural
//! changes it approves.

use gals_cache::AccountingStats;
use gals_common::Femtos;
use gals_isa::{DynInst, RegClass};
use gals_timing::{Dl2Config, ICacheConfig, IqSize, TimingModel};

use crate::argmin::{ArgminCacheController, ArgminIqController, CacheLatencies};
use crate::controller::{Decision, DomainController, IntervalStats};
use crate::hysteresis::Hysteresis;
use crate::ilp::{IlpDecision, IlpTracker};
use crate::pi::PiController;
use crate::policy::{ControlPolicy, StaticController};
use crate::service::ServiceAvg;

/// One adaptive structure, for decision-trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlDomain {
    /// Front-end I-cache / branch-predictor pair.
    ICache,
    /// Jointly resized L1-D / L2 pair.
    Dl2,
    /// Integer issue queue.
    IqInt,
    /// Floating-point issue queue.
    IqFp,
}

/// One accepted reconfiguration decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Which structure the decision targets.
    pub domain: ControlDomain,
    /// Committed-instruction count when the decision was taken.
    pub at_committed: u64,
    /// Configuration index before the decision.
    pub from: usize,
    /// Configuration index the policy switched to.
    pub to: usize,
}

/// Everything the engine needs from the machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineSetup<'a> {
    /// Circuit timing model (per-configuration frequencies).
    pub timing: &'a TimingModel,
    /// Table 5 cache latencies for the cost tables.
    pub latencies: CacheLatencies,
    /// §3.1 adaptation interval in committed instructions.
    pub interval_insts: u64,
    /// Memory miss service time (ns) for the D/L2 pair costing.
    pub mem_ns: f64,
    /// Initial estimate for the measured L2 service average (ns).
    pub l2_service_init_ns: f64,
    /// Initial I-cache configuration index.
    pub ic_idx: usize,
    /// Initial D/L2 configuration index.
    pub dl2_idx: usize,
    /// Initial integer issue-queue size.
    pub iq_int: IqSize,
    /// Initial floating-point issue-queue size.
    pub iq_fp: IqSize,
}

/// A boxed policy instance driving one adaptive domain.
type BoxedController = Box<dyn DomainController>;

#[derive(Debug, Clone, Copy)]
struct PendingCache {
    idx: usize,
    at: Femtos,
}

#[derive(Debug, Clone, Copy)]
struct PendingIq {
    size: IqSize,
    at: Femtos,
}

/// The policy-pluggable adaptation subsystem of a phase-adaptive
/// machine.
///
/// Division of labor with the simulator: the engine decides *whether*
/// to reconfigure (policy evaluation, relock gating, hysteresis,
/// pending-resize bookkeeping); the simulator executes *how* (PLL
/// frequency changes, A-partition moves, predictor swaps, capacity
/// clamps) because those touch pipeline state the engine must not own.
#[derive(Debug, Clone)]
pub struct AdaptationEngine {
    policy: ControlPolicy,
    ic: BoxedController,
    dl2: BoxedController,
    iq: [BoxedController; 2],
    tracker: IlpTracker,
    iq_freqs_ghz: [f64; 4],
    mem_ns: f64,
    l2_service: ServiceAvg,
    pending_ic: Option<PendingCache>,
    pending_dl2: Option<PendingCache>,
    pending_iq: [Option<PendingIq>; 2],
    interval_insts: u64,
    interval_committed: u64,
    /// Per-queue, per-size sums of the §3.2 effective-ILP scores over
    /// the tracking intervals completed this adaptation interval.
    ilp_score_sum: [[f64; 4]; 2],
    /// Per-queue vote counts: how many completed tracking intervals
    /// recommended each candidate size this adaptation interval.
    ilp_votes: [[u32; 4]; 2],
    /// Completed tracking intervals this adaptation interval.
    ilp_samples: u32,
    trace: Vec<DecisionRecord>,
}

impl AdaptationEngine {
    /// Builds the engine for `policy` from the machine setup.
    pub fn new(policy: ControlPolicy, setup: &EngineSetup<'_>) -> Self {
        // Figure 4 frequencies, derived from the size enum itself so the
        // table can never desync from `IqSize::ALL`.
        let iq_freqs_ghz = IqSize::ALL.map(|s| setup.timing.iq_frequency(s).as_ghz());
        debug_assert!(IqSize::ALL.iter().enumerate().all(|(i, s)| s.index() == i));

        let argmin_ic =
            || ArgminCacheController::for_icache(&setup.latencies, setup.timing, setup.ic_idx);
        let argmin_dl2 =
            || ArgminCacheController::for_dl2_pair(&setup.latencies, setup.timing, setup.dl2_idx);
        let raw_iq = |size: IqSize| ArgminIqController::new(size.index());

        let (ic, dl2, iq): (BoxedController, BoxedController, [BoxedController; 2]) = match policy {
            // The paper: caches act on the argmin immediately; the issue
            // queues are damped by the fixed 3-interval stickiness.
            ControlPolicy::PaperArgmin => (
                Box::new(argmin_ic()),
                Box::new(argmin_dl2()),
                [
                    Box::new(Hysteresis::new(
                        Box::new(raw_iq(setup.iq_int)),
                        Hysteresis::PAPER_IQ_STICKINESS,
                    )),
                    Box::new(Hysteresis::new(
                        Box::new(raw_iq(setup.iq_fp)),
                        Hysteresis::PAPER_IQ_STICKINESS,
                    )),
                ],
            ),
            // Uniform tunable stickiness on every domain.
            ControlPolicy::Hysteresis { threshold } => (
                Box::new(Hysteresis::new(Box::new(argmin_ic()), threshold)),
                Box::new(Hysteresis::new(Box::new(argmin_dl2()), threshold)),
                [
                    Box::new(Hysteresis::new(Box::new(raw_iq(setup.iq_int)), threshold)),
                    Box::new(Hysteresis::new(Box::new(raw_iq(setup.iq_fp)), threshold)),
                ],
            ),
            ControlPolicy::PiFeedback => (
                Box::new(PiController::cache(
                    ICacheConfig::ALL.map(|c| c.ways()),
                    4,
                    setup.ic_idx,
                )),
                Box::new(PiController::cache(
                    Dl2Config::ALL.map(|c| c.ways()),
                    8,
                    setup.dl2_idx,
                )),
                [
                    Box::new(PiController::issue_queue(setup.iq_int.index())),
                    Box::new(PiController::issue_queue(setup.iq_fp.index())),
                ],
            ),
            ControlPolicy::Static => (
                Box::new(StaticController::new(setup.ic_idx, 4)),
                Box::new(StaticController::new(setup.dl2_idx, 4)),
                [
                    Box::new(StaticController::new(setup.iq_int.index(), 4)),
                    Box::new(StaticController::new(setup.iq_fp.index(), 4)),
                ],
            ),
        };

        AdaptationEngine {
            policy,
            ic,
            dl2,
            iq,
            tracker: IlpTracker::new(),
            iq_freqs_ghz,
            mem_ns: setup.mem_ns,
            l2_service: ServiceAvg::new(setup.l2_service_init_ns),
            pending_ic: None,
            pending_dl2: None,
            pending_iq: [None, None],
            interval_insts: setup.interval_insts,
            interval_committed: 0,
            ilp_score_sum: [[0.0; 4]; 2],
            ilp_votes: [[0; 4]; 2],
            ilp_samples: 0,
            trace: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> ControlPolicy {
        self.policy
    }

    /// Accepted reconfiguration decisions, in decision order.
    pub fn trace(&self) -> &[DecisionRecord] {
        &self.trace
    }

    /// Feeds one measured L2 service time (an I-cache miss's round trip)
    /// into the running average the I-cache policy costs misses at.
    pub fn note_l2_service(&mut self, ns: f64) {
        self.l2_service.update(ns);
    }

    /// Counts one committed instruction; returns true when the §3.1
    /// interval just ended (the caller then runs the cache interval
    /// evaluations and resets the count implicitly).
    pub fn commit_tick(&mut self) -> bool {
        self.interval_committed += 1;
        if self.interval_committed >= self.interval_insts {
            self.interval_committed = 0;
            true
        } else {
            false
        }
    }

    /// Confirms a `Switch` on the domain's controller and records it.
    /// `from` is the configuration current *before* the decision was
    /// evaluated — it must be captured before `decide`, because a
    /// wrapper like [`Hysteresis`] confirms its inner controller as part
    /// of deciding.
    fn accept(
        &mut self,
        domain: ControlDomain,
        from: usize,
        decision: Decision,
        committed: u64,
    ) -> Option<usize> {
        let Decision::Switch(to) = decision else {
            return None;
        };
        let ctrl = match domain {
            ControlDomain::ICache => &mut self.ic,
            ControlDomain::Dl2 => &mut self.dl2,
            ControlDomain::IqInt => &mut self.iq[0],
            ControlDomain::IqFp => &mut self.iq[1],
        };
        ctrl.set_current(to);
        self.trace.push(DecisionRecord {
            domain,
            at_committed: committed,
            from,
            to,
        });
        Some(to)
    }

    /// End-of-interval I-cache evaluation. `pll_locking` is the front-end
    /// domain's relock status; a pending resize gates the same way.
    /// Returns the accepted new configuration index, if any.
    pub fn icache_interval(
        &mut self,
        l1: &AccountingStats,
        pll_locking: bool,
        committed: u64,
    ) -> Option<usize> {
        let locked = pll_locking || self.pending_ic.is_some();
        let miss_ns = self.l2_service.get();
        let from = self.ic.current();
        let d = self.ic.decide(&IntervalStats::Cache {
            l1,
            l2: None,
            miss_ns,
            locked,
        });
        if locked {
            return None;
        }
        self.accept(ControlDomain::ICache, from, d, committed)
    }

    /// End-of-interval D/L2 pair evaluation (see
    /// [`AdaptationEngine::icache_interval`]).
    pub fn dl2_interval(
        &mut self,
        l1: &AccountingStats,
        l2: &AccountingStats,
        pll_locking: bool,
        committed: u64,
    ) -> Option<usize> {
        let locked = pll_locking || self.pending_dl2.is_some();
        let miss_ns = self.mem_ns;
        let from = self.dl2.current();
        let d = self.dl2.decide(&IntervalStats::Cache {
            l1,
            l2: Some(l2),
            miss_ns,
            locked,
        });
        if locked {
            return None;
        }
        self.accept(ControlDomain::Dl2, from, d, committed)
    }

    /// Observes one renamed instruction (§3.2) and, each time an ILP
    /// tracking interval completes, banks its measurement — the per-size
    /// effective-ILP scores plus one vote for the raw recommendation —
    /// toward the next end-of-interval issue-queue evaluation.
    ///
    /// No decision is taken here. A tracking interval is only ~N renamed
    /// instructions (tens of nanoseconds of machine time) while a PLL
    /// relock spans 10–20 µs; deciding per tracking interval let the
    /// recommendation's interval-to-interval noise thrash the execution
    /// domains at the maximum rate relock gating allowed, which is what
    /// made `Static` beat `PaperArgmin` in the original
    /// `BENCH_policy.json`. Aggregated decisions happen in
    /// [`AdaptationEngine::iq_interval`] at the §3.1 boundary — the
    /// cadence the paper sizes to be "comparable to the PLL lock-down
    /// time".
    pub fn observe_rename(&mut self, inst: &DynInst) {
        self.tracker.observe(inst);
        if !self.tracker.complete() {
            return;
        }
        let scores_int = self.tracker.scores(RegClass::Int, self.iq_freqs_ghz);
        let scores_fp = self.tracker.scores(RegClass::Fp, self.iq_freqs_ghz);
        let raw = self.tracker.decide(self.iq_freqs_ghz);
        for i in 0..4 {
            self.ilp_score_sum[0][i] += scores_int[i];
            self.ilp_score_sum[1][i] += scores_fp[i];
        }
        self.ilp_votes[0][raw.iq_int.index()] += 1;
        self.ilp_votes[1][raw.iq_fp.index()] += 1;
        self.ilp_samples += 1;
    }

    /// End-of-interval issue-queue evaluation: the §3.2 control loop at
    /// §3.1 cadence. Each queue's `want` is the majority recommendation
    /// over the adaptation interval's completed tracking intervals (ties
    /// kept by the incumbent so an evenly split interval never relocks a
    /// PLL, then broken toward the smaller, faster size); the policy also
    /// sees the per-size mean scores. Returns the new target sizes of
    /// both queues when either queue's policy accepts a change.
    /// `locking_int` / `locking_fp` are the domains' PLL relock states.
    pub fn iq_interval(
        &mut self,
        locking_int: bool,
        locking_fp: bool,
        committed: u64,
    ) -> Option<IlpDecision> {
        if self.ilp_samples == 0 {
            return None;
        }
        let samples = f64::from(self.ilp_samples);
        let locked = [
            locking_int || self.pending_iq[0].is_some(),
            locking_fp || self.pending_iq[1].is_some(),
        ];
        let mut changed = false;
        for (qi, &locked_q) in locked.iter().enumerate() {
            let current = self.iq[qi].current();
            let votes = self.ilp_votes[qi];
            let top = *votes.iter().max().expect("four candidates");
            let want = if votes[current] == top {
                current
            } else {
                votes.iter().position(|&v| v == top).expect("max exists")
            };
            let mut scores = [0.0; 4];
            for (s, sum) in scores.iter_mut().zip(self.ilp_score_sum[qi]) {
                *s = sum / samples;
            }
            let view = IntervalStats::Ilp {
                scores,
                want,
                locked: locked_q,
            };
            let d = self.iq[qi].decide(&view);
            if locked_q {
                continue;
            }
            let domain = if qi == 0 {
                ControlDomain::IqInt
            } else {
                ControlDomain::IqFp
            };
            changed |= self.accept(domain, current, d, committed).is_some();
        }
        self.ilp_score_sum = [[0.0; 4]; 2];
        self.ilp_votes = [[0; 4]; 2];
        self.ilp_samples = 0;
        changed.then(|| IlpDecision {
            iq_int: IqSize::from_index(self.iq[0].current()),
            iq_fp: IqSize::from_index(self.iq[1].current()),
        })
    }

    // ------------------------------------------------------------------
    // Pending-resize bookkeeping (upsizes wait for the PLL relock; the
    // simulator applies the structural change when the due time passes).
    // ------------------------------------------------------------------

    /// Registers an I-cache upsize to apply at `at`.
    pub fn set_pending_ic(&mut self, idx: usize, at: Femtos) {
        debug_assert!(self.pending_ic.is_none());
        self.pending_ic = Some(PendingCache { idx, at });
    }

    /// Takes the pending I-cache resize if its apply time has passed.
    pub fn take_due_ic(&mut self, now: Femtos) -> Option<usize> {
        match self.pending_ic {
            Some(p) if now >= p.at => {
                self.pending_ic = None;
                Some(p.idx)
            }
            _ => None,
        }
    }

    /// Apply time of the pending I-cache resize, if one is in flight.
    pub fn pending_ic_at(&self) -> Option<Femtos> {
        self.pending_ic.map(|p| p.at)
    }

    /// Registers a D/L2 upsize to apply at `at`.
    pub fn set_pending_dl2(&mut self, idx: usize, at: Femtos) {
        debug_assert!(self.pending_dl2.is_none());
        self.pending_dl2 = Some(PendingCache { idx, at });
    }

    /// Takes the pending D/L2 resize if its apply time has passed.
    pub fn take_due_dl2(&mut self, now: Femtos) -> Option<usize> {
        match self.pending_dl2 {
            Some(p) if now >= p.at => {
                self.pending_dl2 = None;
                Some(p.idx)
            }
            _ => None,
        }
    }

    /// Apply time of the pending D/L2 resize, if one is in flight.
    pub fn pending_dl2_at(&self) -> Option<Femtos> {
        self.pending_dl2.map(|p| p.at)
    }

    /// Registers an issue-queue upsize (`qi`: 0 = int, 1 = fp).
    pub fn set_pending_iq(&mut self, qi: usize, size: IqSize, at: Femtos) {
        debug_assert!(self.pending_iq[qi].is_none());
        self.pending_iq[qi] = Some(PendingIq { size, at });
    }

    /// Takes the pending resize of queue `qi` if its apply time passed.
    pub fn take_due_iq(&mut self, qi: usize, now: Femtos) -> Option<IqSize> {
        match self.pending_iq[qi] {
            Some(p) if now >= p.at => {
                self.pending_iq[qi] = None;
                Some(p.size)
            }
            _ => None,
        }
    }

    /// Apply time of queue `qi`'s pending resize, if one is in flight.
    pub fn pending_iq_at(&self, qi: usize) -> Option<Femtos> {
        self.pending_iq[qi].map(|p| p.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::{ArchReg, OpClass};

    fn setup(timing: &TimingModel) -> EngineSetup<'_> {
        EngineSetup {
            timing,
            latencies: CacheLatencies::default(),
            interval_insts: 100,
            mem_ns: 94.0,
            l2_service_init_ns: 47.0,
            ic_idx: 0,
            dl2_idx: 0,
            iq_int: IqSize::Q16,
            iq_fp: IqSize::Q16,
        }
    }

    fn stats(pos_hits: [u64; 8], misses: u64) -> AccountingStats {
        AccountingStats {
            pos_hits,
            misses,
            writebacks: 0,
            accesses: pos_hits.iter().sum::<u64>() + misses,
        }
    }

    #[test]
    fn commit_tick_fires_every_interval() {
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::PaperArgmin, &setup(&timing));
        let fired: u32 = (0..250).map(|_| u32::from(en.commit_tick())).sum();
        assert_eq!(fired, 2);
    }

    #[test]
    fn dl2_upsize_traced_and_gated_while_pending() {
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::PaperArgmin, &setup(&timing));
        let l1 = stats([1_000, 8_000, 8_000, 8_000, 0, 0, 0, 0], 100);
        let l2 = stats([80, 10, 5, 5, 0, 0, 0, 0], 20);
        let idx = en
            .dl2_interval(&l1, &l2, false, 15_000)
            .expect("deep reuse upsizes");
        assert!(idx >= 2);
        assert_eq!(en.trace().len(), 1);
        assert_eq!(en.trace()[0].domain, ControlDomain::Dl2);
        assert_eq!(en.trace()[0].from, 0);
        assert_eq!(en.trace()[0].to, idx);

        // While the resize is pending, further intervals are gated.
        en.set_pending_dl2(idx, Femtos::from_ns(100));
        assert_eq!(en.dl2_interval(&l1, &l2, false, 30_000), None);
        assert_eq!(en.take_due_dl2(Femtos::from_ns(50)), None);
        assert_eq!(en.take_due_dl2(Femtos::from_ns(100)), Some(idx));
        assert_eq!(en.pending_dl2_at(), None);
    }

    #[test]
    fn static_policy_never_reconfigures() {
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::Static, &setup(&timing));
        let l1 = stats([1_000, 8_000, 8_000, 8_000, 0, 0, 0, 0], 100);
        let l2 = stats([80, 10, 5, 5, 0, 0, 0, 0], 20);
        assert_eq!(en.dl2_interval(&l1, &l2, false, 15_000), None);
        assert_eq!(en.icache_interval(&l1, false, 15_000), None);
        assert!(en.trace().is_empty());
    }

    /// Streams `n` instructions of the ilp.rs diluted-parallel-chain
    /// upsizing pattern through the tracker.
    fn feed_parallel(en: &mut AdaptationEngine, n: u64, base: u64) {
        for i in 0..n {
            let inst = if i % 2 == 0 {
                DynInst::alu(
                    0x1000 + (base + i) * 4,
                    OpClass::IntAlu,
                    ArchReg::int(25),
                    [Some(ArchReg::int(0)), None],
                )
            } else {
                let r = ArchReg::int(1 + ((i / 2) % 20) as u8);
                DynInst::alu(0x1000 + (base + i) * 4, OpClass::IntAlu, r, [Some(r), None])
            };
            en.observe_rename(&inst);
        }
    }

    #[test]
    fn iq_stickiness_defers_then_switches() {
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::PaperArgmin, &setup(&timing));
        // Each adaptation interval aggregates many tracking intervals of
        // the parallel pattern; the hysteresis streak defers the switch
        // until the challenger wins three consecutive *interval*
        // evaluations.
        feed_parallel(&mut en, 600, 0);
        assert_eq!(en.iq_interval(false, false, 15_000), None);
        feed_parallel(&mut en, 600, 600);
        assert_eq!(en.iq_interval(false, false, 30_000), None);
        feed_parallel(&mut en, 600, 1_200);
        let d = en
            .iq_interval(false, false, 45_000)
            .expect("parallel code upsizes the int queue");
        assert!(d.iq_int > IqSize::Q16);
        assert_eq!(d.iq_fp, IqSize::Q16);
        assert_eq!(en.trace().len(), 1);
        assert_eq!(en.trace()[0].domain, ControlDomain::IqInt);
        // `from` must be the pre-decision configuration even though the
        // hysteresis wrapper confirms its inner controller mid-decide.
        assert_eq!(en.trace()[0].from, IqSize::Q16.index());
        assert_eq!(en.trace()[0].to, d.iq_int.index());
    }

    #[test]
    fn locked_iq_domain_blocks_changes() {
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::PaperArgmin, &setup(&timing));
        for round in 0..6u64 {
            feed_parallel(&mut en, 600, round * 600);
            assert_eq!(en.iq_interval(true, true, round * 15_000), None);
        }
        assert!(en.trace().is_empty());
    }

    #[test]
    fn empty_interval_is_a_hold() {
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::PaperArgmin, &setup(&timing));
        // No completed tracking interval: nothing to evaluate, no trace.
        assert_eq!(en.iq_interval(false, false, 15_000), None);
        assert!(en.trace().is_empty());
    }

    #[test]
    fn minority_bursts_do_not_flip_the_queue() {
        // The regression behind the BENCH_policy.json anomaly: short
        // bursts of high measured ILP inside an interval that is
        // majority-serial must not relock the PLL, no matter how many
        // intervals stream by.
        let timing = TimingModel::default();
        let mut en = AdaptationEngine::new(ControlPolicy::PaperArgmin, &setup(&timing));
        for round in 0..10u64 {
            // ~1/4 of the interval's tracking intervals see the parallel
            // pattern (a Q64 vote), the rest are serial (Q16 votes).
            feed_parallel(&mut en, 150, round * 800);
            for i in 0..650u64 {
                let inst = DynInst::alu(
                    0x9000 + (round * 800 + i) * 4,
                    OpClass::IntAlu,
                    ArchReg::int(1),
                    [Some(ArchReg::int(1)), None],
                );
                en.observe_rename(&inst);
            }
            assert_eq!(en.iq_interval(false, false, round * 15_000), None);
        }
        assert!(en.trace().is_empty());
    }
}
