//! Property-based tests for the hysteresis damper: the guard between
//! noisy interval preferences and a tens-of-thousands-of-cycles PLL
//! relock must provably (a) never fire early and (b) always settle when
//! the input stops being noisy.

use gals_control::{ArgminIqController, Decision, DomainController, Hysteresis, IntervalStats};
use proptest::prelude::*;

fn ilp(want: usize, locked: bool) -> IntervalStats<'static> {
    IntervalStats::Ilp {
        scores: [0.0; 4],
        want,
        locked,
    }
}

fn hysteresis(start: usize, threshold: u32) -> Hysteresis {
    Hysteresis::new(Box::new(ArgminIqController::new(start)), threshold)
}

proptest! {
    /// A resize never fires before the same challenger has won
    /// `threshold` *consecutive, unlocked* intervals: whenever a Switch
    /// is emitted, the trailing `threshold` inputs were exactly
    /// (that challenger, unlocked) — and the challenger differed from
    /// the configuration current at every one of those intervals.
    #[test]
    fn never_resizes_before_streak_threshold(
        threshold in 1u32..6,
        start in 0usize..4,
        events in prop::collection::vec((0usize..4, 0u8..5), 0..120),
    ) {
        let mut h = hysteresis(start, threshold);
        // ~20% of intervals arrive while the domain is locked.
        let inputs: Vec<(usize, bool)> =
            events.iter().map(|&(w, l)| (w, l == 0)).collect();
        let mut currents: Vec<usize> = Vec::new();
        for (i, &(want, locked)) in inputs.iter().enumerate() {
            currents.push(h.current());
            match h.decide(&ilp(want, locked)) {
                Decision::Stay => {}
                Decision::Switch(to) => {
                    prop_assert_eq!(to, want);
                    prop_assert!(!locked);
                    let t = threshold as usize;
                    prop_assert!(i + 1 >= t, "switch after {} inputs, threshold {}", i + 1, t);
                    for j in (i + 1 - t)..=i {
                        prop_assert_eq!(inputs[j], (to, false),
                            "input {j} was not an unlocked win for {to}");
                        prop_assert!(currents[j] != to,
                            "input {j} was not a challenger interval");
                    }
                    prop_assert_eq!(h.current(), to);
                }
            }
        }
    }

    /// On a constant-winner input the damper always settles: no switch
    /// for the first `threshold - 1` intervals, the switch exactly at
    /// interval `threshold`, and silence (no thrashing) ever after.
    #[test]
    fn settles_on_constant_winner(
        threshold in 1u32..6,
        start in 0usize..4,
        winner in 0usize..4,
        extra in 0usize..40,
    ) {
        if winner == start {
            // A "winner" equal to the start is the incumbent: nothing
            // may ever fire.
            let mut h = hysteresis(start, threshold);
            for _ in 0..(threshold as usize + extra) {
                prop_assert_eq!(h.decide(&ilp(winner, false)), Decision::Stay);
            }
            prop_assert_eq!(h.current(), start);
        } else {
            let mut h = hysteresis(start, threshold);
            for round in 1..threshold {
                prop_assert_eq!(h.decide(&ilp(winner, false)), Decision::Stay,
                    "premature switch at round {round}");
            }
            prop_assert_eq!(h.decide(&ilp(winner, false)), Decision::Switch(winner));
            prop_assert_eq!(h.current(), winner);
            for _ in 0..extra {
                prop_assert_eq!(h.decide(&ilp(winner, false)), Decision::Stay);
            }
            prop_assert_eq!(h.current(), winner);
        }
    }

    /// Locked intervals are pure holds: interleaving any number of
    /// locked intervals anywhere in a winning streak only delays the
    /// switch, and the streak restarts from zero after each one.
    #[test]
    fn locked_intervals_restart_the_streak(
        threshold in 2u32..6,
        prefix in 1u32..5,
    ) {
        let mut h = hysteresis(0, threshold);
        // `prefix` wins (fewer than threshold), then a locked interval.
        let prefix = prefix.min(threshold - 1);
        for _ in 0..prefix {
            prop_assert_eq!(h.decide(&ilp(3, false)), Decision::Stay);
        }
        prop_assert_eq!(h.decide(&ilp(3, true)), Decision::Stay);
        // The full threshold is required again from scratch.
        for _ in 1..threshold {
            prop_assert_eq!(h.decide(&ilp(3, false)), Decision::Stay);
        }
        prop_assert_eq!(h.decide(&ilp(3, false)), Decision::Switch(3));
    }
}
