//! Append-only write-ahead log for the result cache.
//!
//! Every [`ResultCache::put`](crate::ResultCache::put) appends one
//! checksummed, length-prefixed record here *before* the result is
//! acknowledged as durable, so a crash — a `kill -9`, a power cut, a
//! full disk — loses at most the records the configured sync policy had
//! not yet flushed, never the whole store (the failure mode of the old
//! whole-file rewrite, where a crash mid-`fs::write` corrupted the file
//! and the next open silently treated it as empty).
//!
//! # Record framing
//!
//! ```text
//! [len: u32 LE]   payload length (bytes, >= 16)
//! [crc: u32 LE]   CRC-32 (IEEE) over the payload
//! payload:
//!   [seq:   u64 LE]   strictly monotone sequence number
//!   [value: u64 LE]   the f64 runtime, as raw bits (exact round trip)
//!   [key:   UTF-8]    the cache-key string (len - 16 bytes)
//! ```
//!
//! Recovery ([`scan_wal`]) replays records in order and stops **at the
//! first frame that fails any check** — torn header, implausible
//! length, torn body, checksum mismatch, non-monotone sequence, or
//! non-UTF-8 key. Everything before the damage is recovered;
//! everything after it is untrusted by construction (appends are
//! strictly sequential, so bytes past a torn frame can only be noise
//! from the interrupted write). The writer then truncates the log to
//! the valid prefix so later appends never land after garbage.
//!
//! # Sync policy
//!
//! `GALS_MCD_WAL_SYNC` selects how eagerly appends reach the platter:
//! `always` (fsync per record — every acknowledged put survives any
//! crash), `batch:N` (fsync every N records — bounded loss window,
//! default `batch:64`), or `none` (no explicit sync — the OS flushes
//! when it pleases). [`Wal::synced_seq`] is the durability watermark:
//! records at or below it are acknowledged-durable and must survive,
//! which is exactly what the kill-9 harness asserts.
//!
//! # Fault injection
//!
//! The writer talks to storage through the [`WalSink`] seam.
//! Production uses [`FileSink`]; the crash suite wraps it in
//! [`FaultySink`], which injects a torn write, a rejected write, or a
//! sync failure at a deterministic seeded byte offset — so "the disk
//! died mid-append" is an ordinary, reproducible unit test instead of
//! a hope.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

use gals_common::SplitMix64;

/// Bytes of `len` + `crc` prefix before each record payload.
pub const RECORD_HEADER_BYTES: usize = 8;

/// Fixed payload bytes (`seq` + value bits) before the key.
pub const RECORD_FIXED_BYTES: usize = 16;

/// Upper bound on one record's payload. Cache keys are short
/// (`bench|mode|config|window`); anything near this bound is corruption
/// masquerading as a length, and rejecting it keeps a damaged length
/// field from swallowing the rest of the log as one "record".
pub const MAX_RECORD_PAYLOAD: usize = 1 << 16;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// table, built at compile time — the workspace has no registry access,
/// so the checksum is hand-rolled like the JSON codec.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends one framed record to `out` (see the module docs for the
/// layout).
pub fn encode_record(seq: u64, key: &str, value: f64, out: &mut Vec<u8>) {
    let payload_len = RECORD_FIXED_BYTES + key.len();
    assert!(
        payload_len <= MAX_RECORD_PAYLOAD,
        "cache key too long for a WAL record: {} bytes",
        key.len()
    );
    let start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&value.to_bits().to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    let crc = crc32(&out[start + RECORD_HEADER_BYTES..]);
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// The cache-key string.
    pub key: String,
    /// The stored runtime (bit-exact).
    pub value: f64,
}

/// Outcome of scanning a WAL image: the records of the longest valid
/// prefix, and where (and why) the scan stopped if the image does not
/// end cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Records replayed, in append order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix (the truncation point).
    pub valid_len: u64,
    /// Byte offset of the first torn/corrupt frame (`== valid_len`);
    /// `None` when the image ends cleanly on a record boundary.
    pub corrupt_at: Option<u64>,
    /// Which check the first bad frame failed.
    pub corrupt_reason: Option<&'static str>,
}

/// Replays a WAL image, stopping cleanly at the first damaged frame
/// (see the module docs for the checks). Pure over bytes, so the crash
/// suite can fuzz it without touching a filesystem.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_seq = 0u64;
    let stop = |records: Vec<WalRecord>, pos: usize, reason: &'static str| WalScan {
        records,
        valid_len: pos as u64,
        corrupt_at: Some(pos as u64),
        corrupt_reason: Some(reason),
    };
    loop {
        if pos == bytes.len() {
            return WalScan {
                records,
                valid_len: pos as u64,
                corrupt_at: None,
                corrupt_reason: None,
            };
        }
        if bytes.len() - pos < RECORD_HEADER_BYTES {
            return stop(records, pos, "torn record header");
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if !(RECORD_FIXED_BYTES..=MAX_RECORD_PAYLOAD).contains(&len) {
            return stop(records, pos, "implausible record length");
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - RECORD_HEADER_BYTES < len {
            return stop(records, pos, "torn record body");
        }
        let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + RECORD_HEADER_BYTES + len];
        if crc32(payload) != crc {
            return stop(records, pos, "checksum mismatch");
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        if seq <= last_seq {
            return stop(records, pos, "non-monotone sequence number");
        }
        let bits = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let Ok(key) = std::str::from_utf8(&payload[RECORD_FIXED_BYTES..]) else {
            return stop(records, pos, "non-utf8 key");
        };
        last_seq = seq;
        records.push(WalRecord {
            seq,
            key: key.to_string(),
            value: f64::from_bits(bits),
        });
        pos += RECORD_HEADER_BYTES + len;
    }
}

/// How eagerly appended records are fsynced (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append: each acknowledged put survives any
    /// crash, at one device round trip per record.
    Always,
    /// fsync after every N appends (and on checkpoint/shutdown): loss
    /// window bounded at N-1 acknowledged-but-unsynced records.
    Batch(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    /// Fastest, weakest — nothing is acknowledged-durable.
    None,
}

impl SyncPolicy {
    /// The default policy (`batch:64`): bounded loss without paying a
    /// device sync per sweep result.
    pub const DEFAULT: SyncPolicy = SyncPolicy::Batch(64);

    /// Parses `always` / `batch:N` (N ≥ 1) / `none`.
    pub fn parse(raw: &str) -> Option<SyncPolicy> {
        match raw.trim() {
            "always" => Some(SyncPolicy::Always),
            "none" => Some(SyncPolicy::None),
            other => {
                let n: u64 = other.strip_prefix("batch:")?.parse().ok()?;
                (n >= 1).then_some(SyncPolicy::Batch(n))
            }
        }
    }

    /// Reads `GALS_MCD_WAL_SYNC`, falling back to [`SyncPolicy::DEFAULT`]
    /// with one loud stderr warning on a malformed value (the
    /// [`gals_common::env::parse_env_or`] discipline: a misspelled
    /// override must never be indistinguishable from a working one).
    pub fn from_env() -> SyncPolicy {
        match gals_common::env::var("GALS_MCD_WAL_SYNC") {
            None => SyncPolicy::DEFAULT,
            Some(raw) => SyncPolicy::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "warning: ignoring malformed GALS_MCD_WAL_SYNC={raw:?}: expected \
                     always | batch:N | none; using default {}",
                    SyncPolicy::DEFAULT
                );
                SyncPolicy::DEFAULT
            }),
        }
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::Batch(n) => write!(f, "batch:{n}"),
            SyncPolicy::None => write!(f, "none"),
        }
    }
}

/// The storage seam the WAL writer appends through. Production is
/// [`FileSink`]; the crash suite substitutes [`FaultySink`].
pub trait WalSink: Send + fmt::Debug {
    /// Appends `buf` in full, or fails having written some prefix of it
    /// (exactly like an interrupted `write(2)` — the caller must treat
    /// the on-disk tail as torn).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes everything appended so far to durable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Empties the sink (the WAL after a durable checkpoint).
    fn truncate_all(&mut self) -> io::Result<()>;
}

/// A real WAL file.
#[derive(Debug)]
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Opens (creating if missing) the WAL at `path`, truncates it to
    /// `valid_len` — recovery's valid prefix, so appends never land
    /// after a torn tail — and positions at the end.
    pub fn open_at(path: &Path, valid_len: u64) -> io::Result<FileSink> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut sink = FileSink { file };
        sink.file.seek(SeekFrom::Start(valid_len))?;
        Ok(sink)
    }
}

impl WalSink for FileSink {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()
    }
}

/// An in-memory sink whose "disk" is only what was synced: the
/// strictest crash model (an OS may keep unsynced pages, but a store
/// must not depend on it). Unit tests and the framing proptest use it
/// to simulate power loss without a filesystem.
#[derive(Debug, Default)]
pub struct MemSink {
    /// Everything appended.
    pub bytes: Vec<u8>,
    /// Prefix length guaranteed durable (advanced by `sync`).
    pub synced_len: usize,
}

impl MemSink {
    /// The bytes a crash right now would leave behind: the synced
    /// prefix only.
    pub fn crash_image(&self) -> &[u8] {
        &self.bytes[..self.synced_len]
    }
}

impl WalSink for MemSink {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.synced_len = self.bytes.len();
        Ok(())
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.bytes.clear();
        self.synced_len = 0;
        Ok(())
    }
}

/// What a [`FaultySink`] does when the write cursor crosses its
/// trigger offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The append writes a prefix of the buffer, then fails — a torn
    /// write, the classic crash-mid-append shape.
    Torn,
    /// The append fails without writing anything (`EIO` up front).
    Reject,
    /// Appends succeed but the next `sync` fails — the fsync-gate
    /// shape: acknowledgement must not advance.
    SyncFail,
}

/// Deterministic fault plan: trip [`FaultKind`] once the cumulative
/// appended byte count reaches `fail_at_byte`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cumulative appended-byte offset at which the fault fires.
    pub fail_at_byte: u64,
    /// The failure shape.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A plan whose trigger offset is drawn deterministically from
    /// `seed` in `[lo, hi]` — reproducible "random" crash points.
    pub fn seeded(seed: u64, lo: u64, hi: u64, kind: FaultKind) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        FaultPlan {
            fail_at_byte: rng.next_range(lo, hi),
            kind,
        }
    }
}

/// A [`WalSink`] that forwards to an inner sink until its [`FaultPlan`]
/// trips, then fails every subsequent operation (the device is gone;
/// the interesting question is what recovery makes of the bytes that
/// landed).
#[derive(Debug)]
pub struct FaultySink<S: WalSink> {
    inner: S,
    plan: FaultPlan,
    written: u64,
    tripped: bool,
}

impl<S: WalSink> FaultySink<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultySink<S> {
        FaultySink {
            inner,
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// Whether the fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The wrapped sink (to inspect the post-crash image).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

fn faulted() -> io::Error {
    io::Error::other("injected storage fault")
}

impl<S: WalSink> WalSink for FaultySink<S> {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.tripped {
            return Err(faulted());
        }
        let end = self.written + buf.len() as u64;
        match self.plan.kind {
            FaultKind::Torn | FaultKind::Reject if end > self.plan.fail_at_byte => {
                self.tripped = true;
                if self.plan.kind == FaultKind::Torn {
                    // Land the prefix up to the fault offset, like an
                    // interrupted write(2).
                    let keep = (self.plan.fail_at_byte.saturating_sub(self.written)) as usize;
                    let _ = self.inner.append(&buf[..keep]);
                    let _ = self.inner.sync();
                }
                Err(faulted())
            }
            _ => {
                self.written = end;
                self.inner.append(buf)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(faulted());
        }
        if self.plan.kind == FaultKind::SyncFail && self.written >= self.plan.fail_at_byte {
            self.tripped = true;
            return Err(faulted());
        }
        self.inner.sync()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(faulted());
        }
        self.inner.truncate_all()
    }
}

/// The WAL writer: assigns sequence numbers, frames records, applies
/// the sync policy, and tracks the durability watermark.
///
/// Not internally synchronized — the cache wraps it in a `Mutex` (one
/// append per measured sweep result; nowhere near the per-instruction
/// hot path).
#[derive(Debug)]
pub struct Wal {
    sink: Box<dyn WalSink>,
    policy: SyncPolicy,
    /// Last sequence number assigned.
    last_seq: u64,
    /// Highest sequence number known durable (≤ `last_seq`).
    synced_seq: u64,
    /// Appends since the last successful sync.
    pending: u64,
    /// Reusable frame buffer.
    buf: Vec<u8>,
    /// Set after a failed append/sync: the on-disk tail is untrusted,
    /// so further appends are skipped (they would land after garbage
    /// and be unreadable anyway) until a checkpoint truncates the log.
    broken: bool,
}

impl Wal {
    /// A writer over `sink`, continuing the sequence after `last_seq`
    /// (recovery's highest replayed sequence; everything already in the
    /// sink is considered durable).
    pub fn new(sink: Box<dyn WalSink>, policy: SyncPolicy, last_seq: u64) -> Wal {
        Wal {
            sink,
            policy,
            last_seq,
            synced_seq: last_seq,
            pending: 0,
            buf: Vec::with_capacity(128),
            broken: false,
        }
    }

    /// Appends one record and applies the sync policy. Returns the
    /// record's sequence number; whether that sequence is *durable* is
    /// a separate question — compare against [`Wal::synced_seq`].
    ///
    /// Storage errors do not panic (one bad disk must not take down a
    /// serving process whose in-memory cache is intact): the WAL goes
    /// into degraded mode with one loud stderr warning, and durability
    /// resumes at the next successful checkpoint.
    pub fn append(&mut self, key: &str, value: f64) -> u64 {
        self.last_seq += 1;
        let seq = self.last_seq;
        if self.broken {
            return seq;
        }
        self.buf.clear();
        encode_record(seq, key, value, &mut self.buf);
        if let Err(e) = self.sink.append(&self.buf) {
            self.degrade("append", &e);
            return seq;
        }
        self.pending += 1;
        match self.policy {
            SyncPolicy::Always => self.sync_now(),
            SyncPolicy::Batch(n) if self.pending >= n => self.sync_now(),
            _ => {}
        }
        seq
    }

    fn sync_now(&mut self) {
        match self.sink.sync() {
            Ok(()) => {
                self.synced_seq = self.last_seq;
                self.pending = 0;
            }
            Err(e) => self.degrade("sync", &e),
        }
    }

    fn degrade(&mut self, op: &str, e: &io::Error) {
        eprintln!(
            "warning: result-cache WAL {op} failed ({e}); durability degraded — \
             results stay in memory and will persist at the next successful checkpoint"
        );
        self.broken = true;
    }

    /// Forces a sync (graceful shutdown, checkpoint preamble).
    ///
    /// # Errors
    ///
    /// Propagates the sink's sync failure (the watermark stays put).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other("WAL degraded since an earlier fault"));
        }
        if self.pending > 0 {
            self.sink.sync()?;
            self.synced_seq = self.last_seq;
            self.pending = 0;
        }
        Ok(())
    }

    /// Empties the log after a checkpoint made every record ≤
    /// `last_seq` durable elsewhere; heals degraded mode (the torn tail
    /// is gone with the rest of the file).
    ///
    /// # Errors
    ///
    /// Propagates truncation failures (degraded mode persists then).
    pub fn truncate_after_checkpoint(&mut self) -> io::Result<()> {
        self.sink.truncate_all()?;
        self.synced_seq = self.last_seq;
        self.pending = 0;
        self.broken = false;
        Ok(())
    }

    /// Last assigned sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The durability watermark: sequences ≤ this survived every crash
    /// that can still happen.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Whether a storage fault has the WAL in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.broken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_all(records: &[(u64, &str, f64)]) -> Vec<u8> {
        let mut out = Vec::new();
        for &(seq, key, value) in records {
            encode_record(seq, key, value, &mut out);
        }
        out
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_scan() {
        let recs = [(1, "a|sync|k|100", 1.5), (2, "b|prog|k2|200", -0.25)];
        let bytes = encode_all(&recs);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.corrupt_at, None);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].key, "a|sync|k|100");
        assert_eq!(scan.records[1].value, -0.25);
    }

    #[test]
    fn truncation_stops_cleanly_at_every_cut() {
        let recs = [(1, "k1", 1.0), (2, "k2", 2.0), (3, "k3", 3.0)];
        let bytes = encode_all(&recs);
        let full = scan_wal(&bytes).records;
        for cut in 0..bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            assert_eq!(
                scan.records,
                full[..scan.records.len()],
                "prefix property violated at cut {cut}"
            );
            // Each frame here is 26 bytes (8 header + 16 fixed + 2 key):
            // a cut on a frame boundary is a clean EOF, anything else
            // must report a torn record at the boundary before it.
            if cut % 26 == 0 {
                assert_eq!(scan.corrupt_at, None, "cut {cut} is a clean boundary");
                assert_eq!(scan.valid_len, cut as u64);
            } else {
                assert_eq!(scan.corrupt_at, Some(scan.valid_len), "cut {cut}");
                assert_eq!(scan.valid_len, (cut / 26 * 26) as u64, "cut {cut}");
            }
        }
    }

    #[test]
    fn bit_flips_never_yield_garbage_records() {
        let recs = [(1, "key-one", 0.5), (2, "key-two", 7.25)];
        let bytes = encode_all(&recs);
        let full = scan_wal(&bytes).records;
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x40;
            let scan = scan_wal(&damaged);
            // Every replayed record is a genuine prefix record — a
            // flipped byte may truncate the log, never corrupt a value.
            assert_eq!(scan.records, full[..scan.records.len()], "flip at {i}");
            assert!(scan.records.len() < full.len(), "flip at {i} undetected");
        }
    }

    #[test]
    fn non_monotone_sequence_rejected() {
        let bytes = encode_all(&[(5, "a", 1.0), (5, "b", 2.0)]);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.corrupt_reason, Some("non-monotone sequence number"));
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse(" none "), Some(SyncPolicy::None));
        assert_eq!(SyncPolicy::parse("batch:8"), Some(SyncPolicy::Batch(8)));
        assert_eq!(SyncPolicy::parse("batch:0"), None);
        assert_eq!(SyncPolicy::parse("batch:"), None);
        assert_eq!(SyncPolicy::parse("fsync"), None);
    }

    #[test]
    fn watermark_tracks_policy() {
        let mut wal = Wal::new(Box::new(MemSink::default()), SyncPolicy::Batch(2), 0);
        let s1 = wal.append("k1", 1.0);
        assert_eq!(s1, 1);
        assert_eq!(wal.synced_seq(), 0, "batch of 2 not reached");
        let s2 = wal.append("k2", 2.0);
        assert_eq!(wal.synced_seq(), s2, "batch boundary syncs");
        wal.append("k3", 3.0);
        assert_eq!(wal.synced_seq(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.synced_seq(), 3);
    }

    #[test]
    fn torn_write_loses_only_unacknowledged_records() {
        // Fault strikes mid-append at a seeded offset; every record
        // acknowledged (synced) before the tear must still scan out of
        // the crash image, bit-exact, and the scan must stop cleanly at
        // the torn frame rather than inventing data past it.
        for seed in 0..20u64 {
            let plan = FaultPlan::seeded(seed, 30, 400, FaultKind::Torn);
            let mut sink = FaultySink::new(MemSink::default(), plan);
            let mut acked: Vec<(String, f64)> = Vec::new();
            let mut frame = Vec::new();
            for i in 0..32u64 {
                let key = format!("bench|mode|cfg{i}|1000");
                let value = i as f64 * 0.5 + 0.125;
                frame.clear();
                encode_record(acked.len() as u64 + 1, &key, value, &mut frame);
                if sink.append(&frame).is_ok() && sink.sync().is_ok() {
                    acked.push((key, value));
                }
            }
            assert!(sink.tripped(), "seed {seed}: plan must trip within run");
            let scan = scan_wal(sink.inner().crash_image());
            assert!(
                scan.records.len() >= acked.len(),
                "seed {seed}: lost acknowledged records ({} < {})",
                scan.records.len(),
                acked.len()
            );
            for (rec, (key, value)) in scan.records.iter().zip(&acked) {
                assert_eq!(&rec.key, key, "seed {seed}");
                assert_eq!(rec.value.to_bits(), value.to_bits(), "seed {seed}");
            }
        }
    }

    #[test]
    fn wal_degrades_without_panicking_on_torn_append() {
        let plan = FaultPlan::seeded(7, 50, 200, FaultKind::Torn);
        let mut wal = Wal::new(
            Box::new(FaultySink::new(MemSink::default(), plan)),
            SyncPolicy::Always,
            0,
        );
        let mut seqs = Vec::new();
        for i in 0..32 {
            seqs.push(wal.append(&format!("bench|mode|cfg{i}|1000"), i as f64));
        }
        assert!(wal.is_degraded(), "fault within 200 bytes must trip");
        // Sequence numbers stay monotone even across the fault, and the
        // watermark froze at the last pre-fault sync.
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(wal.synced_seq() < *seqs.last().expect("nonempty"));
        assert!(wal.sync().is_err(), "degraded sync must not claim success");
    }

    #[test]
    fn sync_fault_freezes_watermark() {
        let plan = FaultPlan {
            fail_at_byte: 100,
            kind: FaultKind::SyncFail,
        };
        let mut wal = Wal::new(
            Box::new(FaultySink::new(MemSink::default(), plan)),
            SyncPolicy::Always,
            0,
        );
        let mut last_good = 0;
        for i in 0..16 {
            let seq = wal.append(&format!("k{i}"), 1.0);
            if !wal.is_degraded() {
                last_good = seq;
            }
        }
        assert!(wal.is_degraded());
        assert_eq!(
            wal.synced_seq(),
            last_good,
            "a failed fsync must not advance acknowledgement"
        );
    }

    #[test]
    fn checkpoint_truncation_heals_degraded_mode() {
        let plan = FaultPlan {
            fail_at_byte: 40,
            kind: FaultKind::Reject,
        };
        let mut wal = Wal::new(
            Box::new(FaultySink::new(MemSink::default(), plan)),
            SyncPolicy::Always,
            0,
        );
        for i in 0..8 {
            wal.append(&format!("key-number-{i}"), 1.0);
        }
        assert!(wal.is_degraded());
        // The injected fault also fails truncate: degraded persists.
        assert!(wal.truncate_after_checkpoint().is_err());
        assert!(wal.is_degraded());
        // With a healthy sink, truncation heals.
        let mut wal = Wal::new(Box::new(MemSink::default()), SyncPolicy::None, 10);
        wal.append("k", 1.0);
        wal.truncate_after_checkpoint().unwrap();
        assert!(!wal.is_degraded());
        assert_eq!(wal.synced_seq(), wal.last_seq());
    }
}
