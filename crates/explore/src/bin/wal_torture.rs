//! Crash-test writer child for the kill-9 durability test.
//!
//! Opens a [`ResultCache`] at the given path and appends results as
//! fast as it can, printing one flushed `ACK` line for every record
//! whose sequence number has crossed the durability watermark
//! ([`ResultCache::durable_seq`]) — i.e. for results the store claims
//! will survive any crash. The parent test SIGKILLs this process
//! mid-append, reopens the cache, and asserts every `ACK`ed record is
//! still there, bit-exact. Periodic `maybe_save_batched` calls make
//! sure some kills land mid-checkpoint, not just mid-append.
//!
//! Usage: `wal_torture <cache-path> <sync-policy> [checkpoint-batch]`
//!
//! ACK line format (all fields space-separated, flushed per line):
//! `ACK <seq> <value-bits> <bench> <mode> <config> <window>`.

use std::collections::VecDeque;
use std::io::Write;

use gals_explore::wal::SyncPolicy;
use gals_explore::{CacheKey, ResultCache};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .expect("usage: wal_torture <path> <policy> [batch]");
    let policy = args
        .get(2)
        .and_then(|raw| SyncPolicy::parse(raw))
        .expect("policy must be always | batch:N | none");
    let checkpoint_batch: usize = args
        .get(3)
        .map(|raw| raw.parse().expect("batch must be a number"))
        .unwrap_or(500);
    let cache = ResultCache::open_with_policy(path, policy).expect("open cache");

    let mut pending: VecDeque<(u64, u64, u64, u64)> = VecDeque::new();
    let mut out = std::io::stdout().lock();
    let mut i: u64 = 0;
    // Runs until killed; the parent owns termination.
    loop {
        let bench = i % 37;
        let window = 1000 + (i % 5) * 500;
        // A value derived from i with a fractional part, so bit-exact
        // recovery is a real check, not an integer round trip.
        let value = i as f64 * 1.618 + 0.25;
        let key = CacheKey::new(
            &format!("bench{bench:02}"),
            "wal",
            &format!("cfg{i:08}"),
            window,
        );
        let seq = cache.put(key, value);
        pending.push_back((seq, value.to_bits(), i, window));
        let durable = cache.durable_seq();
        let mut flushed = false;
        while pending.front().is_some_and(|&(s, ..)| s <= durable) {
            let (seq, bits, i, window) = pending.pop_front().expect("checked non-empty");
            writeln!(
                out,
                "ACK {seq} {bits} bench{:02} wal cfg{i:08} {window}",
                i % 37
            )
            .expect("write ack");
            flushed = true;
        }
        if flushed {
            out.flush().expect("flush acks");
        }
        cache.maybe_save_batched(checkpoint_batch);
        i += 1;
    }
}
