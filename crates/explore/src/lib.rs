//! Design-space exploration: the paper's offline sweeps.
//!
//! §4: the best-overall fully synchronous baseline is found by an
//! exhaustive sweep of 1,024 configurations (16 I-cache options × 4 D/L2 ×
//! 4 integer IQ × 4 FP IQ), and the Program-Adaptive results come from an
//! exhaustive per-application sweep of the 256 adaptive-MCD
//! configurations — about 300 CPU-months on the authors' cluster.
//!
//! This crate reproduces both sweeps at laptop scale: a job-driven
//! sweep engine (workers pull typed [`Job`]s from a priority-ordered,
//! deadline-aware [`JobScheduler`], so one slow run never idles the
//! other threads and heterogeneous work mixes freely in one queue),
//! with all measured runtimes recorded in a sharded result cache with
//! batched persistence so tables and figures can be regenerated
//! instantly.
//!
//! Environment knobs (all optional):
//!
//! * `GALS_MCD_SWEEP_WINDOW` — instructions per sweep run (default
//!   10,000).
//! * `GALS_MCD_FINAL_WINDOW` — instructions for the final Figure 6
//!   comparison runs (default 120,000).
//! * `GALS_MCD_CACHE` — cache file path (default
//!   `target/gals-sweep-cache.json`).
//! * `GALS_MCD_WAL_SYNC` — result-store WAL sync policy, `always` |
//!   `batch:N` | `none` (default `batch:64`; see [`wal`]).
//!
//! # Example
//!
//! ```no_run
//! use gals_explore::Explorer;
//! use gals_workloads::suite;
//!
//! let mut ex = Explorer::from_env()?;
//! let suite: Vec<_> = suite::all().into_iter().take(4).collect();
//! let rows = ex.figure6(&suite)?;
//! for row in &rows {
//!     println!("{}: program {:+.1}%  phase {:+.1}%",
//!              row.benchmark, row.program_improvement_pct(),
//!              row.phase_improvement_pct());
//! }
//! # Ok::<(), gals_explore::ExploreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
mod cache;
mod engine;
mod explorer;
pub mod json;
pub mod sched;
pub mod wal;

pub use ablation::AblationPoint;
pub use cache::{tmp_path_of, wal_path_of, CacheKey, RecoveryReport, ResultCache};
pub use engine::{MeasureItem, SweepEngine};
pub use explorer::{
    in_sync_winner_subset, ExploreError, Explorer, Fig6Row, PolicyOutcome, ProgramChoice,
    SkippedConfig, SyncSweepOutcome,
};
pub use sched::{Job, JobOutcome, JobScheduler, Priority};

pub use gals_core::{ControlPolicy, McdConfig, SyncConfig};
