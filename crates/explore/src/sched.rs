//! The job scheduler: priority-ordered, deadline-aware, starvation-free.
//!
//! A [`Job`] is the unit of work everywhere in the execution path — one
//! `{machine config, window, priority, deadline, tag}` tuple. The
//! batch-oriented [`Explorer`](crate::Explorer) submits homogeneous
//! job batches; the `gals-serve` process admits heterogeneous jobs from
//! every connection into one long-lived [`JobScheduler`] and lets a
//! worker pool drain it. Nothing in the scheduler assumes jobs share a
//! window, a machine style, or a priority.
//!
//! Scheduling discipline:
//!
//! * **Priority classes** ([`Priority::High`] / [`Priority::Normal`] /
//!   [`Priority::Low`]) order the queue; within a class, admission
//!   order (FIFO).
//! * **Aging** prevents starvation deterministically, without wall
//!   clocks: each job's heap rank is its admission sequence number
//!   minus `priority_level × aging_step`, so a low-priority job can be
//!   bypassed by at most `level_difference × aging_step` later
//!   admissions before it reaches the front.
//! * **Deadlines** are checked lazily at pop time: a job whose deadline
//!   has passed is not executed — its completion fires with the typed
//!   [`JobOutcome::Expired`]. (A result-cache hit is served even past
//!   the deadline, because it costs nothing; `deadline_ms = 0` on the
//!   wire therefore doubles as a cache-only probe.)
//! * **In-flight dedupe**: when several queued jobs name the same cache
//!   key, the first popped claims the key and simulates; the others
//!   attach as followers and complete — with the identical,
//!   deterministic result — the moment the claimer finishes.
//!
//! The scheduler holds completion callbacks, not result slots: every
//! submitted job's completion fires exactly once (measured, cache hit,
//! follower, or expired), from whichever worker resolved it. That is
//! what lets the server stream [`Partial`-frame] responses per job
//! while the rest of a request is still queued.

use std::collections::BinaryHeap;

use gals_common::fxmap::FxHashMap;
use std::str::FromStr;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::cache::CacheKey;
use crate::engine::MeasureItem;

/// Scheduling class of a job. Ordering is by urgency: `Low < Normal <
/// High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Bulk / background work (sweep backfills).
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work; jumps every queued `Normal`/`Low` job
    /// younger than the aging bound.
    High,
}

impl Priority {
    /// Numeric level used by the aging rank (0, 1, 2).
    pub fn level(self) -> i64 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Stable wire/CLI key: `"low"`, `"normal"`, `"high"`.
    pub fn key(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown priority {other:?} (low|normal|high)")),
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// One schedulable unit of work: a measurement plus its scheduling
/// attributes.
#[derive(Debug, Clone)]
pub struct Job {
    /// What to measure (benchmark, machine, cache namespace).
    pub item: MeasureItem,
    /// Instruction window for this job (jobs in one queue may differ).
    pub window: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Absolute expiry instant; a job popped after this completes as
    /// [`JobOutcome::Expired`] instead of executing. `None` = run
    /// whenever reached.
    pub deadline: Option<Instant>,
    /// Shared cancellation flag (e.g. a server connection's dead
    /// marker): a job popped after the flag is raised completes as
    /// [`JobOutcome::Expired`] without simulating, so a requester that
    /// went away doesn't keep burning workers on unwanted work.
    pub cancelled: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Opaque requester tag (the server puts the request id here); the
    /// scheduler never interprets it.
    pub tag: String,
}

impl Job {
    /// A normal-priority, deadline-free job.
    pub fn new(item: MeasureItem, window: u64) -> Self {
        Job {
            item,
            window,
            priority: Priority::Normal,
            deadline: None,
            cancelled: None,
            tag: String::new(),
        }
    }

    /// Sets the scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `after` from now.
    #[must_use]
    pub fn with_deadline_in(self, after: Duration) -> Self {
        self.with_deadline(Instant::now() + after)
    }

    /// Attaches a shared cancellation flag.
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.cancelled = Some(flag);
        self
    }

    /// Sets the requester tag.
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// The result-cache key this job resolves through.
    pub fn cache_key(&self) -> CacheKey {
        self.item.cache_key(self.window)
    }

    /// True when the deadline (if any) has passed at `now`, or the
    /// cancellation flag (if any) has been raised — either way the job
    /// should resolve as [`JobOutcome::Expired`] instead of running.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
            || self
                .cancelled
                .as_ref()
                .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }
}

/// How a job resolved. Exactly one outcome fires per submitted job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// The measurement completed (fresh simulation, in-flight follower,
    /// or cache hit).
    Completed {
        /// Deterministic runtime in nanoseconds.
        runtime_ns: f64,
        /// Served from the result cache without simulating.
        cached: bool,
    },
    /// The deadline passed before a worker reached the job.
    Expired,
    /// The simulation panicked (a model bug tripped by this particular
    /// configuration); the rest of the queue is unaffected.
    Panicked,
}

impl JobOutcome {
    /// The measured runtime, when one exists.
    pub fn runtime_ns(&self) -> Option<f64> {
        match self {
            JobOutcome::Completed { runtime_ns, .. } => Some(*runtime_ns),
            JobOutcome::Expired | JobOutcome::Panicked => None,
        }
    }
}

/// A job's completion callback. Fires exactly once, from whichever
/// worker thread resolved the job.
pub type Completion<'env> = Box<dyn FnOnce(Job, JobOutcome) + Send + 'env>;

struct Queued<'env> {
    /// Aging rank: `seq - level × aging_step`. Lower pops first.
    rank: i64,
    /// Admission sequence number (FIFO tie-break).
    seq: i64,
    job: Job,
    complete: Completion<'env>,
}

impl PartialEq for Queued<'_> {
    fn eq(&self, other: &Self) -> bool {
        (self.rank, self.seq) == (other.rank, other.seq)
    }
}

impl Eq for Queued<'_> {}

impl PartialOrd for Queued<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the maximum; reverse so the smallest
        // (rank, seq) — highest effective priority, oldest first — wins.
        (other.rank, other.seq).cmp(&(self.rank, self.seq))
    }
}

struct SchedState<'env> {
    heap: BinaryHeap<Queued<'env>>,
    /// Cache-key string → followers waiting on the in-flight claimer
    /// (Fx-hashed: keys are trusted, internally generated strings probed
    /// on every pop).
    inflight: FxHashMap<String, Vec<(Job, Completion<'env>)>>,
    /// Next admission sequence number. Lives under the state mutex on
    /// purpose: the FIFO tie-break is only correct because sequence
    /// assignment and heap insertion are one critical section.
    seq: i64,
    closed: bool,
}

/// What [`JobScheduler::claim`] decided for a popped job.
// A `Claim` lives only for the popped job's resolution, one at a time
// per worker; boxing the `Run` payload would cost an allocation per
// executed job for no aliveness win.
#[allow(clippy::large_enum_variant)]
pub enum Claim<'env> {
    /// The caller owns the key: execute, then [`JobScheduler::release`].
    Run(Job, Completion<'env>),
    /// Another worker is already measuring this key; the job was
    /// attached as a follower and will complete when the claimer
    /// releases. The caller moves on.
    Follower,
}

impl std::fmt::Debug for Claim<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Claim::Run(job, _) => f.debug_tuple("Run").field(&job.tag).finish(),
            Claim::Follower => f.write_str("Follower"),
        }
    }
}

/// The shared priority/deadline job queue (see [module docs](self)).
///
/// All methods take `&self`; one scheduler is shared by every admitting
/// connection and every worker. The lifetime parameter bounds the
/// completion callbacks: a long-lived server uses
/// `JobScheduler<'static>`, a batch run borrows its result buffers.
pub struct JobScheduler<'env> {
    state: Mutex<SchedState<'env>>,
    cv: Condvar,
    aging_step: i64,
}

impl std::fmt::Debug for JobScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobScheduler")
            .field("aging_step", &self.aging_step)
            .field("queued", &self.len())
            .finish_non_exhaustive()
    }
}

impl Default for JobScheduler<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env> JobScheduler<'env> {
    /// Default aging step: a queued job is bypassed by at most
    /// `level_difference × 1024` later admissions before it runs.
    pub const DEFAULT_AGING_STEP: u64 = 1024;

    /// Maximum entries one [`pop_affine`](Self::pop_affine) call skips
    /// over while hunting for affine jobs.
    pub const AFFINE_SCAN_LIMIT: usize = 256;

    /// A scheduler with the default aging step.
    pub fn new() -> Self {
        Self::with_aging_step(Self::DEFAULT_AGING_STEP)
    }

    /// A scheduler whose aging step is `step` admissions per priority
    /// level (0 would make priorities pure FIFO; small values age
    /// aggressively — tests use them to exercise the crossover).
    pub fn with_aging_step(step: u64) -> Self {
        // Clamped so `level × step` (level ≤ 2) can never overflow the
        // i64 rank arithmetic, even for an absurd operator-supplied
        // step — past this bound aging is unreachable anyway.
        let step = step.min(i64::MAX as u64 / 4);
        JobScheduler {
            state: Mutex::new(SchedState {
                heap: BinaryHeap::new(),
                inflight: FxHashMap::default(),
                seq: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            aging_step: step as i64,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState<'env>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queued (not yet popped) job count.
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits one job. Returns `false` (dropping the completion) when
    /// the scheduler is closed.
    pub fn submit(&self, job: Job, complete: impl FnOnce(Job, JobOutcome) + Send + 'env) -> bool {
        self.submit_batch(vec![(job, Box::new(complete) as Completion<'env>)])
    }

    /// Admits a batch of jobs atomically: either every job is queued
    /// (returns `true`) or the scheduler was already closed and none
    /// are (returns `false`). A request's jobs are admitted through
    /// this so shutdown can never strand a half-admitted request.
    pub fn submit_batch(&self, jobs: Vec<(Job, Completion<'env>)>) -> bool {
        let mut st = self.lock();
        if st.closed {
            return false;
        }
        for (job, complete) in jobs {
            let seq = st.seq;
            st.seq += 1;
            let rank = seq - job.priority.level() * self.aging_step;
            st.heap.push(Queued {
                rank,
                seq,
                job,
                complete,
            });
        }
        drop(st);
        self.cv.notify_all();
        true
    }

    /// Pops the highest-ranked job, blocking while the queue is empty
    /// and the scheduler is open. Returns `None` once the scheduler is
    /// closed *and* drained — the worker-loop exit condition.
    pub fn pop(&self) -> Option<(Job, Completion<'env>)> {
        let mut st = self.lock();
        loop {
            if let Some(q) = st.heap.pop() {
                return Some((q.job, q.complete));
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops up to `max_k` queued jobs whose measurement targets `spec`
    /// — the benchmark-affinity pop the cohort runner uses to fill a
    /// lockstep batch. Non-blocking: returns what is immediately
    /// available, possibly nothing.
    ///
    /// Ordering contract: affinity may reorder jobs only *within* one
    /// priority class. The scan walks the heap in rank order, fixes the
    /// **leading class** to the class of the current queue head, skips
    /// (and restores, ranks untouched) same-class jobs on other
    /// benchmarks, and stops cold at the first job of a different class
    /// — so a job never jumps a class boundary it would not already
    /// cross under the documented aging bypass, and the relative order
    /// of everything not taken is unchanged. The scan is additionally
    /// capped at [`Self::AFFINE_SCAN_LIMIT`] entries so a worker never
    /// holds the queue lock for an O(queue) walk.
    pub fn pop_affine(
        &self,
        spec: &gals_workloads::BenchmarkSpec,
        max_k: usize,
    ) -> Vec<(Job, Completion<'env>)> {
        let mut st = self.lock();
        let mut taken = Vec::new();
        let mut put_back = Vec::new();
        let mut leading: Option<Priority> = None;
        while taken.len() < max_k && put_back.len() < Self::AFFINE_SCAN_LIMIT {
            let Some(q) = st.heap.pop() else { break };
            let class = *leading.get_or_insert(q.job.priority);
            if q.job.priority != class {
                st.heap.push(q);
                break;
            }
            if q.job.item.spec == *spec {
                taken.push((q.job, q.complete));
            } else {
                put_back.push(q);
            }
        }
        for q in put_back {
            st.heap.push(q);
        }
        taken
    }

    /// Claims `key` for execution, or attaches the job as a follower of
    /// the worker already measuring it.
    pub fn claim(&self, key: &str, job: Job, complete: Completion<'env>) -> Claim<'env> {
        let mut st = self.lock();
        match st.inflight.entry(key.to_string()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().push((job, complete));
                Claim::Follower
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Vec::new());
                Claim::Run(job, complete)
            }
        }
    }

    /// Releases a claimed key, returning every follower that attached
    /// while the claimer was measuring (the claimer fires their
    /// completions with its result).
    pub fn release(&self, key: &str) -> Vec<(Job, Completion<'env>)> {
        self.lock().inflight.remove(key).unwrap_or_default()
    }

    /// Closes the queue: no further admissions; blocked
    /// [`pop`](Self::pop)s return once the heap drains. Already-queued
    /// jobs still execute (or expire at their deadlines) — graceful
    /// shutdown drains-or-expires, it never silently drops.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_core::SyncConfig;
    use gals_workloads::suite;

    fn job(tag: &str, priority: Priority) -> Job {
        job_on("adpcm_encode", tag, priority)
    }

    fn job_on(bench: &str, tag: &str, priority: Priority) -> Job {
        let item = MeasureItem::sync(suite::by_name(bench).unwrap(), SyncConfig::paper_best());
        Job::new(item, 1_000).with_priority(priority).with_tag(tag)
    }

    fn pop_tags(sched: &JobScheduler<'_>) -> Vec<String> {
        let mut tags = Vec::new();
        while let Some((job, _)) = {
            sched.close();
            sched.pop()
        } {
            tags.push(job.tag);
        }
        tags
    }

    #[test]
    fn priority_classes_order_the_queue() {
        let sched = JobScheduler::new();
        for (tag, p) in [
            ("n1", Priority::Normal),
            ("h1", Priority::High),
            ("l1", Priority::Low),
            ("n2", Priority::Normal),
            ("h2", Priority::High),
        ] {
            assert!(sched.submit(job(tag, p), |_, _| {}));
        }
        // High first, then Normal, then Low; FIFO inside each class.
        assert_eq!(pop_tags(&sched), ["h1", "h2", "n1", "n2", "l1"]);
    }

    #[test]
    fn aging_bounds_how_long_a_low_job_waits() {
        // With step 4, a Low job (level 0) is bypassed by at most
        // 2 × 4 = 8 later High admissions (level 2) before its rank
        // wins the tie and seniority breaks it.
        let sched = JobScheduler::with_aging_step(4);
        assert!(sched.submit(job("low", Priority::Low), |_, _| {}));
        for i in 0..12 {
            assert!(sched.submit(job(&format!("h{i}"), Priority::High), |_, _| {}));
        }
        let tags = pop_tags(&sched);
        let low_pos = tags.iter().position(|t| t == "low").unwrap();
        assert_eq!(
            low_pos, 7,
            "low job admitted first runs after exactly 2×step highs: {tags:?}"
        );
    }

    #[test]
    fn zero_aging_step_is_pure_fifo() {
        let sched = JobScheduler::with_aging_step(0);
        assert!(sched.submit(job("l", Priority::Low), |_, _| {}));
        assert!(sched.submit(job("h", Priority::High), |_, _| {}));
        assert_eq!(pop_tags(&sched), ["l", "h"]);
    }

    #[test]
    fn closed_scheduler_rejects_admissions_atomically() {
        let sched = JobScheduler::new();
        assert!(sched.submit(job("a", Priority::Normal), |_, _| {}));
        sched.close();
        assert!(!sched.submit(job("b", Priority::Normal), |_, _| {}));
        assert!(!sched.submit_batch(vec![(
            job("c", Priority::Normal),
            Box::new(|_, _| {}) as Completion<'_>,
        )]));
        // The pre-close job still drains.
        assert_eq!(pop_tags(&sched), ["a"]);
    }

    #[test]
    fn pop_affine_reorders_only_within_the_leading_class() {
        let sched = JobScheduler::new();
        for (bench, tag, p) in [
            ("gcc", "n1", Priority::Normal),
            ("adpcm_encode", "n2", Priority::Normal),
            ("gcc", "n3", Priority::Normal),
            ("adpcm_encode", "n4", Priority::Normal),
            ("adpcm_encode", "l1", Priority::Low),
        ] {
            assert!(sched.submit(job_on(bench, tag, p), |_, _| {}));
        }
        let spec = suite::by_name("adpcm_encode").unwrap();
        let taken: Vec<_> = sched
            .pop_affine(&spec, 8)
            .into_iter()
            .map(|(j, _)| j.tag)
            .collect();
        // Takes the Normal-class matches in FIFO order; stops at the Low
        // job even though it matches the benchmark.
        assert_eq!(taken, ["n2", "n4"]);
        // Everything skipped or beyond the class boundary drains in the
        // original order.
        assert_eq!(pop_tags(&sched), ["n1", "n3", "l1"]);
    }

    #[test]
    fn pop_affine_respects_max_k_and_restores_the_rest() {
        let sched = JobScheduler::new();
        for tag in ["a", "b", "c", "d"] {
            assert!(sched.submit(job(tag, Priority::Normal), |_, _| {}));
        }
        let spec = suite::by_name("adpcm_encode").unwrap();
        let taken: Vec<_> = sched
            .pop_affine(&spec, 2)
            .into_iter()
            .map(|(j, _)| j.tag)
            .collect();
        assert_eq!(taken, ["a", "b"]);
        assert_eq!(pop_tags(&sched), ["c", "d"]);
    }

    #[test]
    fn pop_affine_never_bypasses_the_aging_bound() {
        // Mirror of `aging_bounds_how_long_a_low_job_waits`: with step
        // 4, seven aged High jobs outrank the early Low job. An affine
        // pop for the Low job's benchmark must come back empty — taking
        // it would bypass the High class beyond the documented aging
        // bound — and must leave the drain order untouched.
        let sched = JobScheduler::with_aging_step(4);
        assert!(sched.submit(job_on("adpcm_encode", "low", Priority::Low), |_, _| {}));
        for i in 0..12 {
            assert!(sched.submit(job_on("gcc", &format!("h{i}"), Priority::High), |_, _| {}));
        }
        let spec = suite::by_name("adpcm_encode").unwrap();
        assert!(sched.pop_affine(&spec, 8).is_empty());
        let tags = pop_tags(&sched);
        let low_pos = tags.iter().position(|t| t == "low").unwrap();
        assert_eq!(low_pos, 7, "affinity altered the aged order: {tags:?}");
    }

    #[test]
    fn claim_and_release_dedupe_in_flight_keys() {
        let sched = JobScheduler::new();
        let a = job("a", Priority::Normal);
        let b = job("b", Priority::Normal);
        let key = a.cache_key();
        let first = sched.claim(key.as_str(), a, Box::new(|_, _| {}));
        assert!(matches!(first, Claim::Run(..)));
        let second = sched.claim(key.as_str(), b, Box::new(|_, _| {}));
        assert!(matches!(second, Claim::Follower));
        let followers = sched.release(key.as_str());
        assert_eq!(followers.len(), 1);
        assert_eq!(followers[0].0.tag, "b");
        // Key is free again.
        assert!(matches!(
            sched.claim(
                key.as_str(),
                job("c", Priority::Normal),
                Box::new(|_, _| {})
            ),
            Claim::Run(..)
        ));
    }

    #[test]
    fn deadlines_are_detected_lazily() {
        let past = Instant::now() - Duration::from_millis(1);
        let expired = job("e", Priority::Normal).with_deadline(past);
        assert!(expired.expired_at(Instant::now()));
        let fresh = job("f", Priority::Normal).with_deadline_in(Duration::from_secs(3600));
        assert!(!fresh.expired_at(Instant::now()));
        let none = job("n", Priority::Normal);
        assert!(!none.expired_at(Instant::now()));
    }

    #[test]
    fn blocked_pop_wakes_on_submit() {
        let sched = std::sync::Arc::new(JobScheduler::with_aging_step(4));
        let popper = {
            let sched = std::sync::Arc::clone(&sched);
            std::thread::spawn(move || sched.pop().map(|(j, _)| j.tag))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(sched.submit(job("wake", Priority::Low), |_, _| {}));
        assert_eq!(popper.join().unwrap().as_deref(), Some("wake"));
    }
}
