//! The hand-rolled flat-JSON codec shared by the result cache and the
//! `gals-serve` wire protocol.
//!
//! Scope is deliberately tiny: one object, string keys, scalar values
//! (string / number / boolean / null) — no nesting, no arrays. That is
//! exactly what the cache file and the line-delimited serve protocol
//! need, and it keeps the workspace free of external dependencies (the
//! build environment has no registry access).

/// A scalar JSON value in a flat object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Incremental writer for one flat JSON object.
///
/// # Example
///
/// ```
/// use gals_explore::json::ObjectWriter;
/// let mut w = ObjectWriter::new();
/// w.field_str("op", "status");
/// w.field_num("window", 120000.0);
/// assert_eq!(w.finish(), r#"{"op":"status","window":120000.0}"#);
/// ```
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_json_string(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Appends a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_json_string(&mut self.buf, value);
        self
    }

    /// Appends a numeric field (shortest round-trip formatting).
    pub fn field_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&format_json_number(value));
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Emits `v` so that parsing it back yields the identical `f64` (Rust's
/// shortest round-trip float formatting), with a `.0` suffix on integral
/// values so the file stays unambiguously float-typed.
pub fn format_json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat object of scalar values. Returns `None` on any
/// malformation — callers treat that as "not a valid message/file".
pub fn parse_flat_object(text: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = text.chars().peekable();
    let mut out = Vec::new();
    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        skip_ws(&mut chars);
        return chars.next().is_none().then_some(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_json_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => JsonValue::Str(parse_json_string(&mut chars)?),
            't' | 'f' | 'n' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if !c.is_ascii_alphabetic() {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    "null" => JsonValue::Null,
                    _ => return None,
                }
            }
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(num.parse().ok()?)
            }
        };
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => {
                skip_ws(&mut chars);
                return chars.next().is_none().then_some(out);
            }
            _ => return None,
        }
    }
}

/// Parses a flat object whose values must all be numbers (the cache-file
/// shape). `None` on any malformation or non-numeric value.
pub fn parse_flat_number_map(text: &str) -> Option<Vec<(String, f64)>> {
    parse_flat_object(text)?
        .into_iter()
        .map(|(k, v)| v.as_num().map(|n| (k, n)))
        .collect()
}

/// Parses the longest valid prefix of a flat number map (the
/// cache-checkpoint shape), instead of rejecting the whole text.
///
/// Returns the entries parsed before the first malformation plus the
/// byte offset where parsing stopped (`None` when the whole text is a
/// valid map). Crash recovery uses this: a checkpoint torn mid-write
/// still yields every complete entry before the tear, and the offset
/// feeds the loud "malformed at byte N" warning rather than silently
/// dropping the world.
pub fn parse_flat_number_map_prefix(text: &str) -> (Vec<(String, f64)>, Option<usize>) {
    let mut cur = ByteCursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    cur.skip_ws();
    if !cur.eat(b'{') {
        return (out, Some(cur.pos));
    }
    cur.skip_ws();
    if cur.eat(b'}') {
        cur.skip_ws();
        let fail = (cur.pos < cur.bytes.len()).then_some(cur.pos);
        return (out, fail);
    }
    loop {
        cur.skip_ws();
        // The entry is committed only once key, ':', value, and the
        // following separator all parse — a torn tail never yields a
        // half-entry with a truncated number.
        let entry_start = cur.pos;
        let Some(key) = cur.parse_string() else {
            return (out, Some(entry_start));
        };
        cur.skip_ws();
        if !cur.eat(b':') {
            return (out, Some(entry_start));
        }
        cur.skip_ws();
        let Some(value) = cur.parse_number() else {
            return (out, Some(entry_start));
        };
        cur.skip_ws();
        if cur.eat(b',') {
            out.push((key, value));
            continue;
        }
        if cur.eat(b'}') {
            out.push((key, value));
            cur.skip_ws();
            let fail = (cur.pos < cur.bytes.len()).then_some(cur.pos);
            return (out, fail);
        }
        return (out, Some(entry_start));
    }
}

/// Byte-offset parser used by [`parse_flat_number_map_prefix`]. ASCII
/// delimiters (`"`, `\`, `{`, …) never appear inside multi-byte UTF-8
/// sequences, so byte-level scanning of an `&str` stays on char
/// boundaries by construction.
struct ByteCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ByteCursor<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut s = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(s);
                }
                _ => {
                    // Backslash escape.
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code = std::str::from_utf8(hex).ok()?;
                            let v = u32::from_str_radix(code, 16).ok()?;
                            s.push(char::from_u32(v)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<f64> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        chars.next();
    }
}

fn parse_json_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                '/' => s.push('/'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    s.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_round_trips() {
        let mut w = ObjectWriter::new();
        w.field_str("op", "run_config")
            .field_num("window", 2000.0)
            .field_bool("done", true)
            .field_str("weird", "a\"b\\c\td");
        let text = w.finish();
        let parsed = parse_flat_object(&text).expect("valid json");
        assert_eq!(
            parsed,
            vec![
                ("op".into(), JsonValue::Str("run_config".into())),
                ("window".into(), JsonValue::Num(2000.0)),
                ("done".into(), JsonValue::Bool(true)),
                ("weird".into(), JsonValue::Str("a\"b\\c\td".into())),
            ]
        );
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat_object("{}"), Some(vec![]));
        assert_eq!(parse_flat_object(" { } "), Some(vec![]));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "not json",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1}{"b":2}"#,
            r#"{"a":tru}"#,
            r#"{"a":"unterminated"#,
        ] {
            assert_eq!(parse_flat_object(bad), None, "{bad:?} should be rejected");
        }
    }

    #[test]
    fn number_map_rejects_non_numbers() {
        assert!(parse_flat_number_map(r#"{"a":1.5,"b":2.0}"#).is_some());
        assert_eq!(parse_flat_number_map(r#"{"a":"x"}"#), None);
    }

    #[test]
    fn prefix_parser_accepts_whole_valid_maps() {
        let (entries, fail) = parse_flat_number_map_prefix(r#"{"a":1.5,"b|c":2.0}"#);
        assert_eq!(fail, None);
        assert_eq!(entries, vec![("a".into(), 1.5), ("b|c".into(), 2.0)]);
        let (entries, fail) = parse_flat_number_map_prefix(" { } ");
        assert_eq!((entries.len(), fail), (0, None));
    }

    #[test]
    fn prefix_parser_recovers_entries_before_the_tear() {
        // A checkpoint torn mid-write: complete entries survive, the
        // half-written one is dropped, and the offset points at it.
        let text = r#"{"a":1.5,"b":2.0,"c":3"#;
        let (entries, fail) = parse_flat_number_map_prefix(text);
        assert_eq!(entries, vec![("a".into(), 1.5), ("b".into(), 2.0)]);
        assert_eq!(fail, Some(text.find(r#""c""#).unwrap()));
    }

    #[test]
    fn prefix_parser_reports_offset_of_first_malformation() {
        let (entries, fail) = parse_flat_number_map_prefix("not json at all");
        assert_eq!((entries.len(), fail), (0, Some(0)));
        let text = r#"{"a":1.0,"b":"oops","c":2.0}"#;
        let (entries, fail) = parse_flat_number_map_prefix(text);
        assert_eq!(entries, vec![("a".into(), 1.0)]);
        assert_eq!(fail, Some(text.find(r#""b""#).unwrap()));
        // Trailing garbage keeps all entries but still flags the offset.
        let text = r#"{"a":1.0}{"b":2.0}"#;
        let (entries, fail) = parse_flat_number_map_prefix(text);
        assert_eq!(entries, vec![("a".into(), 1.0)]);
        assert_eq!(fail, Some(9));
    }

    #[test]
    fn prefix_parser_agrees_with_strict_parser_on_escapes() {
        let mut key = String::new();
        write_json_string(&mut key, "we|ird\"\\\tkey\u{1F600}");
        let text = format!("{{{key}:4.25}}");
        let strict = parse_flat_number_map(&text).expect("valid");
        let (prefix, fail) = parse_flat_number_map_prefix(&text);
        assert_eq!(fail, None);
        assert_eq!(prefix, strict);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.1 + 0.2, 1.0 / 3.0, 4.0, f64::MIN_POSITIVE] {
            let text = format!(r#"{{"k":{}}}"#, format_json_number(v));
            let parsed = parse_flat_number_map(&text).unwrap();
            assert_eq!(parsed[0].1, v);
        }
    }
}
