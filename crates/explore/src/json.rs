//! The hand-rolled flat-JSON codec shared by the result cache and the
//! `gals-serve` wire protocol.
//!
//! Scope is deliberately tiny: one object, string keys, scalar values
//! (string / number / boolean / null) — no nesting, no arrays. That is
//! exactly what the cache file and the line-delimited serve protocol
//! need, and it keeps the workspace free of external dependencies (the
//! build environment has no registry access).

/// A scalar JSON value in a flat object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Incremental writer for one flat JSON object.
///
/// # Example
///
/// ```
/// use gals_explore::json::ObjectWriter;
/// let mut w = ObjectWriter::new();
/// w.field_str("op", "status");
/// w.field_num("window", 120000.0);
/// assert_eq!(w.finish(), r#"{"op":"status","window":120000.0}"#);
/// ```
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_json_string(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Appends a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_json_string(&mut self.buf, value);
        self
    }

    /// Appends a numeric field (shortest round-trip formatting).
    pub fn field_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&format_json_number(value));
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Emits `v` so that parsing it back yields the identical `f64` (Rust's
/// shortest round-trip float formatting), with a `.0` suffix on integral
/// values so the file stays unambiguously float-typed.
pub fn format_json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat object of scalar values. Returns `None` on any
/// malformation — callers treat that as "not a valid message/file".
pub fn parse_flat_object(text: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = text.chars().peekable();
    let mut out = Vec::new();
    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        skip_ws(&mut chars);
        return chars.next().is_none().then_some(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_json_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => JsonValue::Str(parse_json_string(&mut chars)?),
            't' | 'f' | 'n' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if !c.is_ascii_alphabetic() {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    "null" => JsonValue::Null,
                    _ => return None,
                }
            }
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(num.parse().ok()?)
            }
        };
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => {
                skip_ws(&mut chars);
                return chars.next().is_none().then_some(out);
            }
            _ => return None,
        }
    }
}

/// Parses a flat object whose values must all be numbers (the cache-file
/// shape). `None` on any malformation or non-numeric value.
pub fn parse_flat_number_map(text: &str) -> Option<Vec<(String, f64)>> {
    parse_flat_object(text)?
        .into_iter()
        .map(|(k, v)| v.as_num().map(|n| (k, n)))
        .collect()
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        chars.next();
    }
}

fn parse_json_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                '/' => s.push('/'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    s.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_round_trips() {
        let mut w = ObjectWriter::new();
        w.field_str("op", "run_config")
            .field_num("window", 2000.0)
            .field_bool("done", true)
            .field_str("weird", "a\"b\\c\td");
        let text = w.finish();
        let parsed = parse_flat_object(&text).expect("valid json");
        assert_eq!(
            parsed,
            vec![
                ("op".into(), JsonValue::Str("run_config".into())),
                ("window".into(), JsonValue::Num(2000.0)),
                ("done".into(), JsonValue::Bool(true)),
                ("weird".into(), JsonValue::Str("a\"b\\c\td".into())),
            ]
        );
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat_object("{}"), Some(vec![]));
        assert_eq!(parse_flat_object(" { } "), Some(vec![]));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "not json",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1}{"b":2}"#,
            r#"{"a":tru}"#,
            r#"{"a":"unterminated"#,
        ] {
            assert_eq!(parse_flat_object(bad), None, "{bad:?} should be rejected");
        }
    }

    #[test]
    fn number_map_rejects_non_numbers() {
        assert!(parse_flat_number_map(r#"{"a":1.5,"b":2.0}"#).is_some());
        assert_eq!(parse_flat_number_map(r#"{"a":"x"}"#), None);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.1 + 0.2, 1.0 / 3.0, 4.0, f64::MIN_POSITIVE] {
            let text = format!(r#"{{"k":{}}}"#, format_json_number(v));
            let parsed = parse_flat_number_map(&text).unwrap();
            assert_eq!(parsed[0].1, v);
        }
    }
}
