//! Persistent runtime cache for sweep results.
//!
//! The cache is sharded: keys hash to one of [`SHARDS`] independent
//! `Mutex<FxHashMap>` shards, so concurrent sweep workers recording
//! results almost never contend. Both the shard selection and the maps
//! themselves use the seeded Fx hasher from [`gals_common::fxmap`] —
//! cache keys are trusted, internally generated strings hashed on every
//! job pop, where SipHash's DoS resistance buys nothing. Persistence is
//! batched — workers call [`ResultCache::maybe_save_batched`] after
//! inserting, and the file is rewritten at most once per batch, by
//! whichever thread wins the non-blocking save guard.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, TryLockError};

use gals_common::fxmap::{fx_hash_bytes, FxHashMap};

use crate::json::{format_json_number, parse_flat_number_map, write_json_string};

/// Number of independently locked shards. A small power of two is plenty:
/// the critical section is one map insert.
const SHARDS: usize = 16;

/// Seed decorrelating shard selection from the in-shard map hashing
/// (both hash the same key strings with the same algorithm; without a
/// distinct seed, every key in one shard would share low hash bits).
const SHARD_SEED: u64 = 0x5AAD_C0DE;

/// Key identifying one measured run: benchmark, machine style, config key,
/// and instruction window.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// Builds a key. `mode` is `"sync"`, `"prog"`, or `"phase"`.
    pub fn new(bench: &str, mode: &str, config_key: &str, window: u64) -> Self {
        CacheKey(format!("{bench}|{mode}|{config_key}|{window}"))
    }

    /// The underlying string (stable across versions; used as the JSON
    /// map key).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Seeded Fx hash over the key string; used only for shard selection so
/// it needs to be fast and stable, not cryptographic. (Formerly FNV-1a,
/// which walked the key byte by byte; Fx consumes it a word at a time.)
fn shard_of(key: &str) -> usize {
    (fx_hash_bytes(SHARD_SEED, key.as_bytes()) as usize) % SHARDS
}

/// A JSON-file-backed map from [`CacheKey`] to measured runtime in
/// nanoseconds.
///
/// The sweeps are embarrassingly cacheable: a (benchmark, config, window)
/// runtime never changes because everything in the simulator is
/// deterministic. Persisting them means `fig6_performance`,
/// `table9_distribution` and repeated bench invocations don't re-run the
/// 40 × 1,024 sweep.
///
/// All methods take `&self`; the cache is safe to share across sweep
/// worker threads.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    shards: Vec<Mutex<FxHashMap<String, f64>>>,
    /// Inserts since the last successful save (drives batched persistence).
    unsaved: AtomicUsize,
    /// Non-blocking guard so only one thread performs file I/O at a time.
    save_guard: Mutex<()>,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache {
            path: None,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            unsaved: AtomicUsize::new(0),
            save_guard: Mutex::new(()),
        }
    }
}

impl ResultCache {
    /// An in-memory cache (tests).
    pub fn in_memory() -> Self {
        ResultCache::default()
    }

    /// Locks shard `idx`, recovering from poisoning: a sweep worker that
    /// panicked mid-insert leaves at worst one key/value pair it was
    /// inserting (both plain data, never half-written), so the map is
    /// safe to keep using — and one bad configuration must not abort
    /// every subsequent lookup in a long-lived server process.
    fn shard(&self, idx: usize) -> MutexGuard<'_, FxHashMap<String, f64>> {
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens (or initializes) a cache at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found"; a malformed
    /// cache file is treated as empty rather than fatal.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut cache = ResultCache::default();
        cache.path = Some(path.clone());
        match fs::read_to_string(&path) {
            Ok(text) => {
                if let Some(entries) = parse_flat_number_map(&text) {
                    for (k, v) in entries {
                        let shard = shard_of(&k);
                        cache.shard(shard).insert(k, v);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(cache)
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.shard(i).len()).sum()
    }

    /// True when no measurements are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a cached runtime (ns).
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        self.shard(shard_of(&key.0)).get(key.as_str()).copied()
    }

    /// Stores a measured runtime (ns).
    pub fn put(&self, key: CacheKey, runtime_ns: f64) {
        self.shard(shard_of(&key.0)).insert(key.0, runtime_ns);
        self.unsaved.fetch_add(1, Ordering::Relaxed);
    }

    /// Batched persistence: saves when at least `batch` results were
    /// recorded since the last save and no other thread is already
    /// saving. Sweep workers call this after every insert; at most one of
    /// them pays the file-write cost per batch.
    pub fn maybe_save_batched(&self, batch: usize) {
        if self.path.is_none() || self.unsaved.load(Ordering::Relaxed) < batch {
            return;
        }
        let guard = match self.save_guard.try_lock() {
            Ok(g) => Some(g),
            // A thread that panicked while holding the guard was only
            // doing file I/O; the in-memory state is intact.
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        };
        if let Some(_guard) = guard {
            // Re-check under the guard; a concurrent save may have run.
            if self.unsaved.load(Ordering::Relaxed) >= batch {
                let _ = self.write_file();
            }
        }
    }

    /// Writes the cache back to disk if it changed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self) -> io::Result<()> {
        if self.path.is_none() || self.unsaved.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let _guard = self
            .save_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.write_file()
    }

    fn write_file(&self) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // Snapshot the unsaved count *before* reading the shards:
        // results inserted concurrently during the snapshot may or may
        // not make this file, so their increments must survive (an
        // extra save later is cheap; a silently unpersisted result is
        // not). The caller holds `save_guard`, so nobody else resets
        // the counter underneath us.
        let drained = self.unsaved.load(Ordering::Relaxed);
        // Deterministic output: merge the shards and sort by key.
        let mut entries: Vec<(String, f64)> = Vec::with_capacity(self.len());
        for i in 0..SHARDS {
            let map = self.shard(i);
            entries.extend(map.iter().map(|(k, v)| (k.clone(), *v)));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut text = String::with_capacity(entries.len() * 48 + 2);
        text.push('{');
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            write_json_string(&mut text, k);
            text.push(':');
            text.push_str(&format_json_number(*v));
        }
        text.push('}');
        fs::write(&path, text)?;
        self.unsaved.fetch_sub(drained, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for ResultCache {
    fn drop(&mut self) {
        // Best-effort persistence; explicit save() reports errors.
        let _ = self.save();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct() {
        let a = CacheKey::new("gcc", "sync", "cfgA", 1000);
        let b = CacheKey::new("gcc", "sync", "cfgA", 2000);
        let c = CacheKey::new("gcc", "prog", "cfgA", 1000);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn in_memory_round_trip() {
        let c = ResultCache::in_memory();
        let k = CacheKey::new("x", "sync", "cfg", 100);
        assert!(c.get(&k).is_none());
        c.put(k.clone(), 42.5);
        assert_eq!(c.get(&k), Some(42.5));
        assert_eq!(c.len(), 1);
        assert!(c.save().is_ok(), "in-memory save is a no-op");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gals-cache-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        {
            let c = ResultCache::open(&path).unwrap();
            assert!(c.is_empty());
            c.put(CacheKey::new("b", "phase", "k", 7), 9.25);
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.get(&CacheKey::new("b", "phase", "k", 7)), Some(9.25));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cache_treated_as_empty() {
        let dir = std::env::temp_dir().join("gals-cache-test-bad");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        fs::write(&path, "not json at all").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_values_round_trip_exactly() {
        let dir = std::env::temp_dir().join("gals-cache-test-float");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let values = [
            0.1 + 0.2,
            1.0 / 3.0,
            123_456_789.000_001,
            4.0,
            f64::MIN_POSITIVE,
        ];
        {
            let c = ResultCache::open(&path).unwrap();
            for (i, v) in values.iter().enumerate() {
                c.put(CacheKey::new("b", "sync", &format!("k{i}"), 1), *v);
            }
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(
                c.get(&CacheKey::new("b", "sync", &format!("k{i}"), 1)),
                Some(*v),
                "value {i} must round-trip bit-exactly"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_save_defers_until_threshold() {
        let dir = std::env::temp_dir().join("gals-cache-test-batch");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let c = ResultCache::open(&path).unwrap();
        c.put(CacheKey::new("b", "sync", "k0", 1), 1.0);
        c.maybe_save_batched(8);
        assert!(!path.exists(), "below batch threshold: no file yet");
        for i in 1..8 {
            c.put(CacheKey::new("b", "sync", &format!("k{i}"), 1), 1.0);
        }
        c.maybe_save_batched(8);
        assert!(path.exists(), "batch threshold reached: file written");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_keys_survive() {
        let dir = std::env::temp_dir().join("gals-cache-test-esc");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let weird = CacheKey::new("a\"b\\c", "sync", "k\tx", 3);
        {
            let c = ResultCache::open(&path).unwrap();
            c.put(weird.clone(), 2.5);
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.get(&weird), Some(2.5));
        let _ = fs::remove_dir_all(&dir);
    }
}
