//! Persistent runtime cache for sweep results.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Key identifying one measured run: benchmark, machine style, config key,
/// and instruction window.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey(String);

impl CacheKey {
    /// Builds a key. `mode` is `"sync"`, `"prog"`, or `"phase"`.
    pub fn new(bench: &str, mode: &str, config_key: &str, window: u64) -> Self {
        CacheKey(format!("{bench}|{mode}|{config_key}|{window}"))
    }

    /// The underlying string (stable across versions; used as the JSON
    /// map key).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A JSON-file-backed map from [`CacheKey`] to measured runtime in
/// nanoseconds.
///
/// The sweeps are embarrassingly cacheable: a (benchmark, config, window)
/// runtime never changes because everything in the simulator is
/// deterministic. Persisting them means `fig6_performance`,
/// `table9_distribution` and repeated bench invocations don't re-run the
/// 40 × 1,024 sweep.
#[derive(Debug, Default)]
pub struct ResultCache {
    path: Option<PathBuf>,
    map: HashMap<String, f64>,
    dirty: bool,
}

impl ResultCache {
    /// An in-memory cache (tests).
    pub fn in_memory() -> Self {
        ResultCache::default()
    }

    /// Opens (or initializes) a cache at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found"; a malformed
    /// cache file is treated as empty rather than fatal.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let map = match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(e),
        };
        Ok(ResultCache {
            path: Some(path),
            map,
            dirty: false,
        })
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no measurements are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a cached runtime (ns).
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        self.map.get(key.as_str()).copied()
    }

    /// Stores a measured runtime (ns).
    pub fn put(&mut self, key: CacheKey, runtime_ns: f64) {
        self.map.insert(key.0, runtime_ns);
        self.dirty = true;
    }

    /// Writes the cache back to disk if it changed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&mut self) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let text = serde_json::to_string(&self.map).expect("serializable map");
        fs::write(&path, text)?;
        self.dirty = false;
        Ok(())
    }
}

impl Drop for ResultCache {
    fn drop(&mut self) {
        // Best-effort persistence; explicit save() reports errors.
        let _ = self.save();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct() {
        let a = CacheKey::new("gcc", "sync", "cfgA", 1000);
        let b = CacheKey::new("gcc", "sync", "cfgA", 2000);
        let c = CacheKey::new("gcc", "prog", "cfgA", 1000);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn in_memory_round_trip() {
        let mut c = ResultCache::in_memory();
        let k = CacheKey::new("x", "sync", "cfg", 100);
        assert!(c.get(&k).is_none());
        c.put(k.clone(), 42.5);
        assert_eq!(c.get(&k), Some(42.5));
        assert_eq!(c.len(), 1);
        assert!(c.save().is_ok(), "in-memory save is a no-op");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gals-cache-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        {
            let mut c = ResultCache::open(&path).unwrap();
            assert!(c.is_empty());
            c.put(CacheKey::new("b", "phase", "k", 7), 9.25);
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.get(&CacheKey::new("b", "phase", "k", 7)), Some(9.25));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cache_treated_as_empty() {
        let dir = std::env::temp_dir().join("gals-cache-test-bad");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        fs::write(&path, "not json at all").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
