//! Persistent runtime cache for sweep results — the system of record
//! for every measured (benchmark, config, window) runtime.
//!
//! The in-memory side is sharded: keys hash to one of [`SHARDS`]
//! independent `Mutex<FxHashMap>` shards, so concurrent sweep workers
//! recording results almost never contend. Both the shard selection and
//! the maps themselves use the seeded Fx hasher from
//! [`gals_common::fxmap`] — cache keys are trusted, internally
//! generated strings hashed on every job pop, where SipHash's DoS
//! resistance buys nothing.
//!
//! Persistence is a durable log-structured store (see [`crate::wal`]):
//! every [`ResultCache::put`] appends one checksummed record to an
//! append-only WAL sidecar (`<path>.wal`), and batched checkpoints
//! rewrite the sorted flat-JSON snapshot at `<path>` via atomic
//! tmp-file + rename, truncating the WAL only once the checkpoint is
//! durable. Opening replays checkpoint + WAL tail, stopping cleanly at
//! the first torn record and reporting what it recovered — a crash at
//! any instant (including `kill -9` mid-append or mid-checkpoint) loses
//! at most the records the sync policy had not yet acknowledged,
//! never the store. The [`RecoveryReport`] surfaces recovered/discarded
//! counts to callers, and every damage path warns loudly on stderr with
//! the byte offset where trust ended.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, TryLockError};

use gals_common::fxmap::{fx_hash_bytes, FxHashMap};

use crate::json::{format_json_number, parse_flat_number_map_prefix, write_json_string};
use crate::wal::{scan_wal, FileSink, SyncPolicy, Wal};

/// Number of independently locked shards. A small power of two is plenty:
/// the critical section is one map insert.
const SHARDS: usize = 16;

/// Seed decorrelating shard selection from the in-shard map hashing
/// (both hash the same key strings with the same algorithm; without a
/// distinct seed, every key in one shard would share low hash bits).
const SHARD_SEED: u64 = 0x5AAD_C0DE;

/// Key identifying one measured run: benchmark, machine style, config key,
/// and instruction window.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// Builds a key. `mode` is `"sync"`, `"prog"`, or `"phase"`.
    pub fn new(bench: &str, mode: &str, config_key: &str, window: u64) -> Self {
        CacheKey(format!("{bench}|{mode}|{config_key}|{window}"))
    }

    /// The underlying string (stable across versions; used as the JSON
    /// map key and the WAL record key).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Seeded Fx hash over the key string; used only for shard selection so
/// it needs to be fast and stable, not cryptographic. (Formerly FNV-1a,
/// which walked the key byte by byte; Fx consumes it a word at a time.)
fn shard_of(key: &str) -> usize {
    (fx_hash_bytes(SHARD_SEED, key.as_bytes()) as usize) % SHARDS
}

/// The checkpoint temp path for a cache at `path` (`<path>.tmp`).
/// Checkpoints write here, fsync, then atomically rename over `path`.
pub fn tmp_path_of(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// The WAL sidecar path for a cache at `path` (`<path>.wal`).
pub fn wal_path_of(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// What [`ResultCache::open`] found and salvaged: how many records came
/// from the checkpoint and the WAL tail, and where (if anywhere) each
/// file stopped being trustworthy. Callers that care about durability
/// (the serve layer, the crash harness, the durability bench) read this
/// instead of grepping stderr.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Entries recovered from the checkpoint file.
    pub checkpoint_entries: usize,
    /// Byte offset of the first checkpoint parse failure (`None` when
    /// the checkpoint was fully valid or absent).
    pub checkpoint_malformed_at: Option<usize>,
    /// Checkpoint bytes discarded past the first parse failure.
    pub checkpoint_discarded_bytes: usize,
    /// A stale `<path>.tmp` from an interrupted checkpoint was found
    /// (and ignored — the rename never happened, so it is untrusted).
    pub stale_tmp_ignored: bool,
    /// Records replayed from the WAL tail.
    pub wal_records_replayed: usize,
    /// Byte offset of the first torn/corrupt WAL frame (`None` when the
    /// WAL ended cleanly).
    pub wal_torn_at: Option<u64>,
    /// Which check the first bad WAL frame failed.
    pub wal_torn_reason: Option<&'static str>,
    /// WAL bytes discarded past the tear.
    pub wal_discarded_bytes: u64,
}

impl RecoveryReport {
    /// Total records recovered (checkpoint entries + WAL replays; the
    /// two may overlap on keys, so this counts records, not final map
    /// size).
    pub fn recovered_records(&self) -> usize {
        self.checkpoint_entries + self.wal_records_replayed
    }

    /// True when anything on disk was damaged or left over — i.e. the
    /// previous process did not shut down cleanly.
    pub fn had_damage(&self) -> bool {
        self.stale_tmp_ignored
            || self.checkpoint_malformed_at.is_some()
            || self.wal_torn_at.is_some()
    }
}

/// A durable map from [`CacheKey`] to measured runtime in nanoseconds,
/// backed by a flat-JSON checkpoint plus an append-only WAL.
///
/// The sweeps are embarrassingly cacheable: a (benchmark, config, window)
/// runtime never changes because everything in the simulator is
/// deterministic. Persisting them means `fig6_performance`,
/// `table9_distribution` and repeated bench invocations don't re-run the
/// 40 × 1,024 sweep.
///
/// All methods take `&self`; the cache is safe to share across sweep
/// worker threads.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    shards: Vec<Mutex<FxHashMap<String, f64>>>,
    /// Inserts since the last successful checkpoint (drives batched
    /// checkpointing).
    unsaved: AtomicUsize,
    /// Non-blocking guard so only one thread performs checkpoint I/O at
    /// a time.
    save_guard: Mutex<()>,
    /// The append-only log (file-backed caches only). Lock ordering:
    /// never taken while a shard lock is held *except* by the
    /// checkpointer, which takes `wal` first and shards second — `put`
    /// drops its shard guard before touching the WAL, so the two cannot
    /// deadlock.
    wal: Option<Mutex<Wal>>,
    /// Sequence source for in-memory caches (keeps `put`'s contract
    /// uniform when there is no WAL).
    mem_seq: AtomicU64,
    /// What recovery found when this cache was opened.
    recovery: RecoveryReport,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache {
            path: None,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            unsaved: AtomicUsize::new(0),
            save_guard: Mutex::new(()),
            wal: None,
            mem_seq: AtomicU64::new(0),
            recovery: RecoveryReport::default(),
        }
    }
}

impl ResultCache {
    /// An in-memory cache (tests). No WAL; every sequence number is
    /// trivially "durable" in the only store that exists.
    pub fn in_memory() -> Self {
        ResultCache::default()
    }

    /// Locks shard `idx`, recovering from poisoning: a sweep worker that
    /// panicked mid-insert leaves at worst one key/value pair it was
    /// inserting (both plain data, never half-written), so the map is
    /// safe to keep using — and one bad configuration must not abort
    /// every subsequent lookup in a long-lived server process.
    fn shard(&self, idx: usize) -> MutexGuard<'_, FxHashMap<String, f64>> {
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the WAL (file-backed caches only), recovering from
    /// poisoning: the WAL tracks its own degraded state, and a thread
    /// that panicked mid-append leaves at worst a torn frame that the
    /// next recovery truncates.
    fn wal_guard(&self) -> Option<MutexGuard<'_, Wal>> {
        self.wal
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Opens (or initializes) a cache at `path`, with the sync policy
    /// from `GALS_MCD_WAL_SYNC` (default `batch:64`).
    ///
    /// Recovery replays the checkpoint file, then the WAL tail,
    /// stopping cleanly at the first torn/corrupt record in either;
    /// damage is warned loudly on stderr with its byte offset and
    /// surfaced via [`ResultCache::recovery`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found"; damaged file
    /// *contents* are recovered-and-reported, never fatal.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_policy(path, SyncPolicy::from_env())
    }

    /// [`ResultCache::open`] with an explicit WAL sync policy (the
    /// crash harness and the durability bench sweep policies without
    /// touching the environment).
    ///
    /// # Errors
    ///
    /// See [`ResultCache::open`].
    pub fn open_with_policy(path: impl AsRef<Path>, policy: SyncPolicy) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut cache = ResultCache::default();
        let mut report = RecoveryReport::default();

        // A stale temp file is an interrupted checkpoint: the rename
        // never happened, so its contents are untrusted — the real
        // checkpoint + WAL are authoritative.
        let tmp = tmp_path_of(&path);
        if tmp.exists() {
            eprintln!(
                "warning: result cache: ignoring stale checkpoint temp file {} \
                 (interrupted checkpoint; recovering from checkpoint + WAL instead)",
                tmp.display()
            );
            let _ = fs::remove_file(&tmp);
            report.stale_tmp_ignored = true;
        }

        // Checkpoint: replay the longest valid prefix. Non-UTF-8 bytes
        // (a torn write through a multi-byte char, or plain corruption)
        // truncate the text at the first invalid byte and count as the
        // parse failure offset.
        let mut file_len = 0usize;
        let (text, utf8_fail) = match fs::read(&path) {
            Ok(bytes) => {
                file_len = bytes.len();
                match String::from_utf8(bytes) {
                    Ok(text) => (text, None),
                    Err(e) => {
                        let valid = e.utf8_error().valid_up_to();
                        let mut bytes = e.into_bytes();
                        bytes.truncate(valid);
                        let text = String::from_utf8(bytes).expect("valid prefix");
                        (text, Some(valid))
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (String::new(), None),
            Err(e) => return Err(e),
        };
        if file_len > 0 {
            let (entries, parse_fail) = parse_flat_number_map_prefix(&text);
            report.checkpoint_entries = entries.len();
            if let Some(off) = parse_fail.or(utf8_fail) {
                report.checkpoint_malformed_at = Some(off);
                report.checkpoint_discarded_bytes = file_len - off;
                eprintln!(
                    "warning: result cache {}: malformed at byte {off}; recovered {} \
                     entries, discarded {} trailing bytes",
                    path.display(),
                    entries.len(),
                    file_len - off
                );
            }
            for (k, v) in entries {
                cache.shard(shard_of(&k)).insert(k, v);
            }
        }

        // WAL tail: replay records appended after the last checkpoint,
        // stopping cleanly at the first torn frame. The writer below is
        // opened at the valid prefix length, which truncates the torn
        // tail so new appends never land after garbage.
        let wal_file = wal_path_of(&path);
        let wal_bytes = match fs::read(&wal_file) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = scan_wal(&wal_bytes);
        report.wal_records_replayed = scan.records.len();
        if let (Some(off), Some(reason)) = (scan.corrupt_at, scan.corrupt_reason) {
            report.wal_torn_at = Some(off);
            report.wal_torn_reason = Some(reason);
            report.wal_discarded_bytes = wal_bytes.len() as u64 - scan.valid_len;
            eprintln!(
                "warning: result cache WAL {}: {reason} at byte {off}; replayed {} \
                 records, truncating {} bytes of torn tail",
                wal_file.display(),
                scan.records.len(),
                report.wal_discarded_bytes
            );
        }
        let last_seq = scan.records.last().map(|r| r.seq).unwrap_or(0);
        for rec in scan.records {
            cache.shard(shard_of(&rec.key)).insert(rec.key, rec.value);
        }
        let sink = FileSink::open_at(&wal_file, scan.valid_len)?;
        cache.wal = Some(Mutex::new(Wal::new(Box::new(sink), policy, last_seq)));
        cache.path = Some(path);
        cache.recovery = report;
        Ok(cache)
    }

    /// What recovery found when this cache was opened (all zeroes for
    /// in-memory caches and fresh files).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.shard(i).len()).sum()
    }

    /// True when no measurements are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a cached runtime (ns).
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        self.shard(shard_of(&key.0)).get(key.as_str()).copied()
    }

    /// Stores a measured runtime (ns) and returns its WAL sequence
    /// number. The record is *acknowledged-durable* only once
    /// [`ResultCache::durable_seq`] reaches that sequence — immediately
    /// under `GALS_MCD_WAL_SYNC=always`, at the next batch boundary /
    /// [`ResultCache::sync_wal`] / checkpoint otherwise.
    pub fn put(&self, key: CacheKey, runtime_ns: f64) -> u64 {
        // Shard map first, WAL second: the checkpointer snapshots the
        // maps while holding the WAL lock, so every WAL record is also
        // in memory — truncating the log after a checkpoint can never
        // drop a record the checkpoint missed. (The shard guard is a
        // statement temporary, released before the WAL lock is taken.)
        self.shard(shard_of(&key.0))
            .insert(key.0.clone(), runtime_ns);
        self.unsaved.fetch_add(1, Ordering::Relaxed);
        match self.wal_guard() {
            Some(mut wal) => wal.append(&key.0, runtime_ns),
            None => self.mem_seq.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// Highest sequence number guaranteed to survive a crash right now
    /// (the WAL sync watermark; for in-memory caches, simply the last
    /// sequence issued).
    pub fn durable_seq(&self) -> u64 {
        match self.wal_guard() {
            Some(wal) => wal.synced_seq(),
            None => self.mem_seq.load(Ordering::Relaxed),
        }
    }

    /// Last sequence number issued by [`ResultCache::put`].
    pub fn last_seq(&self) -> u64 {
        match self.wal_guard() {
            Some(wal) => wal.last_seq(),
            None => self.mem_seq.load(Ordering::Relaxed),
        }
    }

    /// Forces every appended WAL record durable (fsync) without paying
    /// for a checkpoint.
    ///
    /// # Errors
    ///
    /// Fails when the WAL is degraded by an earlier storage fault; the
    /// records are still in memory and persist at the next successful
    /// checkpoint.
    pub fn sync_wal(&self) -> io::Result<()> {
        match self.wal_guard() {
            Some(mut wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Batched checkpointing: checkpoints when at least `batch` results
    /// were recorded since the last checkpoint and no other thread is
    /// already doing it. Sweep workers call this after every insert; at
    /// most one of them pays the file-write cost per batch. (Durability
    /// does not wait for this — `put` already appended to the WAL.)
    pub fn maybe_save_batched(&self, batch: usize) {
        if self.path.is_none() || self.unsaved.load(Ordering::Relaxed) < batch {
            return;
        }
        let guard = match self.save_guard.try_lock() {
            Ok(g) => Some(g),
            // A thread that panicked while holding the guard was only
            // doing file I/O; the in-memory state is intact.
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        };
        if let Some(_guard) = guard {
            // Re-check under the guard; a concurrent save may have run.
            if self.unsaved.load(Ordering::Relaxed) >= batch {
                let _ = self.checkpoint();
            }
        }
    }

    /// Checkpoints the cache to disk if it changed since the last
    /// checkpoint (graceful-shutdown path; also truncates the WAL).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self) -> io::Result<()> {
        if self.path.is_none() || self.unsaved.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let _guard = self
            .save_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.checkpoint()
    }

    /// Writes the sorted snapshot durably — tmp file, fsync, atomic
    /// rename, directory fsync — then truncates the WAL, whose records
    /// the checkpoint now covers. A crash at any point leaves either
    /// the old checkpoint + full WAL (before the rename lands) or the
    /// new checkpoint (+ a WAL whose replay is idempotent, if the
    /// truncate never ran): nothing acknowledged is ever lost.
    fn checkpoint(&self) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        // Hold the WAL lock for the whole checkpoint: concurrent `put`s
        // stall briefly (they are per-sweep-result, nowhere near the
        // simulator hot path), the snapshot is a superset of the log,
        // and the truncation below cannot race a fresh append.
        let mut wal_guard = self.wal_guard();
        // Snapshot the unsaved count *before* reading the shards:
        // results inserted concurrently during the snapshot may or may
        // not make this file, so their increments must survive (an
        // extra save later is cheap; a silently unpersisted result is
        // not). The caller holds `save_guard`, so nobody else resets
        // the counter underneath us.
        let drained = self.unsaved.load(Ordering::Relaxed);
        // Deterministic output: merge the shards and sort by key.
        let mut entries: Vec<(String, f64)> = Vec::with_capacity(self.len());
        for i in 0..SHARDS {
            let map = self.shard(i);
            entries.extend(map.iter().map(|(k, v)| (k.clone(), *v)));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut text = String::with_capacity(entries.len() * 48 + 2);
        text.push('{');
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            write_json_string(&mut text, k);
            text.push(':');
            text.push_str(&format_json_number(*v));
        }
        text.push('}');
        let tmp = tmp_path_of(&path);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            // The rename below publishes this file as the checkpoint;
            // its contents must be on the platter first, or a crash
            // could leave a published-but-hollow checkpoint *and* a
            // truncated WAL.
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Make the rename itself durable before truncating the WAL: until
        // the directory entry is flushed, the WAL is still the only copy.
        // Best-effort — on platforms where a directory cannot be opened
        // or synced, the window is the OS flush interval.
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        if let Some(wal) = wal_guard.as_mut() {
            wal.truncate_after_checkpoint()?;
        }
        self.unsaved.fetch_sub(drained, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for ResultCache {
    fn drop(&mut self) {
        // Best-effort final checkpoint; explicit save() reports errors.
        let _ = self.save();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct() {
        let a = CacheKey::new("gcc", "sync", "cfgA", 1000);
        let b = CacheKey::new("gcc", "sync", "cfgA", 2000);
        let c = CacheKey::new("gcc", "prog", "cfgA", 1000);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn in_memory_round_trip() {
        let c = ResultCache::in_memory();
        let k = CacheKey::new("x", "sync", "cfg", 100);
        assert!(c.get(&k).is_none());
        assert_eq!(c.put(k.clone(), 42.5), 1, "sequences start at 1");
        assert_eq!(c.get(&k), Some(42.5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.durable_seq(), 1, "in-memory: every seq is durable");
        assert!(c.save().is_ok(), "in-memory save is a no-op");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gals-cache-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        {
            let c = ResultCache::open(&path).unwrap();
            assert!(c.is_empty());
            c.put(CacheKey::new("b", "phase", "k", 7), 9.25);
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.get(&CacheKey::new("b", "phase", "k", 7)), Some(9.25));
        assert!(!c.recovery().had_damage(), "clean shutdown, clean open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cache_recovers_valid_prefix() {
        let dir = std::env::temp_dir().join("gals-cache-test-bad");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        fs::write(&path, "not json at all").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.is_empty(), "no valid prefix to recover here");
        assert_eq!(c.recovery().checkpoint_malformed_at, Some(0));
        // A checkpoint torn mid-write keeps its complete entries.
        let torn = r#"{"a|sync|k|1":1.5,"b|sync|k|2":2.5,"c|sy"#;
        fs::write(&path, torn).unwrap();
        fs::remove_file(wal_path_of(&path)).unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.recovery().checkpoint_entries, 2);
        assert_eq!(
            c.recovery().checkpoint_malformed_at,
            Some(torn.find(r#""c|sy"#).unwrap())
        );
        assert!(c.recovery().checkpoint_discarded_bytes > 0);
        drop(c);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_values_round_trip_exactly() {
        let dir = std::env::temp_dir().join("gals-cache-test-float");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let values = [
            0.1 + 0.2,
            1.0 / 3.0,
            123_456_789.000_001,
            4.0,
            f64::MIN_POSITIVE,
        ];
        {
            let c = ResultCache::open(&path).unwrap();
            for (i, v) in values.iter().enumerate() {
                c.put(CacheKey::new("b", "sync", &format!("k{i}"), 1), *v);
            }
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(
                c.get(&CacheKey::new("b", "sync", &format!("k{i}"), 1)),
                Some(*v),
                "value {i} must round-trip bit-exactly"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_save_defers_until_threshold() {
        let dir = std::env::temp_dir().join("gals-cache-test-batch");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let c = ResultCache::open(&path).unwrap();
        c.put(CacheKey::new("b", "sync", "k0", 1), 1.0);
        c.maybe_save_batched(8);
        assert!(!path.exists(), "below batch threshold: no checkpoint yet");
        for i in 1..8 {
            c.put(CacheKey::new("b", "sync", &format!("k{i}"), 1), 1.0);
        }
        c.maybe_save_batched(8);
        assert!(path.exists(), "batch threshold reached: checkpoint written");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_keys_survive() {
        let dir = std::env::temp_dir().join("gals-cache-test-esc");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let weird = CacheKey::new("a\"b\\c", "sync", "k\tx", 3);
        {
            let c = ResultCache::open(&path).unwrap();
            c.put(weird.clone(), 2.5);
            c.save().unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.get(&weird), Some(2.5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_is_atomic_and_truncates_wal() {
        let dir = std::env::temp_dir().join("gals-cache-test-ckpt");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let c = ResultCache::open_with_policy(&path, SyncPolicy::Always).unwrap();
        for i in 0..10 {
            c.put(CacheKey::new("b", "sync", &format!("k{i}"), 1), i as f64);
        }
        assert!(
            fs::metadata(wal_path_of(&path)).unwrap().len() > 0,
            "puts land in the WAL before any checkpoint"
        );
        c.save().unwrap();
        assert!(!tmp_path_of(&path).exists(), "tmp renamed away");
        assert_eq!(
            fs::metadata(wal_path_of(&path)).unwrap().len(),
            0,
            "durable checkpoint truncates the WAL"
        );
        // Reopen: all 10 come from the checkpoint, none from the WAL.
        drop(c);
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.recovery().checkpoint_entries, 10);
        assert_eq!(c.recovery().wal_records_replayed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn puts_survive_without_any_checkpoint() {
        // Simulate a crash before the first checkpoint: leak the cache
        // so Drop's save() never runs, then recover from the WAL alone.
        let dir = std::env::temp_dir().join("gals-cache-test-walonly");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let c = ResultCache::open_with_policy(&path, SyncPolicy::Always).unwrap();
        c.put(CacheKey::new("b", "sync", "k", 9), 0.1 + 0.2);
        c.put(CacheKey::new("b", "prog", "k", 9), 1.0 / 3.0);
        assert_eq!(c.durable_seq(), 2);
        std::mem::forget(c);
        assert!(!path.exists(), "no checkpoint was ever written");
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.recovery().wal_records_replayed, 2);
        assert_eq!(c.get(&CacheKey::new("b", "sync", "k", 9)), Some(0.1 + 0.2));
        assert_eq!(c.get(&CacheKey::new("b", "prog", "k", 9)), Some(1.0 / 3.0));
        drop(c);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_file_is_ignored_on_open() {
        let dir = std::env::temp_dir().join("gals-cache-test-tmp");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        {
            let c = ResultCache::open(&path).unwrap();
            c.put(CacheKey::new("b", "sync", "real", 1), 7.0);
            c.save().unwrap();
        }
        // An interrupted checkpoint left a half-written temp file.
        fs::write(tmp_path_of(&path), r#"{"b|sync|bogus|1":99"#).unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.recovery().stale_tmp_ignored);
        assert_eq!(c.get(&CacheKey::new("b", "sync", "real", 1)), Some(7.0));
        assert!(c.get(&CacheKey::new("b", "sync", "bogus", 1)).is_none());
        assert!(!tmp_path_of(&path).exists(), "stale tmp cleaned up");
        drop(c);
        let _ = fs::remove_dir_all(&dir);
    }
}
