//! Ablation studies over the design constants the paper fixes.
//!
//! DESIGN.md calls out three constants worth sensitivity analysis:
//!
//! * the **adaptation interval** (§3.1 fixes 15K instructions,
//!   "comparable to the PLL lock-down time"),
//! * the **PLL lock time** (§2 fixes mean 15 µs),
//! * the **synchronization window** (§2 fixes 30% of the faster period).
//!
//! Each study runs the Phase-Adaptive machine over a benchmark subset
//! with one constant swept and everything else at paper values, and
//! reports the geometric-mean runtime per setting — quantifying how much
//! headroom (or slack) the paper's choice left.

use gals_common::{stats, Femtos};
use gals_core::{ControlPolicy, MachineConfig, McdConfig};
use gals_workloads::BenchmarkSpec;

use crate::cache::ResultCache;
use crate::engine::{MeasureItem, SweepEngine};
use crate::sched::Job;

/// One ablation data point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Human-readable setting (e.g. `"15000 insts"`, `"15 µs"`, `"30%"`).
    pub setting: String,
    /// Geometric-mean runtime across the subset, in nanoseconds.
    pub geomean_ns: f64,
}

fn phase_machine() -> MachineConfig {
    MachineConfig::phase_adaptive(McdConfig::smallest())
}

/// Runs every `(setting, machine)` × benchmark combination as one job
/// batch through a private [`SweepEngine`] (all settings' runs share
/// one priority queue, so they parallelize together instead of
/// serializing per setting) and folds each setting's slice into a
/// geomean point. The `"ablate"` cache namespace keeps these
/// perturbed-parameter machines out of the shared sweep namespaces;
/// the cache itself is in-memory and private to the call.
fn sweep_points(
    settings: &[(String, MachineConfig)],
    suite: &[BenchmarkSpec],
    window: u64,
) -> Vec<AblationPoint> {
    let engine = SweepEngine::new(ResultCache::in_memory());
    let mut jobs = Vec::with_capacity(settings.len() * suite.len());
    for (si, (key, machine)) in settings.iter().enumerate() {
        for spec in suite {
            // The setting index keeps the measurement identity unique
            // even when two settings' display labels format identically
            // (the label is cosmetic; the key is what the engine
            // dedupes and caches on).
            jobs.push(Job::new(
                MeasureItem::custom(
                    spec.clone(),
                    "ablate",
                    format!("s{si}:{key}"),
                    machine.clone(),
                ),
                window,
            ));
        }
    }
    let runtimes: Vec<f64> = engine
        .run_jobs(jobs, |_, _| {})
        .into_iter()
        .map(|outcome| {
            outcome
                .runtime_ns()
                .expect("ablation machines simulate without panicking")
        })
        .collect();
    settings
        .iter()
        .enumerate()
        .map(|(si, (key, _))| AblationPoint {
            setting: key.clone(),
            geomean_ns: stats::geomean(&runtimes[si * suite.len()..(si + 1) * suite.len()])
                .expect("positive runtimes"),
        })
        .collect()
}

/// Sweeps the controller interval (paper: 15K committed instructions).
///
/// Short intervals chase noise (and pay relocks); long intervals miss
/// phases. The paper's 15K choice should sit near the flat bottom.
pub fn interval_sweep(
    suite: &[BenchmarkSpec],
    window: u64,
    intervals: &[u64],
) -> Vec<AblationPoint> {
    let settings: Vec<(String, MachineConfig)> = intervals
        .iter()
        .map(|&interval| {
            let mut m = phase_machine();
            m.params.interval_insts = interval;
            (format!("{interval} insts"), m)
        })
        .collect();
    sweep_points(&settings, suite, window)
}

/// Sweeps the synchronization setup window (paper: 30% of the faster
/// period). 0% isolates the pure edge-alignment cost of GALS operation.
pub fn sync_window_sweep(
    suite: &[BenchmarkSpec],
    window: u64,
    fracs: &[f64],
) -> Vec<AblationPoint> {
    let settings: Vec<(String, MachineConfig)> = fracs
        .iter()
        .map(|&frac| {
            let mut m = phase_machine();
            m.params.sync_threshold_frac = frac;
            (format!("{:.0}%", frac * 100.0), m)
        })
        .collect();
    sweep_points(&settings, suite, window)
}

/// Sweeps the clock jitter amplitude (the MCD papers assume small
/// cycle-to-cycle jitter; this quantifies the model's sensitivity).
pub fn jitter_sweep(suite: &[BenchmarkSpec], window: u64, fracs: &[f64]) -> Vec<AblationPoint> {
    let settings: Vec<(String, MachineConfig)> = fracs
        .iter()
        .map(|&frac| {
            let mut m = phase_machine();
            m.params.jitter_frac = frac;
            (format!("{:.1}%", frac * 100.0), m)
        })
        .collect();
    sweep_points(&settings, suite, window)
}

/// Compares mispredict-penalty settings: the adaptive machine's 10+9
/// versus the synchronous machine's 9+7 (quantifies the §2
/// "over-pipelining" handicap on the adaptive side).
pub fn penalty_study(suite: &[BenchmarkSpec], window: u64) -> Vec<AblationPoint> {
    let settings: Vec<(String, MachineConfig)> =
        [("adaptive 10+9 (paper)", 10, 9), ("sync-style 9+7", 9, 7)]
            .into_iter()
            .map(|(label, fe, int)| {
                let mut m = phase_machine();
                m.params.mispredict_fe_cycles = fe;
                m.params.mispredict_int_cycles = int;
                (label.to_string(), m)
            })
            .collect();
    sweep_points(&settings, suite, window)
}

/// Sweeps the adaptation-control policy (paper: the §3 argmin
/// controllers). `Static` isolates the MCD substrate cost from the
/// adaptation benefit; `Hysteresis`/`PiFeedback` quantify how much
/// decision damping costs or saves against the argmin's jumpiness.
pub fn policy_sweep(
    suite: &[BenchmarkSpec],
    window: u64,
    policies: &[ControlPolicy],
) -> Vec<AblationPoint> {
    let settings: Vec<(String, MachineConfig)> = policies
        .iter()
        .map(|&policy| (policy.to_string(), phase_machine().with_control(policy)))
        .collect();
    sweep_points(&settings, suite, window)
}

/// Scales the PLL lock time (paper: mean 15 µs, range 10–20 µs at 1.0).
/// Slow PLLs delay every reconfiguration; near-instant PLLs measure the
/// controllers' decision quality in isolation.
pub fn pll_sweep(suite: &[BenchmarkSpec], window: u64, scales: &[f64]) -> Vec<AblationPoint> {
    let settings: Vec<(String, MachineConfig)> = scales
        .iter()
        .map(|&scale| {
            let mut m = phase_machine();
            m.params.pll_scale = scale;
            (format!("{scale:.2}x"), m)
        })
        .collect();
    sweep_points(&settings, suite, window)
}

/// Femtosecond view of the default memory latency, exposed for ablation
/// reports.
pub fn default_memory_latency() -> Femtos {
    gals_core::CoreParams::default().memory_latency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_workloads::suite;

    fn mini_suite() -> Vec<BenchmarkSpec> {
        ["adpcm_encode", "gzip"]
            .iter()
            .map(|n| suite::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn interval_sweep_produces_points() {
        let pts = interval_sweep(&mini_suite(), 6_000, &[5_000, 15_000]);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.geomean_ns > 0.0));
        assert_ne!(pts[0].setting, pts[1].setting);
    }

    #[test]
    fn sync_window_zero_is_fastest() {
        let pts = sync_window_sweep(&mini_suite(), 6_000, &[0.0, 0.3, 0.6]);
        assert!(
            pts[0].geomean_ns <= pts[2].geomean_ns,
            "a wider setup window cannot speed the machine up: {pts:?}"
        );
    }

    #[test]
    fn policy_sweep_covers_requested_policies() {
        let pts = policy_sweep(
            &mini_suite(),
            6_000,
            &[ControlPolicy::PaperArgmin, ControlPolicy::Static],
        );
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.geomean_ns > 0.0));
        assert_eq!(pts[0].setting, "paper-argmin");
        assert_eq!(pts[1].setting, "static");
    }

    #[test]
    fn penalty_study_orders_correctly() {
        let pts = penalty_study(&mini_suite(), 6_000);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].geomean_ns <= pts[0].geomean_ns,
            "the lighter penalty cannot be slower: {pts:?}"
        );
    }
}
