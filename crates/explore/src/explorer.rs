//! The sweep driver.

use std::error::Error;
use std::fmt;
use std::io;

use gals_common::stats;
use gals_core::{ControlPolicy, MachineConfig, McdConfig, SimResult, Simulator, SyncConfig};
use gals_workloads::BenchmarkSpec;

use crate::cache::ResultCache;
use crate::engine::{MeasureItem, SweepEngine};

/// Errors from exploration runs.
#[derive(Debug)]
pub enum ExploreError {
    /// Cache file I/O failed.
    Io(io::Error),
    /// The provided suite was empty.
    EmptySuite,
    /// Every measurement in a sweep came back unusable (zero,
    /// non-finite, or from a panicked run), so no ranking exists.
    NoValidMeasurements,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Io(e) => write!(f, "cache i/o failed: {e}"),
            ExploreError::EmptySuite => f.write_str("benchmark suite is empty"),
            ExploreError::NoValidMeasurements => {
                f.write_str("no configuration produced a usable measurement")
            }
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Io(e) => Some(e),
            ExploreError::EmptySuite | ExploreError::NoValidMeasurements => None,
        }
    }
}

/// A configuration (or benchmark) excluded from a sweep's ranking, with
/// the offending measurement that disqualified it.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedConfig {
    /// Configuration key (or benchmark name for per-benchmark skips).
    pub key: String,
    /// Human-readable reason (which measurement was unusable and why).
    pub reason: String,
}

/// True when a measured runtime can participate in rankings and means.
fn usable(ns: f64) -> bool {
    ns.is_finite() && ns > 0.0
}

/// The `GALS_MCD_SYNC_SUBSET=1` region of the synchronous space: the
/// part the full sweep's winner provably lives in (both issue queues
/// small — larger queues only lower the global clock without enough ILP
/// to recoup, which partial full sweeps confirm across the suite).
/// 16 I-cache options × 4 D/L2 × {16,32} int IQ = 128 configurations.
///
/// The one definition is shared by [`Explorer::sync_sweep`] and the
/// throughput reporter's trace-sharing measurement, which quotes its
/// configs/sec against the PR 1 `sweep_sync` baseline — the two
/// workloads must never drift apart or that trajectory metric becomes
/// apples-to-oranges.
pub fn in_sync_winner_subset(c: &SyncConfig) -> bool {
    c.iq_fp == gals_core::IqSize::Q16 && c.iq_int <= gals_core::IqSize::Q32
}

impl From<io::Error> for ExploreError {
    fn from(e: io::Error) -> Self {
        ExploreError::Io(e)
    }
}

/// Outcome of the 1,024-configuration synchronous sweep.
#[derive(Debug, Clone)]
pub struct SyncSweepOutcome {
    /// The best-overall configuration (geometric-mean runtime argmin).
    pub best: SyncConfig,
    /// Geometric-mean runtime (ns) of the best configuration.
    pub best_geomean_ns: f64,
    /// Per-configuration geometric-mean runtimes, in enumeration order
    /// (skipped configurations excluded).
    pub geomeans_ns: Vec<(SyncConfig, f64)>,
    /// Configurations excluded because a run produced an unusable
    /// runtime (instead of aborting the whole sweep).
    pub skipped: Vec<SkippedConfig>,
}

/// Per-benchmark result of the 256-configuration Program-Adaptive sweep.
#[derive(Debug, Clone)]
pub struct ProgramChoice {
    /// Benchmark name.
    pub benchmark: String,
    /// The configuration with the lowest runtime for this benchmark.
    pub best: McdConfig,
    /// Its sweep-window runtime (ns).
    pub runtime_ns: f64,
}

/// One row of the adaptation-policy comparison: a control policy and its
/// suite-wide result.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The control policy compared.
    pub policy: ControlPolicy,
    /// Geometric-mean runtime (ns) across the usable benchmarks.
    pub geomean_ns: f64,
    /// Per-benchmark runtimes (ns), in suite order.
    pub per_benchmark: Vec<(String, f64)>,
    /// Benchmarks excluded from the geomean because their run produced
    /// an unusable runtime.
    pub skipped: Vec<SkippedConfig>,
}

/// One Figure 6 bar pair.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Best-synchronous runtime (ns) at the final window.
    pub sync_ns: f64,
    /// Program-Adaptive runtime (ns) at the final window.
    pub program_ns: f64,
    /// The per-application configuration Program-Adaptive chose.
    pub program_cfg: McdConfig,
    /// Phase-Adaptive runtime (ns) at the final window.
    pub phase_ns: f64,
}

impl Fig6Row {
    /// Program-Adaptive improvement over the synchronous baseline, in
    /// percent (Figure 6's metric).
    pub fn program_improvement_pct(&self) -> f64 {
        stats::runtime_improvement_pct(self.sync_ns, self.program_ns)
    }

    /// Phase-Adaptive improvement over the synchronous baseline.
    pub fn phase_improvement_pct(&self) -> f64 {
        stats::runtime_improvement_pct(self.sync_ns, self.phase_ns)
    }
}

/// The sweep driver: windows plus the shared measurement engine.
#[derive(Debug)]
pub struct Explorer {
    sweep_window: u64,
    final_window: u64,
    engine: SweepEngine,
}

impl Explorer {
    /// Default sweep window (instructions per configuration run). Sized
    /// so the full 1,024-configuration × 40-benchmark synchronous sweep
    /// completes in minutes on a couple of cores; raise via
    /// `GALS_MCD_SWEEP_WINDOW` for higher-fidelity rankings.
    pub const DEFAULT_SWEEP_WINDOW: u64 = 10_000;
    /// Default final-comparison window.
    pub const DEFAULT_FINAL_WINDOW: u64 = 120_000;

    /// Builds an explorer from the environment knobs described in the
    /// [crate docs](crate).
    ///
    /// # Errors
    ///
    /// Fails only on cache-file I/O errors.
    pub fn from_env() -> Result<Self, ExploreError> {
        let sweep_window =
            gals_common::env::parse_env_or("GALS_MCD_SWEEP_WINDOW", Self::DEFAULT_SWEEP_WINDOW);
        let final_window =
            gals_common::env::parse_env_or("GALS_MCD_FINAL_WINDOW", Self::DEFAULT_FINAL_WINDOW);
        let cache_path = gals_common::env::var("GALS_MCD_CACHE")
            .unwrap_or_else(|| "target/gals-sweep-cache.json".to_string());
        let cache = ResultCache::open(cache_path)?;
        Ok(Explorer::with_cache(sweep_window, final_window, cache))
    }

    /// Builds an explorer with explicit windows and cache (tests use an
    /// in-memory cache).
    pub fn with_cache(sweep_window: u64, final_window: u64, cache: ResultCache) -> Self {
        Explorer {
            sweep_window,
            final_window,
            engine: SweepEngine::new(cache),
        }
    }

    /// Builds an explorer around an existing engine (shares its cache
    /// and thread settings — the `gals-serve` path).
    pub fn with_engine(sweep_window: u64, final_window: u64, engine: SweepEngine) -> Self {
        Explorer {
            sweep_window,
            final_window,
            engine,
        }
    }

    /// Makes every measurement use the simulator's straightforward
    /// reference loop instead of the event-driven fast path. Results are
    /// identical; only wall clock differs. This exists so the throughput
    /// reporter and benches can quote honest before/after sweep numbers.
    #[must_use]
    pub fn with_reference_simulator(mut self) -> Self {
        self.engine = self.engine.with_reference_simulator();
        self
    }

    /// Caps the sweep worker thread count (primarily for single-thread
    /// baseline measurements; defaults to the available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// The underlying measurement engine.
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// Sweep window in instructions.
    pub fn sweep_window(&self) -> u64 {
        self.sweep_window
    }

    /// Final comparison window in instructions.
    pub fn final_window(&self) -> u64 {
        self.final_window
    }

    /// Persists the cache immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&mut self) -> Result<(), ExploreError> {
        self.engine.save_cache()?;
        Ok(())
    }

    /// Measures a work list by submitting it as one normal-priority job
    /// batch to the shared [`SweepEngine`] (priority-queue workers,
    /// in-flight dedupe, sharded cache with batched persistence).
    /// Returns runtimes in work order; NaN marks a run that panicked.
    fn parallel_measure(&mut self, work: Vec<MeasureItem>, window: u64) -> Vec<f64> {
        self.engine.measure_owned(work, window)
    }

    /// The 1,024-configuration fully synchronous sweep (§4): finds the
    /// configuration with the best overall (geometric-mean) runtime
    /// across the suite.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` is empty.
    pub fn sync_sweep(
        &mut self,
        suite: &[BenchmarkSpec],
    ) -> Result<SyncSweepOutcome, ExploreError> {
        if suite.is_empty() {
            return Err(ExploreError::EmptySuite);
        }
        // `GALS_MCD_SYNC_SUBSET=1` restricts the sweep to the region the
        // full space's winner provably lives in.
        let subset = gals_common::env::flag("GALS_MCD_SYNC_SUBSET");
        let configs: Vec<SyncConfig> = SyncConfig::enumerate()
            .into_iter()
            .filter(|c| !subset || in_sync_winner_subset(c))
            .collect();
        let mut work = Vec::with_capacity(configs.len() * suite.len());
        for cfg in &configs {
            for spec in suite {
                work.push(MeasureItem::sync(spec.clone(), *cfg));
            }
        }
        let window = self.sweep_window;
        let runtimes = self.parallel_measure(work, window);
        self.engine.save_cache()?;

        let mut geomeans = Vec::with_capacity(configs.len());
        let mut skipped = Vec::new();
        for (ci, cfg) in configs.iter().enumerate() {
            let slice = &runtimes[ci * suite.len()..(ci + 1) * suite.len()];
            // One unusable run disqualifies the configuration from the
            // ranking (a geomean over the remainder would flatter it),
            // but must not abort the other configurations' sweep. The
            // explicit usable() check matters: geomean's own guard
            // passes NaN — the engine's marker for a panicked run.
            if slice.iter().all(|&ns| usable(ns)) {
                let g = stats::geomean(slice).expect("all-usable slice");
                geomeans.push((*cfg, g));
            } else {
                skipped.push(SkippedConfig {
                    key: cfg.key(),
                    reason: bad_slice_reason(suite, slice),
                });
            }
        }
        let (best, best_geomean_ns) = geomeans
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or(ExploreError::NoValidMeasurements)?;
        Ok(SyncSweepOutcome {
            best,
            best_geomean_ns,
            geomeans_ns: geomeans,
            skipped,
        })
    }

    /// The 256-configuration Program-Adaptive sweep: per benchmark, the
    /// adaptive-MCD configuration with the lowest runtime.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` is empty.
    pub fn program_sweep(
        &mut self,
        suite: &[BenchmarkSpec],
    ) -> Result<Vec<ProgramChoice>, ExploreError> {
        if suite.is_empty() {
            return Err(ExploreError::EmptySuite);
        }
        let configs = McdConfig::enumerate();
        let mut work = Vec::with_capacity(configs.len() * suite.len());
        for spec in suite {
            for cfg in &configs {
                work.push(MeasureItem::program(spec.clone(), *cfg));
            }
        }
        let window = self.sweep_window;
        let runtimes = self.parallel_measure(work, window);
        self.engine.save_cache()?;

        let mut out = Vec::with_capacity(suite.len());
        for (bi, spec) in suite.iter().enumerate() {
            let base = bi * configs.len();
            // Unusable runs drop out of the argmin; a benchmark with no
            // usable run at all has no defensible choice.
            let (ci, ns) = runtimes[base..base + configs.len()]
                .iter()
                .enumerate()
                .filter(|(_, ns)| usable(**ns))
                .min_by(|a, b| a.1.total_cmp(b.1))
                .ok_or(ExploreError::NoValidMeasurements)?;
            out.push(ProgramChoice {
                benchmark: spec.name().to_string(),
                best: configs[ci],
                runtime_ns: *ns,
            });
        }
        Ok(out)
    }

    /// One Phase-Adaptive run at the final window, returning the full
    /// result (reconfiguration trace included) — used for Figure 7.
    pub fn phase_run(&mut self, spec: &BenchmarkSpec) -> SimResult {
        let machine = MachineConfig::phase_adaptive(McdConfig::smallest());
        Simulator::new(machine).run(&mut spec.stream(), self.final_window)
    }

    /// The adaptation-policy comparison: runs the Phase-Adaptive machine
    /// under each control policy over the whole suite at the sweep
    /// window and reports per-policy geomean runtimes (cached like every
    /// other sweep measurement).
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` or `policies` is empty;
    /// cache I/O errors.
    pub fn policy_compare(
        &mut self,
        suite: &[BenchmarkSpec],
        policies: &[ControlPolicy],
    ) -> Result<Vec<PolicyOutcome>, ExploreError> {
        if suite.is_empty() || policies.is_empty() {
            return Err(ExploreError::EmptySuite);
        }
        let mut work = Vec::with_capacity(policies.len() * suite.len());
        for &policy in policies {
            for spec in suite {
                work.push(MeasureItem::phase(spec.clone(), policy));
            }
        }
        let window = self.sweep_window;
        let runtimes = self.parallel_measure(work, window);
        self.engine.save_cache()?;

        let mut out = Vec::with_capacity(policies.len());
        for (pi, &policy) in policies.iter().enumerate() {
            let slice = &runtimes[pi * suite.len()..(pi + 1) * suite.len()];
            let valid: Vec<f64> = slice.iter().copied().filter(|&ns| usable(ns)).collect();
            let Some(geomean_ns) = stats::geomean(&valid) else {
                return Err(ExploreError::NoValidMeasurements);
            };
            let skipped = suite
                .iter()
                .zip(slice)
                .filter(|(_, &ns)| !usable(ns))
                .map(|(spec, &ns)| SkippedConfig {
                    key: spec.name().to_string(),
                    reason: format!("unusable runtime {ns}"),
                })
                .collect();
            out.push(PolicyOutcome {
                policy,
                geomean_ns,
                per_benchmark: suite
                    .iter()
                    .zip(slice)
                    .map(|(spec, &ns)| (spec.name().to_string(), ns))
                    .collect(),
                skipped,
            });
        }
        Ok(out)
    }

    /// The full Figure 6 pipeline: sync sweep → program sweep →
    /// final-window comparison runs for all three machines.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` is empty; cache I/O
    /// errors.
    pub fn figure6(&mut self, suite: &[BenchmarkSpec]) -> Result<Vec<Fig6Row>, ExploreError> {
        let sync_best = self.sync_sweep(suite)?.best;
        let program = self.program_sweep(suite)?;

        let mut work = Vec::with_capacity(suite.len() * 3);
        for (spec, choice) in suite.iter().zip(&program) {
            work.push(MeasureItem::sync(spec.clone(), sync_best));
            work.push(MeasureItem::program(spec.clone(), choice.best));
            work.push(MeasureItem::phase(spec.clone(), ControlPolicy::default()));
        }
        let window = self.final_window;
        let runtimes = self.parallel_measure(work, window);
        self.engine.save_cache()?;

        // The figure's improvement percentages divide by these numbers:
        // an unusable run (panicked simulation) must fail loudly, not
        // flow NaN into the artifact.
        if !runtimes.iter().all(|&ns| usable(ns)) {
            return Err(ExploreError::NoValidMeasurements);
        }
        Ok(suite
            .iter()
            .zip(&program)
            .enumerate()
            .map(|(i, (spec, choice))| Fig6Row {
                benchmark: spec.name().to_string(),
                sync_ns: runtimes[i * 3],
                program_ns: runtimes[i * 3 + 1],
                program_cfg: choice.best,
                phase_ns: runtimes[i * 3 + 2],
            })
            .collect())
    }
}

/// Names the first unusable measurement in a per-benchmark slice.
fn bad_slice_reason(suite: &[BenchmarkSpec], slice: &[f64]) -> String {
    suite
        .iter()
        .zip(slice)
        .find(|(_, &ns)| !usable(ns))
        .map(|(spec, &ns)| format!("{}: unusable runtime {ns}", spec.name()))
        .unwrap_or_else(|| "unusable measurement".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_workloads::suite;

    fn tiny_explorer() -> Explorer {
        Explorer::with_cache(2_000, 4_000, ResultCache::in_memory())
    }

    #[test]
    fn empty_suite_rejected() {
        let mut ex = tiny_explorer();
        assert!(matches!(ex.sync_sweep(&[]), Err(ExploreError::EmptySuite)));
        assert!(matches!(
            ex.program_sweep(&[]),
            Err(ExploreError::EmptySuite)
        ));
    }

    #[test]
    fn program_sweep_finds_per_bench_best() {
        // Tiny windows and a single benchmark keep this fast; the point
        // is plumbing, not fidelity.
        let mut ex = Explorer::with_cache(1_000, 2_000, ResultCache::in_memory());
        let suite = vec![suite::by_name("adpcm_encode").unwrap()];
        let out = ex.program_sweep(&suite).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].runtime_ns > 0.0);
        assert_eq!(out[0].benchmark, "adpcm_encode");
    }

    #[test]
    fn measurements_are_cached() {
        let mut ex = Explorer::with_cache(1_000, 2_000, ResultCache::in_memory());
        let suite = vec![suite::by_name("adpcm_encode").unwrap()];
        let a = ex.program_sweep(&suite).unwrap();
        let t0 = std::time::Instant::now();
        let b = ex.program_sweep(&suite).unwrap();
        let cached_time = t0.elapsed();
        assert_eq!(a[0].best, b[0].best);
        assert!(
            cached_time.as_millis() < 500,
            "second sweep should be cache-fast, took {cached_time:?}"
        );
    }

    #[test]
    fn policy_compare_measures_each_policy() {
        let mut ex = Explorer::with_cache(1_500, 3_000, ResultCache::in_memory());
        let suite = vec![suite::by_name("adpcm_encode").unwrap()];
        let policies = [ControlPolicy::PaperArgmin, ControlPolicy::Static];
        let out = ex.policy_compare(&suite, &policies).unwrap();
        assert_eq!(out.len(), 2);
        for (o, p) in out.iter().zip(policies) {
            assert_eq!(o.policy, p);
            assert!(o.geomean_ns > 0.0);
            assert_eq!(o.per_benchmark.len(), 1);
            assert_eq!(o.per_benchmark[0].0, "adpcm_encode");
        }
        assert!(matches!(
            ex.policy_compare(&[], &policies),
            Err(ExploreError::EmptySuite)
        ));
        assert!(matches!(
            ex.policy_compare(&suite, &[]),
            Err(ExploreError::EmptySuite)
        ));
    }

    #[test]
    fn unusable_measurement_skips_policy_not_sweep() {
        // A zero runtime (injected through the cache, exactly where a
        // panicked run's absence or a corrupt entry would surface) must
        // drop that benchmark from the policy's geomean — with a report
        // — instead of panicking the whole comparison.
        let cache = ResultCache::in_memory();
        let window = 1_500;
        cache.put(
            crate::cache::CacheKey::new("adpcm_encode", "phase", "ctrl-argmin", window),
            0.0,
        );
        let mut ex = Explorer::with_cache(window, 3_000, cache);
        let suite = [
            suite::by_name("adpcm_encode").unwrap(),
            suite::by_name("gzip").unwrap(),
        ];
        let out = ex
            .policy_compare(&suite, &[ControlPolicy::PaperArgmin, ControlPolicy::Static])
            .unwrap();
        let argmin = &out[0];
        assert_eq!(argmin.skipped.len(), 1);
        assert_eq!(argmin.skipped[0].key, "adpcm_encode");
        assert!(argmin.geomean_ns > 0.0, "geomean over the usable rest");
        assert!(out[1].skipped.is_empty());
    }

    #[test]
    fn all_measurements_unusable_is_a_typed_error() {
        let cache = ResultCache::in_memory();
        let window = 1_500;
        cache.put(
            crate::cache::CacheKey::new("adpcm_encode", "phase", "ctrl-argmin", window),
            f64::NAN,
        );
        let mut ex = Explorer::with_cache(window, 3_000, cache);
        let suite = [suite::by_name("adpcm_encode").unwrap()];
        assert!(matches!(
            ex.policy_compare(&suite, &[ControlPolicy::PaperArgmin]),
            Err(ExploreError::NoValidMeasurements)
        ));
    }

    #[test]
    fn phase_run_produces_trace_capable_result() {
        let mut ex = tiny_explorer();
        let spec = suite::by_name("apsi").unwrap();
        let r = ex.phase_run(&spec);
        assert_eq!(r.committed, 4_000);
    }
}
