//! The sweep driver.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

use gals_common::stats;
use gals_core::{ControlPolicy, MachineConfig, McdConfig, SimResult, Simulator, SyncConfig};
use gals_workloads::BenchmarkSpec;

use crate::cache::{CacheKey, ResultCache};

/// Errors from exploration runs.
#[derive(Debug)]
pub enum ExploreError {
    /// Cache file I/O failed.
    Io(io::Error),
    /// The provided suite was empty.
    EmptySuite,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Io(e) => write!(f, "cache i/o failed: {e}"),
            ExploreError::EmptySuite => f.write_str("benchmark suite is empty"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Io(e) => Some(e),
            ExploreError::EmptySuite => None,
        }
    }
}

impl From<io::Error> for ExploreError {
    fn from(e: io::Error) -> Self {
        ExploreError::Io(e)
    }
}

/// Outcome of the 1,024-configuration synchronous sweep.
#[derive(Debug, Clone)]
pub struct SyncSweepOutcome {
    /// The best-overall configuration (geometric-mean runtime argmin).
    pub best: SyncConfig,
    /// Geometric-mean runtime (ns) of the best configuration.
    pub best_geomean_ns: f64,
    /// Per-configuration geometric-mean runtimes, in enumeration order.
    pub geomeans_ns: Vec<(SyncConfig, f64)>,
}

/// Per-benchmark result of the 256-configuration Program-Adaptive sweep.
#[derive(Debug, Clone)]
pub struct ProgramChoice {
    /// Benchmark name.
    pub benchmark: String,
    /// The configuration with the lowest runtime for this benchmark.
    pub best: McdConfig,
    /// Its sweep-window runtime (ns).
    pub runtime_ns: f64,
}

/// One row of the adaptation-policy comparison: a control policy and its
/// suite-wide result.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The control policy compared.
    pub policy: ControlPolicy,
    /// Geometric-mean runtime (ns) across the suite.
    pub geomean_ns: f64,
    /// Per-benchmark runtimes (ns), in suite order.
    pub per_benchmark: Vec<(String, f64)>,
}

/// One Figure 6 bar pair.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Best-synchronous runtime (ns) at the final window.
    pub sync_ns: f64,
    /// Program-Adaptive runtime (ns) at the final window.
    pub program_ns: f64,
    /// The per-application configuration Program-Adaptive chose.
    pub program_cfg: McdConfig,
    /// Phase-Adaptive runtime (ns) at the final window.
    pub phase_ns: f64,
}

impl Fig6Row {
    /// Program-Adaptive improvement over the synchronous baseline, in
    /// percent (Figure 6's metric).
    pub fn program_improvement_pct(&self) -> f64 {
        stats::runtime_improvement_pct(self.sync_ns, self.program_ns)
    }

    /// Phase-Adaptive improvement over the synchronous baseline.
    pub fn phase_improvement_pct(&self) -> f64 {
        stats::runtime_improvement_pct(self.sync_ns, self.phase_ns)
    }
}

/// The sweep driver: windows, parallelism, and the persistent cache.
#[derive(Debug)]
pub struct Explorer {
    sweep_window: u64,
    final_window: u64,
    threads: usize,
    reference_loop: bool,
    cache: ResultCache,
}

impl Explorer {
    /// Default sweep window (instructions per configuration run). Sized
    /// so the full 1,024-configuration × 40-benchmark synchronous sweep
    /// completes in minutes on a couple of cores; raise via
    /// `GALS_MCD_SWEEP_WINDOW` for higher-fidelity rankings.
    pub const DEFAULT_SWEEP_WINDOW: u64 = 10_000;
    /// Default final-comparison window.
    pub const DEFAULT_FINAL_WINDOW: u64 = 120_000;

    /// Builds an explorer from the environment knobs described in the
    /// [crate docs](crate).
    ///
    /// # Errors
    ///
    /// Fails only on cache-file I/O errors.
    pub fn from_env() -> Result<Self, ExploreError> {
        let env_u64 = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let sweep_window = env_u64("GALS_MCD_SWEEP_WINDOW", Self::DEFAULT_SWEEP_WINDOW);
        let final_window = env_u64("GALS_MCD_FINAL_WINDOW", Self::DEFAULT_FINAL_WINDOW);
        let cache_path = std::env::var("GALS_MCD_CACHE")
            .unwrap_or_else(|_| "target/gals-sweep-cache.json".to_string());
        let cache = ResultCache::open(cache_path)?;
        Ok(Explorer::with_cache(sweep_window, final_window, cache))
    }

    /// Builds an explorer with explicit windows and cache (tests use an
    /// in-memory cache).
    pub fn with_cache(sweep_window: u64, final_window: u64, cache: ResultCache) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Explorer {
            sweep_window,
            final_window,
            threads,
            reference_loop: false,
            cache,
        }
    }

    /// Makes every measurement use the simulator's straightforward
    /// reference loop instead of the event-driven fast path. Results are
    /// identical; only wall clock differs. This exists so the throughput
    /// reporter and benches can quote honest before/after sweep numbers.
    #[must_use]
    pub fn with_reference_simulator(mut self) -> Self {
        self.reference_loop = true;
        self
    }

    /// Caps the sweep worker thread count (primarily for single-thread
    /// baseline measurements; defaults to the available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sweep window in instructions.
    pub fn sweep_window(&self) -> u64 {
        self.sweep_window
    }

    /// Final comparison window in instructions.
    pub fn final_window(&self) -> u64 {
        self.final_window
    }

    /// Persists the cache immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&mut self) -> Result<(), ExploreError> {
        self.cache.save()?;
        Ok(())
    }

    /// How many freshly measured results accumulate before a worker
    /// flushes the cache file (batched persistence: an interrupted sweep
    /// loses at most one batch).
    const SAVE_BATCH: usize = 256;

    /// Work-stealing parallel map over a list of (spec, mode, key,
    /// machine) tuples. Results keep work-list order.
    ///
    /// Three phases:
    ///
    /// 1. **Resolve** — cache hits are filled in single-threaded (no
    ///    locking) and duplicate keys inside the batch are collapsed so
    ///    each distinct configuration is simulated exactly once.
    /// 2. **Steal** — worker threads claim outstanding items from a
    ///    shared atomic index (dynamic load balancing: a thread stuck on
    ///    a slow phase-adaptive run doesn't hold up the others, unlike a
    ///    static partition). Each worker accumulates results locally —
    ///    there is no shared results lock — and records them in the
    ///    sharded [`ResultCache`] with batched persistence.
    /// 3. **Merge** — per-worker result lists are folded back into
    ///    work-list order after the scope joins.
    fn parallel_measure(
        &mut self,
        work: Vec<(BenchmarkSpec, &'static str, String, MachineConfig)>,
        window: u64,
    ) -> Vec<f64> {
        let n = work.len();
        let mut results = vec![0.0f64; n];

        // Phase 1: resolve hits and dedupe.
        let keys: Vec<CacheKey> = work
            .iter()
            .map(|(spec, mode, key, _)| CacheKey::new(spec.name(), mode, key, window))
            .collect();
        let mut todo: Vec<usize> = Vec::new();
        let mut first_with_key: HashMap<&str, usize> = HashMap::with_capacity(n);
        let mut duplicates: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            if let Some(ns) = self.cache.get(&keys[i]) {
                results[i] = ns;
            } else if let Some(&j) = first_with_key.get(keys[i].as_str()) {
                duplicates.push((i, j));
            } else {
                first_with_key.insert(keys[i].as_str(), i);
                todo.push(i);
            }
        }

        // Phase 2: work-stealing execution of the misses.
        if !todo.is_empty() {
            let next = AtomicUsize::new(0);
            let threads = self.threads.min(todo.len()).max(1);
            let reference_loop = self.reference_loop;
            let work = &work;
            let keys = &keys;
            let todo = &todo;
            let next = &next;
            let cache = &self.cache;
            let measured: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut local: Vec<(usize, f64)> = Vec::new();
                            loop {
                                let t = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = todo.get(t) else { break };
                                let (spec, _, _, machine) = &work[i];
                                let mut sim = Simulator::new(machine.clone());
                                if reference_loop {
                                    sim = sim.use_reference_loop();
                                }
                                let result = sim.run(&mut spec.stream(), window);
                                let ns = result.runtime_ns();
                                cache.put(keys[i].clone(), ns);
                                cache.maybe_save_batched(Self::SAVE_BATCH);
                                local.push((i, ns));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });

            // Phase 3: merge.
            for (i, ns) in measured.into_iter().flatten() {
                results[i] = ns;
            }
        }
        for (i, j) in duplicates {
            results[i] = results[j];
        }
        results
    }

    /// The 1,024-configuration fully synchronous sweep (§4): finds the
    /// configuration with the best overall (geometric-mean) runtime
    /// across the suite.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` is empty.
    pub fn sync_sweep(
        &mut self,
        suite: &[BenchmarkSpec],
    ) -> Result<SyncSweepOutcome, ExploreError> {
        if suite.is_empty() {
            return Err(ExploreError::EmptySuite);
        }
        // `GALS_MCD_SYNC_SUBSET=1` restricts the sweep to the region the
        // full space's winner provably lives in (both issue queues small
        // — larger queues only lower the global clock without enough ILP
        // to recoup, which partial full sweeps confirm across the suite).
        // 16 I-cache options × 4 D/L2 × {16,32} int IQ = 128 configs.
        let subset = std::env::var("GALS_MCD_SYNC_SUBSET").is_ok_and(|v| v == "1");
        let configs: Vec<SyncConfig> = SyncConfig::enumerate()
            .into_iter()
            .filter(|c| {
                !subset || (c.iq_fp == gals_core::IqSize::Q16 && c.iq_int <= gals_core::IqSize::Q32)
            })
            .collect();
        let mut work = Vec::with_capacity(configs.len() * suite.len());
        for cfg in &configs {
            for spec in suite {
                work.push((
                    spec.clone(),
                    "sync",
                    cfg.key(),
                    MachineConfig::synchronous(*cfg),
                ));
            }
        }
        let window = self.sweep_window;
        let runtimes = self.parallel_measure(work, window);
        self.cache.save()?;

        let mut geomeans = Vec::with_capacity(configs.len());
        for (ci, cfg) in configs.iter().enumerate() {
            let slice = &runtimes[ci * suite.len()..(ci + 1) * suite.len()];
            let g = stats::geomean(slice).expect("positive runtimes");
            geomeans.push((*cfg, g));
        }
        let (best, best_geomean_ns) = geomeans
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty config space");
        Ok(SyncSweepOutcome {
            best,
            best_geomean_ns,
            geomeans_ns: geomeans,
        })
    }

    /// The 256-configuration Program-Adaptive sweep: per benchmark, the
    /// adaptive-MCD configuration with the lowest runtime.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` is empty.
    pub fn program_sweep(
        &mut self,
        suite: &[BenchmarkSpec],
    ) -> Result<Vec<ProgramChoice>, ExploreError> {
        if suite.is_empty() {
            return Err(ExploreError::EmptySuite);
        }
        let configs = McdConfig::enumerate();
        let mut work = Vec::with_capacity(configs.len() * suite.len());
        for spec in suite {
            for cfg in &configs {
                work.push((
                    spec.clone(),
                    "prog",
                    cfg.key(),
                    MachineConfig::program_adaptive(*cfg),
                ));
            }
        }
        let window = self.sweep_window;
        let runtimes = self.parallel_measure(work, window);
        self.cache.save()?;

        let mut out = Vec::with_capacity(suite.len());
        for (bi, spec) in suite.iter().enumerate() {
            let base = bi * configs.len();
            let (ci, ns) = runtimes[base..base + configs.len()]
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty config space");
            out.push(ProgramChoice {
                benchmark: spec.name().to_string(),
                best: configs[ci],
                runtime_ns: *ns,
            });
        }
        Ok(out)
    }

    /// One Phase-Adaptive run at the final window, returning the full
    /// result (reconfiguration trace included) — used for Figure 7.
    pub fn phase_run(&mut self, spec: &BenchmarkSpec) -> SimResult {
        let machine = MachineConfig::phase_adaptive(McdConfig::smallest());
        Simulator::new(machine).run(&mut spec.stream(), self.final_window)
    }

    /// Cache key for a phase-adaptive run under `policy`.
    fn phase_key(policy: ControlPolicy) -> String {
        format!("ctrl-{}", policy.key())
    }

    /// The adaptation-policy comparison: runs the Phase-Adaptive machine
    /// under each control policy over the whole suite at the sweep
    /// window and reports per-policy geomean runtimes (cached like every
    /// other sweep measurement).
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` or `policies` is empty;
    /// cache I/O errors.
    pub fn policy_compare(
        &mut self,
        suite: &[BenchmarkSpec],
        policies: &[ControlPolicy],
    ) -> Result<Vec<PolicyOutcome>, ExploreError> {
        if suite.is_empty() || policies.is_empty() {
            return Err(ExploreError::EmptySuite);
        }
        let mut work = Vec::with_capacity(policies.len() * suite.len());
        for &policy in policies {
            for spec in suite {
                work.push((
                    spec.clone(),
                    "phase",
                    Self::phase_key(policy),
                    MachineConfig::phase_adaptive(McdConfig::smallest()).with_control(policy),
                ));
            }
        }
        let window = self.sweep_window;
        let runtimes = self.parallel_measure(work, window);
        self.cache.save()?;

        Ok(policies
            .iter()
            .enumerate()
            .map(|(pi, &policy)| {
                let slice = &runtimes[pi * suite.len()..(pi + 1) * suite.len()];
                PolicyOutcome {
                    policy,
                    geomean_ns: stats::geomean(slice).expect("positive runtimes"),
                    per_benchmark: suite
                        .iter()
                        .zip(slice)
                        .map(|(spec, &ns)| (spec.name().to_string(), ns))
                        .collect(),
                }
            })
            .collect())
    }

    /// The full Figure 6 pipeline: sync sweep → program sweep →
    /// final-window comparison runs for all three machines.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptySuite`] when `suite` is empty; cache I/O
    /// errors.
    pub fn figure6(&mut self, suite: &[BenchmarkSpec]) -> Result<Vec<Fig6Row>, ExploreError> {
        let sync_best = self.sync_sweep(suite)?.best;
        let program = self.program_sweep(suite)?;

        let mut work = Vec::with_capacity(suite.len() * 3);
        for (spec, choice) in suite.iter().zip(&program) {
            work.push((
                spec.clone(),
                "sync",
                sync_best.key(),
                MachineConfig::synchronous(sync_best),
            ));
            work.push((
                spec.clone(),
                "prog",
                choice.best.key(),
                MachineConfig::program_adaptive(choice.best),
            ));
            work.push((
                spec.clone(),
                "phase",
                Self::phase_key(ControlPolicy::default()),
                MachineConfig::phase_adaptive(McdConfig::smallest()),
            ));
        }
        let window = self.final_window;
        let runtimes = self.parallel_measure(work, window);
        self.cache.save()?;

        Ok(suite
            .iter()
            .zip(&program)
            .enumerate()
            .map(|(i, (spec, choice))| Fig6Row {
                benchmark: spec.name().to_string(),
                sync_ns: runtimes[i * 3],
                program_ns: runtimes[i * 3 + 1],
                program_cfg: choice.best,
                phase_ns: runtimes[i * 3 + 2],
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_workloads::suite;

    fn tiny_explorer() -> Explorer {
        Explorer::with_cache(2_000, 4_000, ResultCache::in_memory())
    }

    #[test]
    fn empty_suite_rejected() {
        let mut ex = tiny_explorer();
        assert!(matches!(ex.sync_sweep(&[]), Err(ExploreError::EmptySuite)));
        assert!(matches!(
            ex.program_sweep(&[]),
            Err(ExploreError::EmptySuite)
        ));
    }

    #[test]
    fn program_sweep_finds_per_bench_best() {
        // Tiny windows and a single benchmark keep this fast; the point
        // is plumbing, not fidelity.
        let mut ex = Explorer::with_cache(1_000, 2_000, ResultCache::in_memory());
        let suite = vec![suite::by_name("adpcm_encode").unwrap()];
        let out = ex.program_sweep(&suite).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].runtime_ns > 0.0);
        assert_eq!(out[0].benchmark, "adpcm_encode");
    }

    #[test]
    fn measurements_are_cached() {
        let mut ex = Explorer::with_cache(1_000, 2_000, ResultCache::in_memory());
        let suite = vec![suite::by_name("adpcm_encode").unwrap()];
        let a = ex.program_sweep(&suite).unwrap();
        let t0 = std::time::Instant::now();
        let b = ex.program_sweep(&suite).unwrap();
        let cached_time = t0.elapsed();
        assert_eq!(a[0].best, b[0].best);
        assert!(
            cached_time.as_millis() < 500,
            "second sweep should be cache-fast, took {cached_time:?}"
        );
    }

    #[test]
    fn policy_compare_measures_each_policy() {
        let mut ex = Explorer::with_cache(1_500, 3_000, ResultCache::in_memory());
        let suite = vec![suite::by_name("adpcm_encode").unwrap()];
        let policies = [ControlPolicy::PaperArgmin, ControlPolicy::Static];
        let out = ex.policy_compare(&suite, &policies).unwrap();
        assert_eq!(out.len(), 2);
        for (o, p) in out.iter().zip(policies) {
            assert_eq!(o.policy, p);
            assert!(o.geomean_ns > 0.0);
            assert_eq!(o.per_benchmark.len(), 1);
            assert_eq!(o.per_benchmark[0].0, "adpcm_encode");
        }
        assert!(matches!(
            ex.policy_compare(&[], &policies),
            Err(ExploreError::EmptySuite)
        ));
        assert!(matches!(
            ex.policy_compare(&suite, &[]),
            Err(ExploreError::EmptySuite)
        ));
    }

    #[test]
    fn phase_run_produces_trace_capable_result() {
        let mut ex = tiny_explorer();
        let spec = suite::by_name("apsi").unwrap();
        let r = ex.phase_run(&spec);
        assert_eq!(r.committed, 4_000);
    }
}
