//! The reentrant job-driven sweep engine.
//!
//! [`SweepEngine`] is the measurement core shared by the batch-oriented
//! [`Explorer`](crate::Explorer) and the long-lived `gals-serve`
//! process: every method takes `&self`, so one engine (and its sharded
//! [`ResultCache`]) can be wrapped in an `Arc` and driven by many
//! threads concurrently. Work arrives as typed [`Job`]s pulled from a
//! [`JobScheduler`] — priority-ordered, deadline-aware, deduplicated
//! in flight — and each job's completion fires as soon as its value is
//! known, which is what lets a server stream per-job responses to
//! clients while the rest of the queue is still running.
//!
//! # Sweep-wide trace sharing
//!
//! A benchmark's instruction stream depends only on its spec (and the
//! seed inside it) — never on the machine configuration being measured
//! — yet a naive sweep regenerates the stream from RNG scratch for
//! every job. The engine therefore keeps an LRU-bounded **trace pool**:
//! the first job needing a benchmark materializes `window +
//! max_in_flight` instructions into an `Arc<[DynInst]>`
//! ([`gals_workloads::SharedTrace`]), and every subsequent job for that
//! benchmark — across `run_jobs` batches, `serve_jobs` workers, and
//! `gals-serve` connections sharing the engine — replays the shared
//! recording instead of regenerating it. Replay is bit-identical to the
//! live stream by the generator's determinism contract (asserted
//! instruction-for-instruction by the workloads property tests and
//! end-to-end by the determinism/pooling integration tests), and a
//! replay that would read past its recording panics rather than loop,
//! so a sizing bug can never silently diverge.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gals_common::env::parse_env_or;
use gals_common::fxmap::{FxHashMap, FxHashSet};
use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator, SyncConfig};
use gals_workloads::{BenchmarkSpec, PreparedTrace, SharedTrace};

use crate::cache::{CacheKey, ResultCache};
use crate::sched::{Claim, Completion, Job, JobOutcome, JobScheduler};

/// One unit of sweep work: a benchmark run under a machine configuration
/// at some instruction window.
#[derive(Debug, Clone)]
pub struct MeasureItem {
    /// The workload to stream.
    pub spec: BenchmarkSpec,
    /// Cache namespace: `"sync"`, `"prog"`, or `"phase"`.
    pub mode: &'static str,
    /// Configuration key within the namespace (stable across runs).
    pub config_key: String,
    /// The machine to simulate.
    pub machine: MachineConfig,
}

impl MeasureItem {
    /// A fully synchronous run of `cfg`.
    ///
    /// These constructors are the *only* place the cache-key formats
    /// live: the offline sweeps and the `gals-serve` request expansion
    /// both build items through them, which is what keeps their cache
    /// namespaces shared and their results bit-identical.
    pub fn sync(spec: BenchmarkSpec, cfg: SyncConfig) -> Self {
        MeasureItem {
            spec,
            mode: "sync",
            config_key: cfg.key(),
            machine: MachineConfig::synchronous(cfg),
        }
    }

    /// A program-adaptive run fixed at `cfg`.
    pub fn program(spec: BenchmarkSpec, cfg: McdConfig) -> Self {
        MeasureItem {
            spec,
            mode: "prog",
            config_key: cfg.key(),
            machine: MachineConfig::program_adaptive(cfg),
        }
    }

    /// A phase-adaptive run from the base configuration under `policy`.
    pub fn phase(spec: BenchmarkSpec, policy: ControlPolicy) -> Self {
        MeasureItem {
            spec,
            mode: "phase",
            config_key: format!("ctrl-{}", policy.key()),
            machine: MachineConfig::phase_adaptive(McdConfig::smallest()).with_control(policy),
        }
    }

    /// An item with an explicit machine and cache namespace — the
    /// escape hatch for measurements outside the three standard spaces
    /// (the ablation studies perturb `CoreParams` directly). Callers
    /// own key uniqueness within `mode`; pick a `mode` distinct from
    /// `"sync"`/`"prog"`/`"phase"` so custom results never collide with
    /// the shared sweep namespaces.
    pub fn custom(
        spec: BenchmarkSpec,
        mode: &'static str,
        config_key: String,
        machine: MachineConfig,
    ) -> Self {
        MeasureItem {
            spec,
            mode,
            config_key,
            machine,
        }
    }

    /// The cache key for this item at `window` instructions.
    pub fn cache_key(&self, window: u64) -> CacheKey {
        CacheKey::new(self.spec.name(), self.mode, &self.config_key, window)
    }

    /// The window-independent identity the interval memo keys on:
    /// everything that determines the machine and its input except the
    /// window (mirrors the [`CacheKey`] component contract).
    fn memo_identity(&self) -> String {
        format!("{}|{}|{}", self.spec.name(), self.mode, self.config_key)
    }
}

/// How many freshly measured results accumulate before a worker flushes
/// the cache file (batched persistence: an interrupted sweep loses at
/// most one batch).
const SAVE_BATCH: usize = 256;

/// Default bound on the total instructions the trace pool may hold
/// (~40 bytes each ⇒ roughly 80 MB); override with
/// `GALS_MCD_TRACE_POOL_INSTS` (`0` disables pooling entirely).
const DEFAULT_POOL_INSTS: u64 = 2_000_000;

/// Default lockstep cohort width (simulators advancing over one shared
/// prepared trace); override with `GALS_MCD_COHORT_WIDTH` (`0` or `1`
/// selects the legacy one-job-at-a-time path).
const DEFAULT_COHORT_WIDTH: usize = 8;

/// Default trace-chunk size (instructions) each cohort member advances
/// per turn — the best-measured balance between keeping a chunk's
/// prepared-fact columns cache-resident across the cohort's pass and
/// not thrashing each member's own microarchitectural state on the
/// turn switches; override with `GALS_MCD_COHORT_CHUNK`.
const DEFAULT_COHORT_CHUNK: u64 = 4_096;

/// One pooled recording: the spec it was captured from (the identity
/// key — full structural equality, so distinct specs that happen to
/// share a name can never alias), the shared instruction storage, and
/// (once some cohort needed it) the structure-of-arrays densification.
#[derive(Debug)]
struct PoolEntry {
    spec: BenchmarkSpec,
    trace: SharedTrace,
    /// Lazily built by the first cohort run over this recording; the
    /// LRU instruction bound covers the raw recording only (the
    /// densification is a constant factor on top).
    prepared: Option<PreparedTrace>,
}

/// The LRU-bounded pool of shared benchmark recordings.
///
/// The entry list is tiny (a handful to a few dozen benchmarks), so a
/// linear scan under one mutex beats any clever indexing: the critical
/// section is a name-first struct compare per entry, and the expensive
/// part — capturing a missing trace — happens *outside* the lock.
/// Entries are kept in recency order (most recently used last); when
/// the total recorded instructions exceed the bound, the
/// least-recently-used end is evicted.
#[derive(Debug)]
struct TracePool {
    entries: Mutex<Vec<PoolEntry>>,
    capacity_insts: u64,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl TracePool {
    fn new(capacity_insts: u64) -> Self {
        TracePool {
            entries: Mutex::new(Vec::new()),
            capacity_insts,
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<PoolEntry>> {
        // A panic while holding the lock can only come from an
        // allocation failure mid-push; the entry list itself is never
        // left half-written.
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns a recording of at least `need` instructions of `spec`,
    /// capturing (or extending) it on a miss, or `None` when pooling is
    /// disabled or the request alone would overflow the pool bound.
    fn get(&self, spec: &BenchmarkSpec, need: u64) -> Option<SharedTrace> {
        if need == 0 || need > self.capacity_insts {
            return None;
        }
        {
            let mut entries = self.lock();
            if let Some(pos) = entries.iter().position(|e| &e.spec == spec) {
                if entries[pos].trace.len() as u64 >= need {
                    // Hit: refresh recency and share the storage.
                    let e = entries.remove(pos);
                    let trace = e.trace.clone();
                    entries.push(e);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(trace);
                }
            }
        }
        // Miss (or too-short recording): capture outside the lock so
        // other benchmarks' workers aren't stalled behind stream
        // generation. Concurrent builders of the same spec may race;
        // the determinism contract makes their recordings prefixes of
        // one another, so whichever is longest wins below.
        let trace = SharedTrace::capture(&mut spec.stream(), need);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|e| &e.spec == spec) {
            if entries[pos].trace.len() as u64 >= need {
                let e = entries.remove(pos);
                let existing = e.trace.clone();
                entries.push(e);
                return Some(existing);
            }
            entries.remove(pos);
        }
        entries.push(PoolEntry {
            spec: spec.clone(),
            trace: trace.clone(),
            prepared: None,
        });
        // Evict least-recently-used recordings until under the bound
        // (the just-inserted entry, at the MRU end, always survives).
        let mut total: u64 = entries.iter().map(|e| e.trace.len() as u64).sum();
        while total > self.capacity_insts && entries.len() > 1 {
            total -= entries.remove(0).trace.len() as u64;
        }
        Some(trace)
    }

    /// Like [`TracePool::get`], but returns the recording's
    /// structure-of-arrays densification for machines with `line_bytes`
    /// I-cache lines, building and caching it beside the raw trace on
    /// first use. `None` under exactly the same conditions as `get`
    /// (pooling disabled or the request exceeds the pool bound) —
    /// cohort callers fall back to the per-job stream path then.
    fn get_prepared(
        &self,
        spec: &BenchmarkSpec,
        need: u64,
        line_bytes: u64,
    ) -> Option<PreparedTrace> {
        if need == 0 || need > self.capacity_insts {
            return None;
        }
        {
            let mut entries = self.lock();
            if let Some(pos) = entries.iter().position(|e| &e.spec == spec) {
                let usable = entries[pos]
                    .prepared
                    .as_ref()
                    .is_some_and(|p| p.line_bytes() == line_bytes && p.len() as u64 >= need);
                if usable {
                    // Hit: refresh recency and share the columns.
                    let e = entries.remove(pos);
                    let prep = e.prepared.clone().expect("probed above");
                    entries.push(e);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(prep);
                }
            }
        }
        // No usable densification yet: obtain the raw recording through
        // the normal pooling path (which counts the hit/build), then
        // densify outside the lock and publish the result. A concurrent
        // densifier of the same spec may race; keep whichever covers
        // the other (same line size and at least as long).
        let trace = self.get(spec, need)?;
        let prep = PreparedTrace::new(&trace, line_bytes);
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|e| &e.spec == spec) {
            let keep = entries[pos]
                .prepared
                .as_ref()
                .is_some_and(|p| p.line_bytes() == line_bytes && p.len() >= prep.len());
            if !keep {
                entries[pos].prepared = Some(prep.clone());
            }
        }
        Some(prep)
    }
}

/// Default bound on retained interval-memo snapshots (cloned paused
/// simulators, roughly 50–300 KB each); override with
/// `GALS_MCD_INTERVAL_MEMO_SNAPS` (`0` disables memoization).
const DEFAULT_MEMO_SNAPS: usize = 64;

/// Cross-cohort interval memoization (see
/// [`SweepEngine::run_cohort`]).
///
/// Jobs that share a `(benchmark, mode, config_key)` identity but
/// differ in window simulate the **same machine over the same trace
/// prefix** — determinism makes the paused state at a chunk boundary a
/// pure function of that identity and the boundary, and the pacing
/// pause mutates nothing, so the state is also independent of the
/// chunking schedule that reached it. The memo therefore snapshots
/// (clones) a paused member at each chunk boundary and lets any other
/// member with the same identity — in this cohort, another worker's
/// cohort, or a later batch — splice the snapshot instead of
/// re-stepping the interval.
///
/// Two guards keep a splice sound:
///
/// * the prepared trace's rolling [`PreparedTrace::prefix_digest`] at
///   the boundary is part of the snapshot key, so identities that
///   collide across different recordings (or line sizes) can never
///   alias;
/// * a snapshot is spliced only into a job whose window strictly
///   exceeds the snapshot's committed count — commit clamps exactly at
///   the window, so below it the evolution is window-independent.
///
/// Snapshots are only taken for identities registered at two or more
/// distinct windows (`windows`): a sweep of all-distinct configurations
/// pays one map probe per member turn and zero clones.
#[derive(Debug)]
struct IntervalMemo {
    inner: Mutex<MemoInner>,
    /// Maximum retained snapshots (FIFO eviction); `0` disables.
    capacity: usize,
    hits: AtomicU64,
    stores: AtomicU64,
}

#[derive(Debug, Default)]
struct MemoInner {
    /// Distinct windows enrolled per identity; ≥ 2 marks the identity
    /// as shareable (an identical window re-run is the result cache's
    /// job, not ours).
    windows: FxHashMap<String, Vec<u64>>,
    /// `(identity, chunk boundary, prefix digest)` → paused machine.
    snaps: FxHashMap<(String, u64, u64), Arc<Simulator>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<(String, u64, u64)>,
}

impl IntervalMemo {
    fn new(capacity: usize) -> Self {
        IntervalMemo {
            inner: Mutex::new(MemoInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records that `identity` is being simulated at `window`.
    fn register(&self, identity: &str, window: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        let windows = inner.windows.entry(identity.to_string()).or_default();
        if !windows.contains(&window) {
            windows.push(window);
        }
    }

    /// Returns a deep copy of the memoized paused machine for
    /// `identity` at trace boundary `chunk_end`, if one exists, its
    /// trace prefix digest matches, and it is spliceable into a run
    /// committing up to `window`.
    fn probe(&self, identity: &str, chunk_end: u64, digest: u64, window: u64) -> Option<Simulator> {
        if self.capacity == 0 {
            return None;
        }
        let shared = {
            let inner = self.lock();
            inner
                .snaps
                .get(&(identity.to_string(), chunk_end, digest))?
                .clone()
        };
        if shared.committed() >= window {
            // The shorter-window run would have finished before this
            // pause; it must simulate its own ending.
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        // The deep copy happens outside the lock; only the Arc bump is
        // inside the critical section.
        Some((*shared).clone())
    }

    /// Offers a paused machine for retention. No-op unless some *other*
    /// registered window of `identity` strictly exceeds the paused
    /// commit count — only such a job can ever splice the snapshot (a
    /// same-window re-run is the result cache's business, and a shorter
    /// window must simulate its own ending) — and the boundary is not
    /// already held. The deep clone happens outside the lock, and only
    /// for snapshots that passed the usefulness gate.
    fn store(&self, identity: &str, chunk_end: u64, digest: u64, sim: &Simulator, window: u64) {
        if self.capacity == 0 {
            return;
        }
        let committed = sim.committed();
        {
            let inner = self.lock();
            let useful = inner
                .windows
                .get(identity)
                .is_some_and(|ws| ws.iter().any(|&w| w != window && w > committed));
            if !useful
                || inner
                    .snaps
                    .contains_key(&(identity.to_string(), chunk_end, digest))
            {
                return;
            }
        }
        let snap = Arc::new(sim.clone());
        let mut inner = self.lock();
        let key = (identity.to_string(), chunk_end, digest);
        if inner.snaps.contains_key(&key) {
            return;
        }
        inner.snaps.insert(key.clone(), snap);
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            let evicted = inner.order.pop_front().expect("len checked");
            inner.snaps.remove(&evicted);
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
    }
}

/// One member of a lockstep cohort: an admitted (claimed) job, its
/// live simulator, the shared prepared trace, and the member's current
/// pacing bound.
struct CohortMember<'env> {
    job: Job,
    complete: Completion<'env>,
    prep: PreparedTrace,
    sim: Simulator,
    /// Trace position this member's next turn advances to.
    chunk_end: u64,
    /// Interval-memo identity: `benchmark|mode|config_key` (everything
    /// that determines the machine and its input except the window).
    identity: String,
}

/// The work-stealing measurement engine over a sharded result cache.
///
/// All state is interior-mutable behind `&self`; see the
/// [module docs](self) for the sharing story.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    reference_loop: bool,
    /// Lockstep cohort width: how many same-benchmark simulators one
    /// worker advances over a shared prepared trace (`<2` = legacy
    /// one-job-at-a-time execution).
    cohort_width: usize,
    /// Trace-chunk size (instructions) per cohort member turn.
    chunk_insts: u64,
    cache: ResultCache,
    /// Shared benchmark recordings (see "Sweep-wide trace sharing" in
    /// the [module docs](self)).
    traces: TracePool,
    /// Cross-cohort interval memoization (see [`IntervalMemo`]).
    memo: IntervalMemo,
    /// Simulations actually executed (cache misses), for observability.
    simulated: AtomicU64,
    /// Requests served straight from the cache.
    cache_hits: AtomicU64,
    /// Cache keys whose simulation panicked. Panics are model bugs and
    /// deterministic, so re-running the key would just burn a worker to
    /// reach the same panic — later jobs for these keys resolve
    /// [`JobOutcome::Panicked`] immediately. (The result cache can't
    /// hold this: it persists finite runtimes only.)
    panicked: std::sync::Mutex<FxHashSet<String>>,
}

impl SweepEngine {
    /// Builds an engine over `cache`, sized to the available parallelism,
    /// with the trace pool at its default (env-overridable) bound.
    pub fn new(cache: ResultCache) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // A malformed override warns loudly and falls back (see
        // `gals_common::env`); silently ignoring an operator's tuning
        // knob was a bug.
        let pool_insts = parse_env_or("GALS_MCD_TRACE_POOL_INSTS", DEFAULT_POOL_INSTS);
        let cohort_width = parse_env_or("GALS_MCD_COHORT_WIDTH", DEFAULT_COHORT_WIDTH);
        let chunk_insts = match parse_env_or("GALS_MCD_COHORT_CHUNK", DEFAULT_COHORT_CHUNK) {
            0 => DEFAULT_COHORT_CHUNK,
            c => c,
        };
        let memo_snaps = parse_env_or("GALS_MCD_INTERVAL_MEMO_SNAPS", DEFAULT_MEMO_SNAPS);
        SweepEngine {
            threads,
            reference_loop: false,
            cohort_width,
            chunk_insts,
            cache,
            traces: TracePool::new(pool_insts),
            memo: IntervalMemo::new(memo_snaps),
            simulated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            panicked: std::sync::Mutex::new(FxHashSet::default()),
        }
    }

    /// Caps the worker thread count (primarily for single-thread baseline
    /// measurements; defaults to the available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Makes every measurement use the simulator's straightforward
    /// reference loop instead of the event-driven fast path (results are
    /// identical; only wall clock differs).
    #[must_use]
    pub fn with_reference_simulator(mut self) -> Self {
        self.reference_loop = true;
        self
    }

    /// Disables the shared trace pool: every job regenerates its
    /// instruction stream from RNG scratch. Results are bit-identical
    /// either way (the pooling integration tests assert it); this exists
    /// for the throughput reporter's per-job-stream baseline and for
    /// bounding memory on hosts where even one window's trace is too
    /// large to keep.
    #[must_use]
    pub fn without_trace_pool(mut self) -> Self {
        self.traces = TracePool::new(0);
        self
    }

    /// Caps the trace pool at `insts` total recorded instructions
    /// (`0` disables pooling; the default is 2M, ≈80 MB).
    #[must_use]
    pub fn with_trace_pool_insts(mut self, insts: u64) -> Self {
        self.traces = TracePool::new(insts);
        self
    }

    /// Sets the lockstep cohort width: up to `width` same-benchmark
    /// jobs advance over one shared prepared trace per worker. `0` or
    /// `1` selects the legacy one-job-at-a-time path (results are
    /// bit-identical either way — the cohort integration tests assert
    /// it); the default is 8, env-overridable via
    /// `GALS_MCD_COHORT_WIDTH`.
    #[must_use]
    pub fn with_cohort_width(mut self, width: usize) -> Self {
        self.cohort_width = width;
        self
    }

    /// Sets the per-turn trace-chunk size in instructions (minimum 1;
    /// default 4096, env-overridable via `GALS_MCD_COHORT_CHUNK`).
    /// Chunking affects only cache residency, never results.
    #[must_use]
    pub fn with_cohort_chunk(mut self, insts: u64) -> Self {
        self.chunk_insts = insts.max(1);
        self
    }

    /// Caps the interval memo at `snaps` retained snapshots (`0`
    /// disables memoization; the default is 64, env-overridable via
    /// `GALS_MCD_INTERVAL_MEMO_SNAPS`). Memoization affects wall clock
    /// only, never results — a spliced snapshot is bit-identical to
    /// re-stepping the interval (the cohort integration tests assert
    /// it).
    #[must_use]
    pub fn with_interval_memo_snaps(mut self, snaps: usize) -> Self {
        self.memo = IntervalMemo::new(snaps);
        self
    }

    /// The lockstep cohort width (`<2` = legacy path).
    pub fn cohort_width(&self) -> usize {
        self.cohort_width
    }

    /// The per-turn trace-chunk size in instructions.
    pub fn cohort_chunk(&self) -> u64 {
        self.chunk_insts
    }

    /// The worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Simulations executed since construction (excludes cache hits).
    pub fn simulated_count(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Measurements served from the cache since construction.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Simulations that replayed a pooled trace instead of regenerating
    /// their benchmark's stream.
    pub fn trace_pool_hits(&self) -> u64 {
        self.traces.hits.load(Ordering::Relaxed)
    }

    /// Stream captures performed by the trace pool (distinct benchmarks
    /// materialized, plus any extensions for longer windows).
    pub fn trace_pool_builds(&self) -> u64 {
        self.traces.builds.load(Ordering::Relaxed)
    }

    /// Names of the benchmarks currently resident in the trace pool,
    /// least-recently-used first. Residency introspection for the
    /// serve fleet's shard-disjointness assertions and observability;
    /// the entry list is tiny (see [`TracePool`]), so snapshotting it
    /// under the lock is cheap.
    pub fn trace_pool_benchmarks(&self) -> Vec<String> {
        self.traces
            .lock()
            .iter()
            .map(|e| e.spec.name().to_string())
            .collect()
    }

    /// Chunk turns answered by splicing a memoized interval snapshot
    /// instead of re-stepping the interval.
    pub fn interval_memo_hits(&self) -> u64 {
        self.memo.hits.load(Ordering::Relaxed)
    }

    /// Interval snapshots retained by the memo.
    pub fn interval_memo_stores(&self) -> u64 {
        self.memo.stores.load(Ordering::Relaxed)
    }

    /// Parallel map over `work` at one window and normal priority (the
    /// homogeneous-batch convenience over [`SweepEngine::run_jobs`]).
    /// Returns runtimes (ns) in work order; [`f64::NAN`] marks an item
    /// whose simulation panicked (callers skip-and-report those instead
    /// of losing the batch).
    pub fn measure(&self, work: &[MeasureItem], window: u64) -> Vec<f64> {
        self.measure_with(work, window, |_, _| {})
    }

    /// [`SweepEngine::measure`] taking ownership of the items — sweep
    /// builders that construct their work list fresh use this to skip a
    /// deep clone per item (a `MeasureItem` carries the benchmark spec
    /// and machine config by value).
    pub fn measure_owned(&self, work: Vec<MeasureItem>, window: u64) -> Vec<f64> {
        self.measure_owned_with(work, window, |_, _| {})
    }

    /// [`SweepEngine::measure`] with a streaming callback: `on_result(i,
    /// ns)` fires exactly once per item, from whichever thread resolved
    /// it, as soon as its value is known — cache hits immediately at
    /// pop, fresh measurements as workers finish them, intra-batch
    /// duplicates (in-flight followers) when their claimer completes.
    pub fn measure_with(
        &self,
        work: &[MeasureItem],
        window: u64,
        on_result: impl Fn(usize, f64) + Sync,
    ) -> Vec<f64> {
        self.measure_owned_with(work.to_vec(), window, on_result)
    }

    /// The one batch-to-jobs adapter all `measure*` flavors funnel
    /// through.
    fn measure_owned_with(
        &self,
        work: Vec<MeasureItem>,
        window: u64,
        on_result: impl Fn(usize, f64) + Sync,
    ) -> Vec<f64> {
        let jobs = work
            .into_iter()
            .map(|item| Job::new(item, window))
            .collect();
        self.run_jobs(jobs, |i, outcome| {
            on_result(i, outcome.runtime_ns().unwrap_or(f64::NAN));
        })
        .into_iter()
        .map(|outcome| outcome.runtime_ns().unwrap_or(f64::NAN))
        .collect()
    }

    /// Runs a heterogeneous job batch to completion and returns the
    /// outcomes in submission order. Jobs may mix windows, machine
    /// styles, priorities, and deadlines freely: workers pull them from
    /// a private [`JobScheduler`] in priority/aging order, duplicates
    /// are simulated once (in-flight dedupe plus the shared cache), and
    /// `on_outcome(i, &outcome)` streams each job's resolution as it
    /// happens.
    pub fn run_jobs(
        &self,
        jobs: Vec<Job>,
        on_outcome: impl Fn(usize, &JobOutcome) + Sync,
    ) -> Vec<JobOutcome> {
        let n = jobs.len();
        // Declared before the scheduler so the completion borrows it
        // holds stay valid for the scheduler's whole lifetime.
        let slots: Vec<std::sync::Mutex<Option<JobOutcome>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let sched = JobScheduler::new();
        let misses;
        {
            let slots = &slots;
            let on_outcome = &on_outcome;
            let mut batch = Vec::new();
            for (i, job) in jobs.into_iter().enumerate() {
                // Cache hits resolve inline — a warm-cache batch (table
                // regeneration) fills every slot right here and never
                // spawns a worker thread.
                if let Some(ns) = self.cache.get(&job.cache_key()) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    let outcome = JobOutcome::Completed {
                        runtime_ns: ns,
                        cached: true,
                    };
                    on_outcome(i, &outcome);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                    continue;
                }
                // Register the job's memo identity before any worker
                // starts: a batch mixing windows of one configuration
                // must mark the identity shareable *before* the first
                // window's cohort runs (and discards) the shared
                // prefix, or sequentially formed cohorts never hit.
                if self.cohort_width >= 2 {
                    self.memo.register(&job.item.memo_identity(), job.window);
                }
                let complete = Box::new(move |_job: Job, outcome: JobOutcome| {
                    on_outcome(i, &outcome);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                }) as crate::sched::Completion<'_>;
                batch.push((job, complete));
            }
            misses = batch.len();
            if misses > 0 {
                assert!(sched.submit_batch(batch), "fresh scheduler is open");
            }
        }
        sched.close();
        if misses > 0 {
            let threads = self.threads.min(misses);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| self.serve_jobs(&sched));
                }
            });
        }
        // Every completion has fired; release the scheduler's borrows
        // before consuming the slot buffer.
        drop(sched);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("a closed scheduler drains every job")
            })
            .collect()
    }

    /// A worker loop over a shared scheduler: pops jobs until the
    /// scheduler is closed and drained. This is the body both of
    /// [`SweepEngine::run_jobs`]'s scoped batch workers and of the
    /// long-lived `gals-serve` worker threads.
    ///
    /// Per popped job, in order:
    ///
    /// 1. **Cache** — a hit completes immediately (even past the
    ///    deadline: it costs nothing).
    /// 2. **Deadline** — an expired job completes as
    ///    [`JobOutcome::Expired`] without simulating.
    /// 3. **Claim** — the job claims its cache key or attaches as a
    ///    follower of the worker already measuring that key.
    /// 4. **Run** — a claimer simulates (a panic is caught and becomes
    ///    [`JobOutcome::Panicked`]), records the cache with batched
    ///    persistence, then fires its own completion and every
    ///    follower's. With `cohort_width ≥ 2` the claimed job anchors a
    ///    lockstep **cohort**: affine jobs are pulled from the queue
    ///    ([`JobScheduler::pop_affine`]), admitted through the same
    ///    steps 1–3, and advanced together over one shared prepared
    ///    trace, each harvesting — and its slot backfilling — as it
    ///    finishes. Cohort execution is bit-identical to one-at-a-time
    ///    (asserted by the cohort integration tests).
    pub fn serve_jobs<'env>(&self, sched: &JobScheduler<'env>) {
        while let Some((job, complete)) = sched.pop() {
            let Some((job, complete)) = self.admit(job, complete, sched) else {
                continue;
            };
            if self.cohort_width >= 2 {
                self.run_cohort(job, complete, sched);
            } else {
                let ns = self.run_one(&job.item, job.window);
                self.finalize(job.cache_key(), ns, job, complete, sched);
            }
        }
    }

    /// Admission steps 1–3 of [`SweepEngine::serve_jobs`] plus the
    /// post-claim re-probe, for one popped job. Returns the job back
    /// when the caller owns its cache key and must simulate; `None`
    /// when the job already resolved (cache hit, expiry, known-panic
    /// key, or attached as an in-flight follower).
    fn admit<'env>(
        &self,
        job: Job,
        complete: Completion<'env>,
        sched: &JobScheduler<'env>,
    ) -> Option<(Job, Completion<'env>)> {
        let key = job.cache_key();
        if let Some(ns) = self.cache.get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            complete(
                job,
                JobOutcome::Completed {
                    runtime_ns: ns,
                    cached: true,
                },
            );
            return None;
        }
        if job.expired_at(Instant::now()) {
            complete(job, JobOutcome::Expired);
            return None;
        }
        if self
            .panicked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains(key.as_str())
        {
            complete(job, JobOutcome::Panicked);
            return None;
        }
        let Claim::Run(job, complete) = sched.claim(key.as_str(), job, complete) else {
            // A follower: the claiming worker fires its completion.
            return None;
        };
        // Re-probe the cache and the panicked set now that the
        // claim is ours: a previous claimer of this key may have
        // finished (populating one of them) between our pop-time
        // probes and the claim — without this, that window
        // re-simulates the key and breaks the "simulated exactly
        // once" accounting.
        if let Some(ns) = self.cache.get(&key) {
            let outcome = JobOutcome::Completed {
                runtime_ns: ns,
                cached: true,
            };
            let followers = sched.release(key.as_str());
            self.cache_hits
                .fetch_add(1 + followers.len() as u64, Ordering::Relaxed);
            complete(job, outcome);
            for (fjob, fcomplete) in followers {
                fcomplete(fjob, outcome);
            }
            return None;
        }
        if self
            .panicked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains(key.as_str())
        {
            let followers = sched.release(key.as_str());
            complete(job, JobOutcome::Panicked);
            for (fjob, fcomplete) in followers {
                fcomplete(fjob, JobOutcome::Panicked);
            }
            return None;
        }
        Some((job, complete))
    }

    /// Step 4's resolution tail: records `ns` (NaN = panicked) for an
    /// admitted job, releases its claim, and fires its completion and
    /// every follower's.
    fn finalize<'env>(
        &self,
        key: CacheKey,
        ns: f64,
        job: Job,
        complete: Completion<'env>,
        sched: &JobScheduler<'env>,
    ) {
        let outcome = if ns.is_finite() {
            self.cache.put(key.clone(), ns);
            self.cache.maybe_save_batched(SAVE_BATCH);
            JobOutcome::Completed {
                runtime_ns: ns,
                cached: false,
            }
        } else {
            self.panicked
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(key.as_str().to_string());
            JobOutcome::Panicked
        };
        let followers = sched.release(key.as_str());
        complete(job, outcome);
        for (fjob, fcomplete) in followers {
            fcomplete(fjob, outcome);
        }
    }

    /// Runs an admitted job as the anchor of a lockstep cohort: same-
    /// benchmark jobs pulled from the queue advance round-robin over
    /// one shared [`PreparedTrace`] in chunks of `chunk_insts`, so the
    /// chunk's fact columns stay cache-resident while every member
    /// crosses them. A member that commits its window (or panics) is
    /// harvested immediately and its slot backfilled from the queue.
    ///
    /// Chunking and cohort composition affect wall clock only: each
    /// member's architectural outcome is bit-identical to a solo
    /// [`SweepEngine::run_one`] (the pacing pause in
    /// [`Simulator::run_chunk`] is stateless), which the determinism
    /// and cohort integration suites assert.
    fn run_cohort<'env>(&self, job: Job, complete: Completion<'env>, sched: &JobScheduler<'env>) {
        let spec = job.item.spec.clone();
        let mut members = Vec::with_capacity(self.cohort_width);
        self.enroll(job, complete, sched, &mut members);
        if members.is_empty() {
            // Pooling unavailable for this job: it already ran solo.
            return;
        }
        self.backfill(&spec, sched, &mut members);

        let chunk = self.chunk_insts.max(1);
        let mut i = 0;
        while !members.is_empty() {
            if i >= members.len() {
                i = 0;
            }
            let m = &mut members[i];
            let next_end = m.chunk_end.saturating_add(chunk);
            // Interval memoization: if another member (any cohort, any
            // worker, any batch) already simulated this identity up to
            // the next chunk boundary, splice its paused state instead
            // of re-stepping the interval. See [`IntervalMemo`] for the
            // soundness argument.
            if next_end < m.prep.len() as u64 {
                let digest = m.prep.prefix_digest(next_end as usize);
                if let Some(sim) = self.memo.probe(&m.identity, next_end, digest, m.job.window) {
                    m.sim = sim;
                    m.chunk_end = next_end;
                    i += 1;
                    continue;
                }
            }
            m.chunk_end = next_end;
            // Once the pacing bound passes the recording's end the
            // capture contract (window + max_in_flight) guarantees the
            // run finishes without it: disable the gate and let the
            // member run to its window.
            let upto = if m.chunk_end >= m.prep.len() as u64 {
                u64::MAX
            } else {
                m.chunk_end
            };
            let window = m.job.window;
            let stepped = {
                let sim = &mut m.sim;
                let prep = &m.prep;
                catch_unwind(AssertUnwindSafe(|| sim.run_chunk(prep, window, upto)))
            };
            match stepped {
                Ok(false) => {
                    // Paused exactly at `chunk_end`: offer the state to
                    // the memo (cheap no-op unless another window of
                    // this identity, enrolled somewhere, can still
                    // splice it).
                    let digest = m.prep.prefix_digest(m.chunk_end as usize);
                    self.memo
                        .store(&m.identity, m.chunk_end, digest, &m.sim, window);
                    i += 1;
                }
                Ok(true) => {
                    let m = members.swap_remove(i);
                    self.simulated.fetch_add(1, Ordering::Relaxed);
                    let key = m.job.cache_key();
                    let (sim, prep) = (m.sim, m.prep);
                    let ns = catch_unwind(AssertUnwindSafe(move || {
                        sim.finish(prep.name()).runtime_ns()
                    }))
                    .unwrap_or(f64::NAN);
                    self.finalize(key, ns, m.job, m.complete, sched);
                    self.backfill(&spec, sched, &mut members);
                }
                Err(_) => {
                    // A model bug tripped by this member's config; the
                    // rest of the cohort is unaffected.
                    let m = members.swap_remove(i);
                    self.simulated.fetch_add(1, Ordering::Relaxed);
                    self.finalize(m.job.cache_key(), f64::NAN, m.job, m.complete, sched);
                    self.backfill(&spec, sched, &mut members);
                }
            }
        }
    }

    /// Builds an admitted job's cohort membership (prepared trace +
    /// fresh simulator). When the pool can't serve a prepared trace
    /// (pooling disabled, or the recording would exceed the bound) the
    /// job runs solo right here instead — the legacy path, identical
    /// results.
    fn enroll<'env>(
        &self,
        job: Job,
        complete: Completion<'env>,
        sched: &JobScheduler<'env>,
        members: &mut Vec<CohortMember<'env>>,
    ) {
        let machine = job.item.machine.clone();
        let need = job.window + machine.params.max_in_flight() as u64;
        let Some(prep) = self
            .traces
            .get_prepared(&job.item.spec, need, machine.params.line_bytes)
        else {
            let ns = self.run_one(&job.item, job.window);
            self.finalize(job.cache_key(), ns, job, complete, sched);
            return;
        };
        let reference_loop = self.reference_loop;
        match catch_unwind(AssertUnwindSafe(|| {
            let mut sim = Simulator::new(machine);
            if reference_loop {
                sim = sim.use_reference_loop();
            }
            sim
        })) {
            Ok(sim) => {
                let identity = job.item.memo_identity();
                self.memo.register(&identity, job.window);
                members.push(CohortMember {
                    job,
                    complete,
                    prep,
                    sim,
                    chunk_end: 0,
                    identity,
                });
            }
            Err(_) => {
                // Construction panicked (a custom-machine model bug):
                // resolve exactly as a panicking solo run would.
                self.simulated.fetch_add(1, Ordering::Relaxed);
                self.finalize(job.cache_key(), f64::NAN, job, complete, sched);
            }
        }
    }

    /// Refills a cohort to `cohort_width` with benchmark-affine jobs
    /// from the queue, admitting each through the standard steps. A
    /// late joiner starts from trace position zero and catches up in
    /// chunk-sized turns — identical state evolution, it just trails
    /// the others through the (still warm) early columns.
    fn backfill<'env>(
        &self,
        spec: &BenchmarkSpec,
        sched: &JobScheduler<'env>,
        members: &mut Vec<CohortMember<'env>>,
    ) {
        while members.len() < self.cohort_width {
            let want = self.cohort_width - members.len();
            let batch = sched.pop_affine(spec, want);
            if batch.is_empty() {
                break;
            }
            for (job, complete) in batch {
                if let Some((job, complete)) = self.admit(job, complete, sched) {
                    self.enroll(job, complete, sched, members);
                }
            }
        }
    }

    /// Runs one simulation, converting a panic (a model bug tripped by
    /// this particular configuration, e.g. the deadlock detector) into
    /// NaN so the rest of the batch survives.
    fn run_one(&self, item: &MeasureItem, window: u64) -> f64 {
        let machine = item.machine.clone();
        let reference_loop = self.reference_loop;
        // A run consumes at most `window` committed instructions plus
        // the in-flight bound of fetched-but-uncommitted ones, so a
        // recording of that length fully substitutes for the live
        // stream (the replay asserts this by refusing to loop).
        let need = window + machine.params.max_in_flight() as u64;
        let trace = self.traces.get(&item.spec, need);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sim = Simulator::new(machine);
            if reference_loop {
                sim = sim.use_reference_loop();
            }
            match &trace {
                Some(t) => sim.run(&mut t.replay(), window).runtime_ns(),
                None => sim.run(&mut item.spec.stream(), window).runtime_ns(),
            }
        }));
        self.simulated.fetch_add(1, Ordering::Relaxed);
        outcome.unwrap_or(f64::NAN)
    }

    /// Persists the cache immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&self) -> std::io::Result<()> {
        self.cache.save()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_core::{McdConfig, SyncConfig};
    use gals_workloads::suite;
    use std::sync::Mutex;

    fn item(bench: &str, mode: &'static str, machine: MachineConfig, key: &str) -> MeasureItem {
        MeasureItem {
            spec: suite::by_name(bench).unwrap(),
            mode,
            config_key: key.to_string(),
            machine,
        }
    }

    #[test]
    fn duplicates_simulated_once_and_streamed() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let work = vec![
            item("adpcm_encode", "sync", sync.clone(), "best"),
            item("adpcm_encode", "sync", sync.clone(), "best"),
            item("adpcm_encode", "sync", sync, "best"),
        ];
        let seen = Mutex::new(Vec::new());
        let results = engine.measure_with(&work, 1_000, |i, ns| {
            seen.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((i, ns));
        });
        assert_eq!(engine.simulated_count(), 1, "batch-internal dedupe");
        assert!(results.iter().all(|&r| r == results[0] && r > 0.0));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(seen.len(), 3, "callback fires once per item");
        assert!(seen.iter().all(|&(_, ns)| ns == results[0]));
    }

    #[test]
    fn cache_hits_skip_simulation() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let work = vec![item(
            "gzip",
            "prog",
            MachineConfig::program_adaptive(McdConfig::smallest()),
            "small",
        )];
        let a = engine.measure(&work, 1_000);
        let b = engine.measure(&work, 1_000);
        assert_eq!(a, b);
        assert_eq!(engine.simulated_count(), 1);
        assert_eq!(engine.cache_hit_count(), 1);
    }

    #[test]
    fn trace_pool_materializes_each_benchmark_once() {
        // One worker: concurrent workers may race a benchmark's first
        // capture (by design — capture happens outside the pool lock),
        // which makes exact build/hit counts nondeterministic.
        let engine = SweepEngine::new(ResultCache::in_memory()).with_threads(1);
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        // Four distinct configs over two benchmarks: two captures, the
        // other six runs replay pooled traces.
        let mut work = Vec::new();
        for bench in ["adpcm_encode", "gzip"] {
            for key in ["a", "b", "c", "d"] {
                work.push(item(bench, "pooltest", sync.clone(), key));
            }
        }
        let results = engine.measure(&work, 1_000);
        assert!(results.iter().all(|r| r.is_finite()));
        assert_eq!(engine.simulated_count(), 8);
        assert_eq!(engine.trace_pool_builds(), 2, "one capture per benchmark");
        assert_eq!(engine.trace_pool_hits(), 6);
    }

    #[test]
    fn trace_pool_extends_for_longer_windows() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let short = vec![item("power", "pooltest", sync.clone(), "w")];
        let long = vec![item("power", "pooltest2", sync, "w")];
        engine.measure(&short, 500);
        engine.measure(&long, 2_000);
        // The second window outgrew the first recording: re-captured.
        assert_eq!(engine.trace_pool_builds(), 2);
        // And the longer recording now serves short windows again.
        let short2 = vec![item("power", "pooltest3", sync_cfg(), "w")];
        engine.measure(&short2, 500);
        assert_eq!(engine.trace_pool_builds(), 2);
        assert!(engine.trace_pool_hits() >= 1);
    }

    fn sync_cfg() -> MachineConfig {
        MachineConfig::synchronous(SyncConfig::paper_best())
    }

    #[test]
    fn disabled_pool_regenerates_streams_and_matches() {
        // One worker on the pooled side: exact build counts (asserted
        // below) are only deterministic without capture races.
        let pooled = SweepEngine::new(ResultCache::in_memory()).with_threads(1);
        let unpooled = SweepEngine::new(ResultCache::in_memory()).without_trace_pool();
        let work = vec![
            item("art", "pooltest", sync_cfg(), "k1"),
            item("art", "pooltest", sync_cfg(), "k2"),
        ];
        let a = pooled.measure(&work, 1_500);
        let b = unpooled.measure(&work, 1_500);
        assert_eq!(a, b, "pooled and per-job-stream runs must be bit-identical");
        assert_eq!(unpooled.trace_pool_builds(), 0);
        assert_eq!(unpooled.trace_pool_hits(), 0);
        assert_eq!(pooled.trace_pool_builds(), 1);
    }

    #[test]
    fn trace_pool_evicts_least_recently_used() {
        let pool = TracePool::new(1_000);
        let a = suite::by_name("gzip").unwrap();
        let b = suite::by_name("art").unwrap();
        let c = suite::by_name("power").unwrap();
        assert!(pool.get(&a, 400).is_some());
        assert!(pool.get(&b, 400).is_some());
        // Touch `a` so `b` is the LRU entry, then overflow with `c`.
        assert!(pool.get(&a, 400).is_some());
        assert!(pool.get(&c, 400).is_some());
        let entries = pool.lock();
        let names: Vec<&str> = entries.iter().map(|e| e.spec.name()).collect();
        assert_eq!(names, ["gzip", "power"], "LRU (art) evicted, MRU kept");
        drop(entries);
        assert!(
            pool.get(&a, 2_000).is_none(),
            "a request beyond the pool bound is declined, not thrashed"
        );
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(SweepEngine::new(ResultCache::in_memory()));
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = engine.clone();
                let work = vec![item("adpcm_encode", "sync", sync.clone(), "best")];
                std::thread::spawn(move || engine.measure(&work, 1_000)[0])
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        // Concurrent batches may race the first measurement, but a
        // re-measured key is bit-identical (determinism), so every
        // caller still observes the same value.
        assert!(engine.simulated_count() >= 1);
    }
}
