//! The reentrant job-driven sweep engine.
//!
//! [`SweepEngine`] is the measurement core shared by the batch-oriented
//! [`Explorer`](crate::Explorer) and the long-lived `gals-serve`
//! process: every method takes `&self`, so one engine (and its sharded
//! [`ResultCache`]) can be wrapped in an `Arc` and driven by many
//! threads concurrently. Work arrives as typed [`Job`]s pulled from a
//! [`JobScheduler`] — priority-ordered, deadline-aware, deduplicated
//! in flight — and each job's completion fires as soon as its value is
//! known, which is what lets a server stream per-job responses to
//! clients while the rest of the queue is still running.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator, SyncConfig};
use gals_workloads::BenchmarkSpec;

use crate::cache::{CacheKey, ResultCache};
use crate::sched::{Claim, Job, JobOutcome, JobScheduler};

/// One unit of sweep work: a benchmark run under a machine configuration
/// at some instruction window.
#[derive(Debug, Clone)]
pub struct MeasureItem {
    /// The workload to stream.
    pub spec: BenchmarkSpec,
    /// Cache namespace: `"sync"`, `"prog"`, or `"phase"`.
    pub mode: &'static str,
    /// Configuration key within the namespace (stable across runs).
    pub config_key: String,
    /// The machine to simulate.
    pub machine: MachineConfig,
}

impl MeasureItem {
    /// A fully synchronous run of `cfg`.
    ///
    /// These constructors are the *only* place the cache-key formats
    /// live: the offline sweeps and the `gals-serve` request expansion
    /// both build items through them, which is what keeps their cache
    /// namespaces shared and their results bit-identical.
    pub fn sync(spec: BenchmarkSpec, cfg: SyncConfig) -> Self {
        MeasureItem {
            spec,
            mode: "sync",
            config_key: cfg.key(),
            machine: MachineConfig::synchronous(cfg),
        }
    }

    /// A program-adaptive run fixed at `cfg`.
    pub fn program(spec: BenchmarkSpec, cfg: McdConfig) -> Self {
        MeasureItem {
            spec,
            mode: "prog",
            config_key: cfg.key(),
            machine: MachineConfig::program_adaptive(cfg),
        }
    }

    /// A phase-adaptive run from the base configuration under `policy`.
    pub fn phase(spec: BenchmarkSpec, policy: ControlPolicy) -> Self {
        MeasureItem {
            spec,
            mode: "phase",
            config_key: format!("ctrl-{}", policy.key()),
            machine: MachineConfig::phase_adaptive(McdConfig::smallest()).with_control(policy),
        }
    }

    /// An item with an explicit machine and cache namespace — the
    /// escape hatch for measurements outside the three standard spaces
    /// (the ablation studies perturb `CoreParams` directly). Callers
    /// own key uniqueness within `mode`; pick a `mode` distinct from
    /// `"sync"`/`"prog"`/`"phase"` so custom results never collide with
    /// the shared sweep namespaces.
    pub fn custom(
        spec: BenchmarkSpec,
        mode: &'static str,
        config_key: String,
        machine: MachineConfig,
    ) -> Self {
        MeasureItem {
            spec,
            mode,
            config_key,
            machine,
        }
    }

    /// The cache key for this item at `window` instructions.
    pub fn cache_key(&self, window: u64) -> CacheKey {
        CacheKey::new(self.spec.name(), self.mode, &self.config_key, window)
    }
}

/// How many freshly measured results accumulate before a worker flushes
/// the cache file (batched persistence: an interrupted sweep loses at
/// most one batch).
const SAVE_BATCH: usize = 256;

/// The work-stealing measurement engine over a sharded result cache.
///
/// All state is interior-mutable behind `&self`; see the
/// [module docs](self) for the sharing story.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    reference_loop: bool,
    cache: ResultCache,
    /// Simulations actually executed (cache misses), for observability.
    simulated: AtomicU64,
    /// Requests served straight from the cache.
    cache_hits: AtomicU64,
    /// Cache keys whose simulation panicked. Panics are model bugs and
    /// deterministic, so re-running the key would just burn a worker to
    /// reach the same panic — later jobs for these keys resolve
    /// [`JobOutcome::Panicked`] immediately. (The result cache can't
    /// hold this: it persists finite runtimes only.)
    panicked: std::sync::Mutex<std::collections::HashSet<String>>,
}

impl SweepEngine {
    /// Builds an engine over `cache`, sized to the available parallelism.
    pub fn new(cache: ResultCache) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine {
            threads,
            reference_loop: false,
            cache,
            simulated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            panicked: std::sync::Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Caps the worker thread count (primarily for single-thread baseline
    /// measurements; defaults to the available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Makes every measurement use the simulator's straightforward
    /// reference loop instead of the event-driven fast path (results are
    /// identical; only wall clock differs).
    #[must_use]
    pub fn with_reference_simulator(mut self) -> Self {
        self.reference_loop = true;
        self
    }

    /// The worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Simulations executed since construction (excludes cache hits).
    pub fn simulated_count(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Measurements served from the cache since construction.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Parallel map over `work` at one window and normal priority (the
    /// homogeneous-batch convenience over [`SweepEngine::run_jobs`]).
    /// Returns runtimes (ns) in work order; [`f64::NAN`] marks an item
    /// whose simulation panicked (callers skip-and-report those instead
    /// of losing the batch).
    pub fn measure(&self, work: &[MeasureItem], window: u64) -> Vec<f64> {
        self.measure_with(work, window, |_, _| {})
    }

    /// [`SweepEngine::measure`] taking ownership of the items — sweep
    /// builders that construct their work list fresh use this to skip a
    /// deep clone per item (a `MeasureItem` carries the benchmark spec
    /// and machine config by value).
    pub fn measure_owned(&self, work: Vec<MeasureItem>, window: u64) -> Vec<f64> {
        self.measure_owned_with(work, window, |_, _| {})
    }

    /// [`SweepEngine::measure`] with a streaming callback: `on_result(i,
    /// ns)` fires exactly once per item, from whichever thread resolved
    /// it, as soon as its value is known — cache hits immediately at
    /// pop, fresh measurements as workers finish them, intra-batch
    /// duplicates (in-flight followers) when their claimer completes.
    pub fn measure_with(
        &self,
        work: &[MeasureItem],
        window: u64,
        on_result: impl Fn(usize, f64) + Sync,
    ) -> Vec<f64> {
        self.measure_owned_with(work.to_vec(), window, on_result)
    }

    /// The one batch-to-jobs adapter all `measure*` flavors funnel
    /// through.
    fn measure_owned_with(
        &self,
        work: Vec<MeasureItem>,
        window: u64,
        on_result: impl Fn(usize, f64) + Sync,
    ) -> Vec<f64> {
        let jobs = work
            .into_iter()
            .map(|item| Job::new(item, window))
            .collect();
        self.run_jobs(jobs, |i, outcome| {
            on_result(i, outcome.runtime_ns().unwrap_or(f64::NAN));
        })
        .into_iter()
        .map(|outcome| outcome.runtime_ns().unwrap_or(f64::NAN))
        .collect()
    }

    /// Runs a heterogeneous job batch to completion and returns the
    /// outcomes in submission order. Jobs may mix windows, machine
    /// styles, priorities, and deadlines freely: workers pull them from
    /// a private [`JobScheduler`] in priority/aging order, duplicates
    /// are simulated once (in-flight dedupe plus the shared cache), and
    /// `on_outcome(i, &outcome)` streams each job's resolution as it
    /// happens.
    pub fn run_jobs(
        &self,
        jobs: Vec<Job>,
        on_outcome: impl Fn(usize, &JobOutcome) + Sync,
    ) -> Vec<JobOutcome> {
        let n = jobs.len();
        // Declared before the scheduler so the completion borrows it
        // holds stay valid for the scheduler's whole lifetime.
        let slots: Vec<std::sync::Mutex<Option<JobOutcome>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let sched = JobScheduler::new();
        let misses;
        {
            let slots = &slots;
            let on_outcome = &on_outcome;
            let mut batch = Vec::new();
            for (i, job) in jobs.into_iter().enumerate() {
                // Cache hits resolve inline — a warm-cache batch (table
                // regeneration) fills every slot right here and never
                // spawns a worker thread.
                if let Some(ns) = self.cache.get(&job.cache_key()) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    let outcome = JobOutcome::Completed {
                        runtime_ns: ns,
                        cached: true,
                    };
                    on_outcome(i, &outcome);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                    continue;
                }
                let complete = Box::new(move |_job: Job, outcome: JobOutcome| {
                    on_outcome(i, &outcome);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                }) as crate::sched::Completion<'_>;
                batch.push((job, complete));
            }
            misses = batch.len();
            if misses > 0 {
                assert!(sched.submit_batch(batch), "fresh scheduler is open");
            }
        }
        sched.close();
        if misses > 0 {
            let threads = self.threads.min(misses);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| self.serve_jobs(&sched));
                }
            });
        }
        // Every completion has fired; release the scheduler's borrows
        // before consuming the slot buffer.
        drop(sched);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("a closed scheduler drains every job")
            })
            .collect()
    }

    /// A worker loop over a shared scheduler: pops jobs until the
    /// scheduler is closed and drained. This is the body both of
    /// [`SweepEngine::run_jobs`]'s scoped batch workers and of the
    /// long-lived `gals-serve` worker threads.
    ///
    /// Per popped job, in order:
    ///
    /// 1. **Cache** — a hit completes immediately (even past the
    ///    deadline: it costs nothing).
    /// 2. **Deadline** — an expired job completes as
    ///    [`JobOutcome::Expired`] without simulating.
    /// 3. **Claim** — the job claims its cache key or attaches as a
    ///    follower of the worker already measuring that key.
    /// 4. **Run** — a claimer simulates (a panic is caught and becomes
    ///    [`JobOutcome::Panicked`]), records the cache with batched
    ///    persistence, then fires its own completion and every
    ///    follower's.
    pub fn serve_jobs(&self, sched: &JobScheduler<'_>) {
        while let Some((job, complete)) = sched.pop() {
            let key = job.cache_key();
            if let Some(ns) = self.cache.get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                complete(
                    job,
                    JobOutcome::Completed {
                        runtime_ns: ns,
                        cached: true,
                    },
                );
                continue;
            }
            if job.expired_at(Instant::now()) {
                complete(job, JobOutcome::Expired);
                continue;
            }
            if self
                .panicked
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .contains(key.as_str())
            {
                complete(job, JobOutcome::Panicked);
                continue;
            }
            let Claim::Run(job, complete) = sched.claim(key.as_str(), job, complete) else {
                // A follower: the claiming worker fires its completion.
                continue;
            };
            // Re-probe the cache and the panicked set now that the
            // claim is ours: a previous claimer of this key may have
            // finished (populating one of them) between our pop-time
            // probes and the claim — without this, that window
            // re-simulates the key and breaks the "simulated exactly
            // once" accounting.
            if let Some(ns) = self.cache.get(&key) {
                let outcome = JobOutcome::Completed {
                    runtime_ns: ns,
                    cached: true,
                };
                let followers = sched.release(key.as_str());
                self.cache_hits
                    .fetch_add(1 + followers.len() as u64, Ordering::Relaxed);
                complete(job, outcome);
                for (fjob, fcomplete) in followers {
                    fcomplete(fjob, outcome);
                }
                continue;
            }
            if self
                .panicked
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .contains(key.as_str())
            {
                let followers = sched.release(key.as_str());
                complete(job, JobOutcome::Panicked);
                for (fjob, fcomplete) in followers {
                    fcomplete(fjob, JobOutcome::Panicked);
                }
                continue;
            }
            let ns = self.run_one(&job.item, job.window);
            let outcome = if ns.is_finite() {
                self.cache.put(key.clone(), ns);
                self.cache.maybe_save_batched(SAVE_BATCH);
                JobOutcome::Completed {
                    runtime_ns: ns,
                    cached: false,
                }
            } else {
                self.panicked
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(key.as_str().to_string());
                JobOutcome::Panicked
            };
            let followers = sched.release(key.as_str());
            complete(job, outcome);
            for (fjob, fcomplete) in followers {
                fcomplete(fjob, outcome);
            }
        }
    }

    /// Runs one simulation, converting a panic (a model bug tripped by
    /// this particular configuration, e.g. the deadlock detector) into
    /// NaN so the rest of the batch survives.
    fn run_one(&self, item: &MeasureItem, window: u64) -> f64 {
        let machine = item.machine.clone();
        let reference_loop = self.reference_loop;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sim = Simulator::new(machine);
            if reference_loop {
                sim = sim.use_reference_loop();
            }
            sim.run(&mut item.spec.stream(), window).runtime_ns()
        }));
        self.simulated.fetch_add(1, Ordering::Relaxed);
        outcome.unwrap_or(f64::NAN)
    }

    /// Persists the cache immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&self) -> std::io::Result<()> {
        self.cache.save()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_core::{McdConfig, SyncConfig};
    use gals_workloads::suite;
    use std::sync::Mutex;

    fn item(bench: &str, mode: &'static str, machine: MachineConfig, key: &str) -> MeasureItem {
        MeasureItem {
            spec: suite::by_name(bench).unwrap(),
            mode,
            config_key: key.to_string(),
            machine,
        }
    }

    #[test]
    fn duplicates_simulated_once_and_streamed() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let work = vec![
            item("adpcm_encode", "sync", sync.clone(), "best"),
            item("adpcm_encode", "sync", sync.clone(), "best"),
            item("adpcm_encode", "sync", sync, "best"),
        ];
        let seen = Mutex::new(Vec::new());
        let results = engine.measure_with(&work, 1_000, |i, ns| {
            seen.lock().unwrap().push((i, ns));
        });
        assert_eq!(engine.simulated_count(), 1, "batch-internal dedupe");
        assert!(results.iter().all(|&r| r == results[0] && r > 0.0));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(seen.len(), 3, "callback fires once per item");
        assert!(seen.iter().all(|&(_, ns)| ns == results[0]));
    }

    #[test]
    fn cache_hits_skip_simulation() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let work = vec![item(
            "gzip",
            "prog",
            MachineConfig::program_adaptive(McdConfig::smallest()),
            "small",
        )];
        let a = engine.measure(&work, 1_000);
        let b = engine.measure(&work, 1_000);
        assert_eq!(a, b);
        assert_eq!(engine.simulated_count(), 1);
        assert_eq!(engine.cache_hit_count(), 1);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(SweepEngine::new(ResultCache::in_memory()));
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = engine.clone();
                let work = vec![item("adpcm_encode", "sync", sync.clone(), "best")];
                std::thread::spawn(move || engine.measure(&work, 1_000)[0])
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        // Concurrent batches may race the first measurement, but a
        // re-measured key is bit-identical (determinism), so every
        // caller still observes the same value.
        assert!(engine.simulated_count() >= 1);
    }
}
