//! The reentrant work-stealing sweep engine.
//!
//! [`SweepEngine`] is the measurement core shared by the batch-oriented
//! [`Explorer`](crate::Explorer) and the long-lived `gals-serve`
//! process: every method takes `&self`, so one engine (and its sharded
//! [`ResultCache`]) can be wrapped in an `Arc` and driven by many
//! threads concurrently. Results stream back through a callback as they
//! complete, which is what lets a server push per-configuration
//! responses to clients while the rest of a batch is still running.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator, SyncConfig};
use gals_workloads::BenchmarkSpec;

use crate::cache::{CacheKey, ResultCache};

/// One unit of sweep work: a benchmark run under a machine configuration
/// at some instruction window.
#[derive(Debug, Clone)]
pub struct MeasureItem {
    /// The workload to stream.
    pub spec: BenchmarkSpec,
    /// Cache namespace: `"sync"`, `"prog"`, or `"phase"`.
    pub mode: &'static str,
    /// Configuration key within the namespace (stable across runs).
    pub config_key: String,
    /// The machine to simulate.
    pub machine: MachineConfig,
}

impl MeasureItem {
    /// A fully synchronous run of `cfg`.
    ///
    /// These constructors are the *only* place the cache-key formats
    /// live: the offline sweeps and the `gals-serve` request expansion
    /// both build items through them, which is what keeps their cache
    /// namespaces shared and their results bit-identical.
    pub fn sync(spec: BenchmarkSpec, cfg: SyncConfig) -> Self {
        MeasureItem {
            spec,
            mode: "sync",
            config_key: cfg.key(),
            machine: MachineConfig::synchronous(cfg),
        }
    }

    /// A program-adaptive run fixed at `cfg`.
    pub fn program(spec: BenchmarkSpec, cfg: McdConfig) -> Self {
        MeasureItem {
            spec,
            mode: "prog",
            config_key: cfg.key(),
            machine: MachineConfig::program_adaptive(cfg),
        }
    }

    /// A phase-adaptive run from the base configuration under `policy`.
    pub fn phase(spec: BenchmarkSpec, policy: ControlPolicy) -> Self {
        MeasureItem {
            spec,
            mode: "phase",
            config_key: format!("ctrl-{}", policy.key()),
            machine: MachineConfig::phase_adaptive(McdConfig::smallest()).with_control(policy),
        }
    }

    /// The cache key for this item at `window` instructions.
    pub fn cache_key(&self, window: u64) -> CacheKey {
        CacheKey::new(self.spec.name(), self.mode, &self.config_key, window)
    }
}

/// How many freshly measured results accumulate before a worker flushes
/// the cache file (batched persistence: an interrupted sweep loses at
/// most one batch).
const SAVE_BATCH: usize = 256;

/// The work-stealing measurement engine over a sharded result cache.
///
/// All state is interior-mutable behind `&self`; see the
/// [module docs](self) for the sharing story.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    reference_loop: bool,
    cache: ResultCache,
    /// Simulations actually executed (cache misses), for observability.
    simulated: AtomicU64,
    /// Requests served straight from the cache.
    cache_hits: AtomicU64,
}

impl SweepEngine {
    /// Builds an engine over `cache`, sized to the available parallelism.
    pub fn new(cache: ResultCache) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine {
            threads,
            reference_loop: false,
            cache,
            simulated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Caps the worker thread count (primarily for single-thread baseline
    /// measurements; defaults to the available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Makes every measurement use the simulator's straightforward
    /// reference loop instead of the event-driven fast path (results are
    /// identical; only wall clock differs).
    #[must_use]
    pub fn with_reference_simulator(mut self) -> Self {
        self.reference_loop = true;
        self
    }

    /// The worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Simulations executed since construction (excludes cache hits).
    pub fn simulated_count(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Measurements served from the cache since construction.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Work-stealing parallel map over `work`. Returns runtimes (ns) in
    /// work order; [`f64::NAN`] marks an item whose simulation panicked
    /// (callers skip-and-report those instead of losing the batch).
    pub fn measure(&self, work: &[MeasureItem], window: u64) -> Vec<f64> {
        self.measure_with(work, window, |_, _| {})
    }

    /// [`SweepEngine::measure`] with a streaming callback: `on_result(i,
    /// ns)` fires exactly once per item, from whichever thread resolved
    /// it, as soon as its value is known — cache hits during the resolve
    /// phase, fresh measurements as workers finish them, intra-batch
    /// duplicates when their representative completes.
    ///
    /// Three phases:
    ///
    /// 1. **Resolve** — cache hits are filled in single-threaded and
    ///    duplicate keys inside the batch are collapsed so each distinct
    ///    configuration is simulated exactly once.
    /// 2. **Steal** — worker threads claim outstanding items from a
    ///    shared atomic index (dynamic load balancing: a thread stuck on
    ///    a slow phase-adaptive run doesn't hold up the others). Each
    ///    worker accumulates results locally — there is no shared
    ///    results lock — and records them in the sharded cache with
    ///    batched persistence. A panicking simulation (e.g. a deadlocked
    ///    model configuration) is caught and reported as NaN; the worker
    ///    moves on to its next item.
    /// 3. **Merge** — per-worker result lists are folded back into work
    ///    order and duplicates copied from their representatives.
    pub fn measure_with(
        &self,
        work: &[MeasureItem],
        window: u64,
        on_result: impl Fn(usize, f64) + Sync,
    ) -> Vec<f64> {
        let n = work.len();
        let mut results = vec![0.0f64; n];

        // Phase 1: resolve hits and dedupe.
        let keys: Vec<CacheKey> = work.iter().map(|it| it.cache_key(window)).collect();
        let mut todo: Vec<usize> = Vec::new();
        let mut first_with_key: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::with_capacity(n);
        let mut duplicates: Vec<(usize, usize)> = Vec::new();
        // Representative index → its duplicates, so a worker can fire
        // their callbacks the moment the one simulation completes
        // (instead of stalling them behind the whole batch).
        let mut dups_of: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            if let Some(ns) = self.cache.get(&keys[i]) {
                results[i] = ns;
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                on_result(i, ns);
            } else if let Some(&j) = first_with_key.get(keys[i].as_str()) {
                duplicates.push((i, j));
                dups_of.entry(j).or_default().push(i);
            } else {
                first_with_key.insert(keys[i].as_str(), i);
                todo.push(i);
            }
        }

        // Phase 2: work-stealing execution of the misses.
        if !todo.is_empty() {
            let next = AtomicUsize::new(0);
            let threads = self.threads.min(todo.len()).max(1);
            let keys = &keys;
            let todo = &todo;
            let next = &next;
            let on_result = &on_result;
            let dups_of = &dups_of;
            let measured: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut local: Vec<(usize, f64)> = Vec::new();
                            loop {
                                let t = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = todo.get(t) else { break };
                                let item = &work[i];
                                let ns = self.run_one(item, window);
                                if ns.is_finite() {
                                    self.cache.put(keys[i].clone(), ns);
                                    self.cache.maybe_save_batched(SAVE_BATCH);
                                }
                                on_result(i, ns);
                                if let Some(dups) = dups_of.get(&i) {
                                    for &d in dups {
                                        on_result(d, ns);
                                    }
                                }
                                local.push((i, ns));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker closures catch panics"))
                    .collect()
            });

            // Phase 3: merge.
            for (i, ns) in measured.into_iter().flatten() {
                results[i] = ns;
            }
        }
        // Duplicate values (their callbacks already fired from the
        // worker that resolved the representative).
        for (i, j) in duplicates {
            results[i] = results[j];
        }
        results
    }

    /// Runs one simulation, converting a panic (a model bug tripped by
    /// this particular configuration, e.g. the deadlock detector) into
    /// NaN so the rest of the batch survives.
    fn run_one(&self, item: &MeasureItem, window: u64) -> f64 {
        let machine = item.machine.clone();
        let reference_loop = self.reference_loop;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sim = Simulator::new(machine);
            if reference_loop {
                sim = sim.use_reference_loop();
            }
            sim.run(&mut item.spec.stream(), window).runtime_ns()
        }));
        self.simulated.fetch_add(1, Ordering::Relaxed);
        outcome.unwrap_or(f64::NAN)
    }

    /// Persists the cache immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&self) -> std::io::Result<()> {
        self.cache.save()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_core::{McdConfig, SyncConfig};
    use gals_workloads::suite;
    use std::sync::Mutex;

    fn item(bench: &str, mode: &'static str, machine: MachineConfig, key: &str) -> MeasureItem {
        MeasureItem {
            spec: suite::by_name(bench).unwrap(),
            mode,
            config_key: key.to_string(),
            machine,
        }
    }

    #[test]
    fn duplicates_simulated_once_and_streamed() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let work = vec![
            item("adpcm_encode", "sync", sync.clone(), "best"),
            item("adpcm_encode", "sync", sync.clone(), "best"),
            item("adpcm_encode", "sync", sync, "best"),
        ];
        let seen = Mutex::new(Vec::new());
        let results = engine.measure_with(&work, 1_000, |i, ns| {
            seen.lock().unwrap().push((i, ns));
        });
        assert_eq!(engine.simulated_count(), 1, "batch-internal dedupe");
        assert!(results.iter().all(|&r| r == results[0] && r > 0.0));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(seen.len(), 3, "callback fires once per item");
        assert!(seen.iter().all(|&(_, ns)| ns == results[0]));
    }

    #[test]
    fn cache_hits_skip_simulation() {
        let engine = SweepEngine::new(ResultCache::in_memory());
        let work = vec![item(
            "gzip",
            "prog",
            MachineConfig::program_adaptive(McdConfig::smallest()),
            "small",
        )];
        let a = engine.measure(&work, 1_000);
        let b = engine.measure(&work, 1_000);
        assert_eq!(a, b);
        assert_eq!(engine.simulated_count(), 1);
        assert_eq!(engine.cache_hit_count(), 1);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(SweepEngine::new(ResultCache::in_memory()));
        let sync = MachineConfig::synchronous(SyncConfig::paper_best());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = engine.clone();
                let work = vec![item("adpcm_encode", "sync", sync.clone(), "best")];
                std::thread::spawn(move || engine.measure(&work, 1_000)[0])
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        // Concurrent batches may race the first measurement, but a
        // re-measured key is bit-identical (determinism), so every
        // caller still observes the same value.
        assert!(engine.simulated_count() >= 1);
    }
}
