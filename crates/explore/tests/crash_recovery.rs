//! Crash-fault-injection suite for the durable result store.
//!
//! Three layers of attack, all deterministic:
//!
//! 1. **Framing codec properties** — proptest over record boundaries:
//!    random record batches, random truncation points, random byte
//!    flips. Replay must always yield an exact prefix of what was
//!    written, never an invented or altered record.
//! 2. **Seeded fault injection** — a `FaultySink` wrapping the real
//!    file sink tears a write, rejects a write, or fails a sync at a
//!    seeded byte offset while a `Wal` writer runs; then the *actual*
//!    `ResultCache::open` recovery path replays the damaged file and
//!    must keep every record the watermark acknowledged.
//! 3. **Concurrent-writer durability** — N threads hammering `put` +
//!    `maybe_save_batched` while checkpoints truncate the WAL under
//!    them: no lost record, no interleaved/corrupt frames.
//!
//! The companion `kill9` test does the same audit with a real SIGKILL.

use std::fs;
use std::path::PathBuf;

use gals_explore::wal::{
    encode_record, scan_wal, FaultKind, FaultPlan, FaultySink, FileSink, SyncPolicy, Wal,
};
use gals_explore::{wal_path_of, CacheKey, ResultCache};
use proptest::prelude::*;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gals-crash-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn key_pool() -> Vec<String> {
    vec![
        String::new(),
        "gcc|sync|cfg0|1000".to_string(),
        "art|prog|i4d2l1f3|120000".to_string(),
        "key with spaces and \"quotes\"".to_string(),
        "pipes|||and\\backslashes".to_string(),
        "unicode-\u{1F600}-\u{00E9}-key".to_string(),
        "x".repeat(300),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip, then damage: truncate anywhere and flip a byte —
    /// replay must return an exact prefix of the written records and
    /// flag the image as damaged whenever it dropped anything.
    #[test]
    fn framing_replay_is_always_an_exact_prefix(
        keys in prop::collection::vec(prop::sample::select(key_pool()), 1..16),
        seed_value in 0.0f64..1e12,
        cut_frac in 0.0f64..1.0,
        flip in any::<bool>(),
        flip_frac in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        let mut written = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            // Values with fractional parts so bit-exactness is a real check.
            let value = seed_value / (i as f64 + 3.0) + 0.125;
            encode_record(i as u64 + 1, key, value, &mut bytes);
            written.push((key.clone(), value));
        }
        let clean = scan_wal(&bytes);
        prop_assert_eq!(clean.corrupt_at, None);
        prop_assert_eq!(clean.records.len(), written.len());
        for (rec, (key, value)) in clean.records.iter().zip(&written) {
            prop_assert_eq!(&rec.key, key);
            prop_assert_eq!(rec.value.to_bits(), value.to_bits());
        }

        let cut = (cut_frac * bytes.len() as f64) as usize;
        let mut damaged = bytes[..cut.min(bytes.len())].to_vec();
        if flip && !damaged.is_empty() {
            let pos = ((flip_frac * damaged.len() as f64) as usize).min(damaged.len() - 1);
            damaged[pos] ^= 0x20;
        }
        let scan = scan_wal(&damaged);
        prop_assert!(scan.records.len() <= clean.records.len());
        for (rec, orig) in scan.records.iter().zip(&clean.records) {
            prop_assert_eq!(rec, orig, "replayed a record that was never written");
        }
        prop_assert!(scan.valid_len <= damaged.len() as u64);
        if scan.valid_len < damaged.len() as u64 {
            prop_assert_eq!(scan.corrupt_at, Some(scan.valid_len));
        }
    }
}

/// Drives a `Wal` writer through a seeded fault against the *real* WAL
/// file of a cache path, then lets `ResultCache::open` recover it.
/// Returns (acknowledged records, recovered cache).
fn fault_round(
    dir: &std::path::Path,
    plan: FaultPlan,
    policy: SyncPolicy,
) -> (Vec<(String, f64)>, ResultCache) {
    let path = dir.join("cache.json");
    let _ = fs::remove_file(&path);
    let wal_file = wal_path_of(&path);
    let _ = fs::remove_file(&wal_file);
    let sink = FaultySink::new(
        FileSink::open_at(&wal_file, 0).expect("create wal file"),
        plan,
    );
    let mut wal = Wal::new(Box::new(sink), policy, 0);
    let mut appended = Vec::new();
    for i in 0..48u64 {
        let key = format!("bench{:02}|fault|cfg{i:04}|2000", i % 7);
        let value = i as f64 * 2.25 + 0.0625;
        let seq = wal.append(&key, value);
        appended.push((seq, key, value));
    }
    let watermark = wal.synced_seq();
    // "Crash": drop the writer with no checkpoint, reopen for real.
    drop(wal);
    let acked: Vec<(String, f64)> = appended
        .iter()
        .filter(|(seq, ..)| *seq <= watermark)
        .map(|(_, k, v)| (k.clone(), *v))
        .collect();
    let cache = ResultCache::open(&path).expect("recover after injected fault");
    (acked, cache)
}

#[test]
fn injected_torn_writes_never_lose_acknowledged_records() {
    let dir = test_dir("torn");
    for seed in 0..12u64 {
        let plan = FaultPlan::seeded(seed, 40, 1600, FaultKind::Torn);
        let (acked, cache) = fault_round(&dir, plan, SyncPolicy::Always);
        for (key, value) in &acked {
            let (bench, rest) = key.split_once('|').expect("key shape");
            let (mode, rest) = rest.split_once('|').expect("key shape");
            let (cfg, window) = rest.split_once('|').expect("key shape");
            let k = CacheKey::new(bench, mode, cfg, window.parse().expect("window"));
            assert_eq!(
                cache.get(&k).map(f64::to_bits),
                Some(value.to_bits()),
                "seed {seed}: acknowledged record lost (recovery: {:?})",
                cache.recovery()
            );
        }
        assert!(
            cache.recovery().wal_records_replayed >= acked.len(),
            "seed {seed}: replay undercounts"
        );
        drop(cache);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn injected_sync_failures_freeze_the_watermark() {
    let dir = test_dir("syncfail");
    for seed in 0..8u64 {
        let plan = FaultPlan::seeded(seed, 60, 900, FaultKind::SyncFail);
        let (acked, cache) = fault_round(&dir, plan, SyncPolicy::Batch(4));
        // Whatever was acked before the fsync fault must be recoverable;
        // the store never acknowledged anything after it.
        assert!(
            cache.recovery().wal_records_replayed >= acked.len(),
            "seed {seed}: lost acknowledged records ({} < {})",
            cache.recovery().wal_records_replayed,
            acked.len()
        );
        drop(cache);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn injected_rejected_writes_degrade_without_corruption() {
    let dir = test_dir("reject");
    for seed in 0..8u64 {
        let plan = FaultPlan::seeded(seed, 40, 900, FaultKind::Reject);
        let (acked, cache) = fault_round(&dir, plan, SyncPolicy::Always);
        // A rejected write lands no bytes: the file must end cleanly on
        // a record boundary with every acknowledged record intact.
        let report = cache.recovery().clone();
        assert_eq!(
            report.wal_torn_at, None,
            "seed {seed}: reject left torn bytes"
        );
        assert_eq!(report.wal_records_replayed, acked.len(), "seed {seed}");
        drop(cache);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_truncated_and_appends_continue() {
    let dir = test_dir("tail");
    let path = dir.join("cache.json");
    {
        let cache = ResultCache::open_with_policy(&path, SyncPolicy::Always).expect("open");
        for i in 0..5 {
            cache.put(
                CacheKey::new("b", "sync", &format!("k{i}"), 1),
                i as f64 + 0.5,
            );
        }
        // Crash without checkpoint: Drop must not run.
        std::mem::forget(cache);
    }
    // Tear the last frame.
    let wal_file = wal_path_of(&path);
    let mut bytes = fs::read(&wal_file).expect("wal exists");
    let torn_len = bytes.len() - 5;
    bytes.truncate(torn_len);
    fs::write(&wal_file, &bytes).expect("tear wal");
    {
        let cache = ResultCache::open(&path).expect("recover");
        let report = cache.recovery().clone();
        assert_eq!(report.wal_records_replayed, 4, "last record torn away");
        assert!(report.wal_torn_at.is_some(), "tear must be reported");
        assert!(cache.get(&CacheKey::new("b", "sync", "k4", 1)).is_none());
        // The writer truncated to the valid prefix: new appends go to a
        // clean tail.
        cache.put(CacheKey::new("b", "sync", "k4b", 1), 99.5);
        cache.save().expect("checkpoint");
    }
    let cache = ResultCache::open(&path).expect("reopen clean");
    assert!(!cache.recovery().had_damage(), "store healed by checkpoint");
    assert_eq!(cache.len(), 5);
    assert_eq!(cache.get(&CacheKey::new("b", "sync", "k4b", 1)), Some(99.5));
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_corruption_stops_replay_at_the_damage() {
    let dir = test_dir("midflip");
    let path = dir.join("cache.json");
    {
        let cache = ResultCache::open_with_policy(&path, SyncPolicy::Always).expect("open");
        for i in 0..5 {
            cache.put(CacheKey::new("b", "sync", &format!("k{i}"), 1), i as f64);
        }
        std::mem::forget(cache);
    }
    let wal_file = wal_path_of(&path);
    let mut bytes = fs::read(&wal_file).expect("wal exists");
    // Flip one byte in the middle of the second frame's payload.
    let frame = bytes.len() / 5;
    bytes[frame + frame / 2] ^= 0x10;
    fs::write(&wal_file, &bytes).expect("corrupt wal");
    let cache = ResultCache::open(&path).expect("recover");
    let report = cache.recovery().clone();
    assert_eq!(
        report.wal_records_replayed, 1,
        "replay stops at first damage"
    );
    assert_eq!(report.wal_torn_at, Some(frame as u64));
    assert!(report.wal_discarded_bytes > 0);
    assert_eq!(cache.get(&CacheKey::new("b", "sync", "k0", 1)), Some(0.0));
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_and_checkpoints_lose_nothing() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 400;
    let dir = test_dir("concurrent");
    let path = dir.join("cache.json");
    let cache = ResultCache::open_with_policy(&path, SyncPolicy::Batch(4)).expect("open");
    let cache_ref = &cache;
    let logs: Vec<Vec<(u64, CacheKey, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                scope.spawn(move || {
                    let mut log = Vec::with_capacity(PER_WRITER);
                    for i in 0..PER_WRITER {
                        let key =
                            CacheKey::new(&format!("w{w}"), "conc", &format!("cfg{i:05}"), 2000);
                        let value = (w * PER_WRITER + i) as f64 + 0.5;
                        let seq = cache_ref.put(key.clone(), value);
                        log.push((seq, key, value));
                        // Races checkpoints (tmp + rename + WAL truncate)
                        // against the other writers' appends.
                        cache_ref.maybe_save_batched(64);
                    }
                    log
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer"))
            .collect()
    });
    let durable = cache.durable_seq();
    assert!(durable > 0, "batched sync must have advanced");
    // Crash: skip the Drop checkpoint.
    std::mem::forget(cache);

    // The on-disk WAL must be frame-clean: concurrent appends never
    // interleave bytes.
    let scan = scan_wal(&fs::read(wal_path_of(&path)).expect("wal exists"));
    assert_eq!(scan.corrupt_at, None, "interleaved/corrupt WAL frames");

    let recovered = ResultCache::open(&path).expect("recover");
    // Every record survived (all appends landed in the page cache; the
    // durability watermark is the *guaranteed* floor, and nothing at
    // all may be lost to the checkpoint/truncate race).
    assert_eq!(
        recovered.len(),
        WRITERS * PER_WRITER,
        "checkpoint racing appends dropped records (recovery: {:?})",
        recovered.recovery()
    );
    for log in &logs {
        for (seq, key, value) in log {
            assert_eq!(
                recovered.get(key).map(f64::to_bits),
                Some(value.to_bits()),
                "seq {seq} lost or altered"
            );
        }
    }
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}
