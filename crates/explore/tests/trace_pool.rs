//! Integration tests for sweep-wide trace sharing: a trace-pooled sweep
//! must be **bit-identical** to a per-job-stream sweep, under both
//! simulator loops, across heterogeneous job batches — because the
//! paper's methodology (and the result cache) assume a (benchmark,
//! config, window) runtime is a pure function of its inputs, however
//! the instruction stream happened to be supplied.

use gals_core::MachineConfig;
use gals_explore::{Job, MeasureItem, Priority, ResultCache, SweepEngine};
use gals_explore::{McdConfig, SyncConfig};
use gals_workloads::suite;

/// A small mixed work list: several sync configs and one program-mode
/// config over a few benchmarks (enough duplicates of each benchmark
/// for pooling to actually be exercised).
fn work_list() -> Vec<MeasureItem> {
    let benches = ["adpcm_encode", "gzip", "art"];
    let configs: Vec<SyncConfig> = SyncConfig::enumerate().into_iter().step_by(97).collect();
    let mut work = Vec::new();
    for bench in benches {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        for cfg in &configs {
            work.push(MeasureItem::sync(spec.clone(), *cfg));
        }
        work.push(MeasureItem::program(spec.clone(), McdConfig::smallest()));
    }
    work
}

#[test]
fn pooled_sweep_is_bit_identical_to_per_job_streams_fast_loop() {
    let work = work_list();
    // One worker on the pooled side: a benchmark's first capture can be
    // raced by concurrent workers (by design — capture happens outside
    // the pool lock, and the losing recording is simply discarded), so
    // the exact build/hit counts asserted below are only deterministic
    // single-threaded. Bit-identity itself holds at any thread count.
    let pooled = SweepEngine::new(ResultCache::in_memory()).with_threads(1);
    let unpooled = SweepEngine::new(ResultCache::in_memory()).without_trace_pool();

    let a = pooled.measure(&work, 1_200);
    let b = unpooled.measure(&work, 1_200);
    assert_eq!(a, b, "trace pooling changed a measured runtime");
    assert!(a.iter().all(|ns| ns.is_finite() && *ns > 0.0));

    // Pooling actually happened: one capture per distinct benchmark,
    // every remaining simulation replayed shared storage.
    assert_eq!(pooled.trace_pool_builds(), 3);
    assert_eq!(
        pooled.trace_pool_hits(),
        pooled.simulated_count() - 3,
        "every non-capturing run must hit the pool"
    );
    assert_eq!(unpooled.trace_pool_builds(), 0);
}

#[test]
fn pooled_sweep_is_bit_identical_to_per_job_streams_reference_loop() {
    // Smaller work list: the reference loop is an order of magnitude
    // slower and the property is per-run, not per-batch-size.
    let work: Vec<MeasureItem> = work_list().into_iter().step_by(3).collect();
    // Single worker for the same reason as the fast-loop test: the
    // `trace_pool_hits() > 0` assertion must not race first captures.
    let pooled = SweepEngine::new(ResultCache::in_memory())
        .with_reference_simulator()
        .with_threads(1);
    let unpooled = SweepEngine::new(ResultCache::in_memory())
        .with_reference_simulator()
        .without_trace_pool();
    let a = pooled.measure(&work, 800);
    let b = unpooled.measure(&work, 800);
    assert_eq!(a, b, "reference-loop pooling changed a measured runtime");
    assert!(pooled.trace_pool_hits() > 0);
}

#[test]
fn pooling_is_invisible_to_heterogeneous_job_batches() {
    // Mixed windows and priorities through the scheduler path
    // (run_jobs), not just the homogeneous measure() wrapper: the pool
    // must serve each window length its required recording.
    let spec = suite::by_name("power").expect("benchmark in suite");
    let jobs = |engine: &SweepEngine| {
        let mk = |key: &str, window: u64, prio: Priority| {
            Job::new(
                MeasureItem::custom(
                    spec.clone(),
                    "pool-itest",
                    key.to_string(),
                    MachineConfig::best_synchronous(),
                ),
                window,
            )
            .with_priority(prio)
        };
        engine.run_jobs(
            vec![
                mk("w-small", 500, Priority::Low),
                mk("w-large", 3_000, Priority::High),
                mk("w-mid", 1_500, Priority::Normal),
            ],
            |_, _| {},
        )
    };
    let pooled = SweepEngine::new(ResultCache::in_memory());
    let unpooled = SweepEngine::new(ResultCache::in_memory()).without_trace_pool();
    let a: Vec<f64> = jobs(&pooled)
        .into_iter()
        .map(|o| o.runtime_ns().unwrap())
        .collect();
    let b: Vec<f64> = jobs(&unpooled)
        .into_iter()
        .map(|o| o.runtime_ns().unwrap())
        .collect();
    assert_eq!(a, b);
}
