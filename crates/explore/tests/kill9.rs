//! The real-crash durability test: SIGKILL a writer child mid-append
//! under load, restart, and assert that every result the store
//! *acknowledged as durable* survived, bit-exact, and that replay
//! accounts for exactly the records on disk.
//!
//! The child is the `wal_torture` helper bin (built by cargo for this
//! crate, located via `CARGO_BIN_EXE_wal_torture`). It prints a flushed
//! `ACK` line only for sequence numbers at or below the durability
//! watermark — the store's own claim of what a crash cannot take. A
//! `kill -9` delivers no signal handler, no Drop, no final checkpoint:
//! whatever the WAL discipline actually made durable is all that's
//! left, which is exactly what this test audits.

use std::io::{BufRead, BufReader, Read};
use std::process::{Command, Stdio};

use gals_explore::{CacheKey, ResultCache};

/// One acknowledged record: (seq, value bits, key).
type Ack = (u64, u64, CacheKey);

fn parse_ack(line: &str) -> Option<Ack> {
    let mut it = line.split_whitespace();
    if it.next()? != "ACK" {
        return None;
    }
    let seq: u64 = it.next()?.parse().ok()?;
    let bits: u64 = it.next()?.parse().ok()?;
    let bench = it.next()?;
    let mode = it.next()?;
    let cfg = it.next()?;
    let window: u64 = it.next()?.parse().ok()?;
    Some((seq, bits, CacheKey::new(bench, mode, cfg, window)))
}

/// Spawns the torture child, kills it after `min_acks` acknowledged
/// records, recovers, and audits.
fn kill9_round(policy: &str, checkpoint_batch: &str, min_acks: usize) {
    let tag = policy.replace(':', "-");
    let dir = std::env::temp_dir().join(format!("gals-kill9-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    let path = dir.join("cache.json");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wal_torture"))
        .arg(&path)
        .arg(policy)
        .arg(checkpoint_batch)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn wal_torture child");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));

    let mut acked: Vec<Ack> = Vec::new();
    let mut line = String::new();
    while acked.len() < min_acks {
        line.clear();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "{policy}: child exited after {} acks", acked.len());
        acked.extend(parse_ack(&line));
    }

    // SIGKILL mid-append: the child gets no chance to flush, sync, or
    // checkpoint anything further.
    child.kill().expect("kill -9 the child");
    // Acks already written to the pipe before the kill landed still
    // count — the store acknowledged them.
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("drain child stdout");
    acked.extend(rest.lines().filter_map(parse_ack));
    child.wait().expect("reap child");

    // Restart: recovery replays checkpoint + WAL tail.
    let cache = ResultCache::open(&path).expect("reopen after crash");
    let report = cache.recovery().clone();

    let mut lost = Vec::new();
    for (seq, bits, key) in &acked {
        match cache.get(key) {
            Some(v) if v.to_bits() == *bits => {}
            got => lost.push((*seq, *bits, got)),
        }
    }
    assert!(
        lost.is_empty(),
        "{policy}: {} acknowledged records lost after kill -9 \
         (first: {:?}; recovery: {report:?})",
        lost.len(),
        lost.first()
    );

    // Replay accounting: the child writes each key exactly once and the
    // checkpoint truncates the WAL, so the recovered map size must equal
    // checkpoint entries + WAL replays — nothing double-counted, nothing
    // silently dropped.
    assert_eq!(
        cache.len(),
        report.checkpoint_entries + report.wal_records_replayed,
        "{policy}: replay count mismatch (recovery: {report:?})"
    );
    assert!(
        cache.len() >= acked.len(),
        "{policy}: recovered fewer records than were acknowledged"
    );

    drop(cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill9_sync_always_loses_nothing_acknowledged() {
    // Every put is fsynced before it is acked; the small checkpoint
    // batch makes some kills land around a checkpoint, exercising the
    // tmp-rename-truncate window under real crash conditions.
    kill9_round("always", "150", 400);
}

#[test]
fn kill9_sync_batched_loses_nothing_acknowledged() {
    // Acks trail appends by up to 8 records; everything acked must
    // still survive.
    kill9_round("batch:8", "150", 400);
}
