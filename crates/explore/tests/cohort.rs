//! Integration tests for batched lockstep sweep execution: a cohort of
//! K same-benchmark configs advancing over one shared prepared trace
//! must produce **bit-identical** results to solo one-job-at-a-time
//! runs, for every cohort width, chunk size, and job order — because
//! cohort composition is a wall-clock concern and a (benchmark, config,
//! window) runtime is a pure function of its inputs.

use std::collections::BTreeMap;

use gals_core::MachineConfig;
use gals_explore::{
    Job, JobOutcome, JobScheduler, MeasureItem, Priority, ResultCache, SweepEngine,
};
use gals_explore::{McdConfig, SyncConfig};
use gals_workloads::suite;

/// A mixed work list over three benchmarks: a spread of sync configs
/// plus one program-adaptive config each, so cohorts form, drain, and
/// backfill across benchmark switches.
fn work_list() -> Vec<MeasureItem> {
    let configs: Vec<SyncConfig> = SyncConfig::enumerate().into_iter().step_by(131).collect();
    let mut work = Vec::new();
    for bench in ["adpcm_encode", "gzip", "art"] {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        for cfg in &configs {
            work.push(MeasureItem::sync(spec.clone(), *cfg));
        }
        work.push(MeasureItem::program(spec.clone(), McdConfig::smallest()));
    }
    work
}

/// Measures `work`, returning runtimes keyed by cache key (comparable
/// across different submission orders).
fn measure_keyed(
    engine: &SweepEngine,
    work: Vec<MeasureItem>,
    window: u64,
) -> BTreeMap<String, f64> {
    let keys: Vec<String> = work
        .iter()
        .map(|item| item.cache_key(window).as_str().to_string())
        .collect();
    let ns = engine.measure_owned(work, window);
    keys.into_iter().zip(ns).collect()
}

#[test]
fn cohort_composition_never_changes_results() {
    const WINDOW: u64 = 900;
    // Solo baseline: cohort disabled, one worker, plain pooled path.
    let solo = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(0);
    let baseline = measure_keyed(&solo, work_list(), WINDOW);
    assert!(baseline.values().all(|ns| ns.is_finite() && *ns > 0.0));

    // Shuffle the composition axes: cohort width K, chunk size C, and
    // job order (rotation mixes which jobs anchor and which backfill).
    for (k, chunk, rotate) in [
        (2usize, 64u64, 0usize),
        (3, striding_chunk(), 5),
        (8, 257, 9),
        (16, 4_096, 13),
    ] {
        let engine = SweepEngine::new(ResultCache::in_memory())
            .with_threads(1)
            .with_cohort_width(k)
            .with_cohort_chunk(chunk);
        let mut work = work_list();
        let n = work.len();
        work.rotate_left(rotate % n);
        let got = measure_keyed(&engine, work, WINDOW);
        assert_eq!(
            baseline, got,
            "cohort (K={k}, C={chunk}, rot={rotate}) diverged from solo runs"
        );
        assert!(
            engine.trace_pool_hits() > 0,
            "cohort path never shared a prepared trace"
        );
    }
}

/// An awkward prime chunk size exercising pause/resume misalignment
/// with fetch groups and adaptation intervals.
fn striding_chunk() -> u64 {
    641
}

#[test]
fn cohorts_match_solo_under_the_reference_loop() {
    const WINDOW: u64 = 700;
    let work: Vec<MeasureItem> = work_list().into_iter().step_by(4).collect();
    let solo = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(0)
        .with_reference_simulator();
    let cohort = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(4)
        .with_cohort_chunk(128)
        .with_reference_simulator();
    let a = measure_keyed(&solo, work.clone(), WINDOW);
    let b = measure_keyed(&cohort, work, WINDOW);
    assert_eq!(a, b, "reference-loop cohorts diverged from solo runs");
}

#[test]
fn serve_jobs_forms_cohorts_from_mixed_batches() {
    // The long-lived server path: heterogeneous jobs (mixed benchmarks,
    // windows, priorities) admitted through one scheduler, drained by
    // `serve_jobs` with cohorts on, must resolve identically to a
    // cohort-free engine — including duplicate keys resolving through
    // in-flight dedupe with one simulation.
    let spec_a = suite::by_name("power").expect("in suite");
    let spec_b = suite::by_name("equake").expect("in suite");
    let jobs = || {
        let mut v = Vec::new();
        for (i, cfg) in SyncConfig::enumerate().into_iter().step_by(211).enumerate() {
            let window = 600 + 300 * (i as u64 % 3);
            let prio = [Priority::Low, Priority::Normal, Priority::High][i % 3];
            v.push(Job::new(MeasureItem::sync(spec_a.clone(), cfg), window).with_priority(prio));
            v.push(Job::new(MeasureItem::sync(spec_b.clone(), cfg), window).with_priority(prio));
        }
        // Duplicate keys: same item + window twice.
        let dup = MeasureItem::sync(spec_a.clone(), SyncConfig::paper_best());
        v.push(Job::new(dup.clone(), 600));
        v.push(Job::new(dup, 600));
        v
    };
    let run = |engine: &SweepEngine| -> Vec<Option<f64>> {
        engine
            .run_jobs(jobs(), |_, _| {})
            .into_iter()
            .map(|o| o.runtime_ns())
            .collect()
    };
    let cohort = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(4)
        .with_cohort_chunk(200);
    let solo = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(0);
    let a = run(&cohort);
    let b = run(&solo);
    assert_eq!(a, b, "served cohort outcomes diverged from solo outcomes");
    assert!(a.iter().all(|ns| ns.is_some()));
    assert_eq!(
        cohort.simulated_count(),
        solo.simulated_count(),
        "cohorts must preserve exactly-once simulation per distinct key"
    );
}

#[test]
fn interval_memo_splices_are_bit_identical() {
    // The memoization scenario: the same configurations measured at two
    // windows share their whole simulation prefix. The memoizing engine
    // must splice snapshots (hits > 0) and still produce results
    // bit-identical to a solo engine and to a memo-disabled cohort
    // engine — and every distinct key still simulates exactly once.
    const W1: u64 = 800;
    const W2: u64 = 1_600;
    let spec = suite::by_name("gzip").expect("benchmark in suite");
    let configs: Vec<SyncConfig> = SyncConfig::enumerate()
        .into_iter()
        .step_by(179)
        .take(4)
        .collect();
    let jobs = || -> Vec<Job> {
        let mut v = Vec::new();
        for w in [W1, W2] {
            for cfg in &configs {
                v.push(Job::new(MeasureItem::sync(spec.clone(), *cfg), w));
            }
        }
        v
    };
    let run = |engine: &SweepEngine| -> Vec<Option<f64>> {
        engine
            .run_jobs(jobs(), |_, _| {})
            .into_iter()
            .map(|o| o.runtime_ns())
            .collect()
    };

    let solo = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(0);
    let memoized = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(8)
        .with_cohort_chunk(128)
        .with_interval_memo_snaps(64);
    let unmemoized = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(8)
        .with_cohort_chunk(128)
        .with_interval_memo_snaps(0);

    let a = run(&solo);
    let b = run(&memoized);
    let c = run(&unmemoized);
    assert!(a.iter().all(|ns| ns.is_some()));
    assert_eq!(a, b, "memoized cohort diverged from solo runs");
    assert_eq!(a, c, "memo-disabled cohort diverged from solo runs");
    assert!(
        memoized.interval_memo_hits() > 0,
        "two windows per config over chunked cohorts must splice \
         (got {} hits, {} stores)",
        memoized.interval_memo_hits(),
        memoized.interval_memo_stores(),
    );
    assert_eq!(unmemoized.interval_memo_hits(), 0);
    assert_eq!(
        memoized.simulated_count(),
        solo.simulated_count(),
        "memoization must not change the exactly-once accounting"
    );
}

#[test]
fn cohort_survives_disabled_trace_pool() {
    // With pooling off, `get_prepared` declines and every job falls
    // back to the solo stream path inside the cohort runner — results
    // unchanged, no pool traffic.
    let engine = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(8)
        .without_trace_pool();
    let baseline = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(0);
    let work: Vec<MeasureItem> = work_list().into_iter().take(6).collect();
    let a = measure_keyed(&engine, work.clone(), 800);
    let b = measure_keyed(&baseline, work, 800);
    assert_eq!(a, b);
    assert_eq!(engine.trace_pool_builds(), 0);
    assert_eq!(engine.trace_pool_hits(), 0);
}

#[test]
fn expired_and_cancelled_jobs_resolve_inside_cohort_backfill() {
    // A job already expired when the cohort backfill admits it must
    // resolve Expired without joining the cohort.
    let spec = suite::by_name("power").expect("in suite");
    let engine = SweepEngine::new(ResultCache::in_memory())
        .with_threads(1)
        .with_cohort_width(4);
    // Declared before the scheduler: completions borrow it until the
    // scheduler (declared later, dropped first) goes away.
    let outcomes = std::sync::Mutex::new(BTreeMap::new());
    let sched = JobScheduler::new();
    let mk = |key: &str| {
        Job::new(
            MeasureItem::custom(
                spec.clone(),
                "cohort-exp",
                key.to_string(),
                MachineConfig::best_synchronous(),
            ),
            600,
        )
        .with_tag(key)
    };
    let live = mk("live");
    let dead = mk("dead").with_deadline(std::time::Instant::now());
    for job in [live, dead] {
        let outcomes = &outcomes;
        let ok = sched.submit(job, move |job: Job, outcome: JobOutcome| {
            outcomes
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(job.tag.clone(), outcome);
        });
        assert!(ok);
    }
    sched.close();
    engine.serve_jobs(&sched);
    drop(sched);
    let outcomes = outcomes.into_inner().unwrap();
    assert!(matches!(
        outcomes["live"],
        JobOutcome::Completed { cached: false, .. }
    ));
    assert_eq!(outcomes["dead"], JobOutcome::Expired);
}
