//! Property test: rule keywords hidden inside comments, strings, and raw
//! strings must never tokenize as code.
//!
//! Every rule matcher keys off `Ident` tokens, so the lexer's whole job
//! is to keep `HashMap` inside a nested block comment (or `Instant`
//! inside a raw string) from ever *becoming* an `Ident`. The property
//! embeds each keyword in every hiding construct with random padding and
//! asserts (a) no identifier token carries the keyword and (b) the rule
//! engine stays silent on a path where the keyword would otherwise fire.
//! A positive control asserts the same keyword in plain code *does*
//! tokenize, so a lexer that swallowed everything could not pass.

use gals_lint::lexer::{lex, TokKind};
use gals_lint::rules::lint_source;
use proptest::prelude::*;

/// Identifiers at least one rule matcher keys off.
const KEYWORDS: &[&str] = &[
    "HashMap",
    "HashSet",
    "Instant",
    "SystemTime",
    "unsafe",
    "format",
    "collect",
    "to_string",
];

/// Wraps `kw` (with `pad` junk identifiers around it) in hiding
/// construct `mode`, inside an otherwise-clean code scaffold.
fn hide(kw: &str, mode: usize, pad: u8) -> String {
    let p = "x".repeat(1 + (pad % 5) as usize);
    let body = format!("{p} {kw} {p}");
    let hidden = match mode {
        0 => format!("// {body}\n"),
        1 => format!("/// {body}\n"),
        2 => format!("/* {body} */\n"),
        3 => format!("/* {p} /* {body} */ {p} */\n"),
        4 => format!("let s = \"{body}\";\n"),
        5 => {
            let hashes = "#".repeat((pad % 4) as usize);
            format!("let s = r{hashes}\"{body}\"{hashes};\n")
        }
        _ => format!("let s = b\"{body}\";\n"),
    };
    format!("let before = 1;\n{hidden}let after = 2;\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn hidden_keywords_never_tokenize_as_code(
        kw in prop::sample::select(KEYWORDS.to_vec()),
        mode in 0usize..7,
        pad in 0u8..255,
    ) {
        let src = hide(kw, mode, pad);
        let leaked: Vec<_> = lex(&src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == kw)
            .collect();
        prop_assert!(
            leaked.is_empty(),
            "keyword {kw:?} leaked out of hiding mode {mode} in {src:?}: {leaked:?}"
        );
        // The scoped path makes every keyword rule-relevant: a mis-lex
        // would surface as a violation.
        let violations = lint_source("crates/core/src/prop_fixture.rs", &src);
        prop_assert!(
            violations.is_empty(),
            "hidden {kw:?} (mode {mode}) tripped rules in {src:?}: {violations:?}"
        );
    }

    #[test]
    fn plain_keywords_do_tokenize(
        kw in prop::sample::select(KEYWORDS.to_vec()),
        pad in 0u8..255,
    ) {
        // Positive control: outside any hiding construct the keyword
        // must come back as an identifier token.
        let p = "y".repeat(1 + (pad % 5) as usize);
        let src = format!("let {p} = {kw};\n");
        prop_assert!(
            lex(&src)
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == kw),
            "keyword {kw:?} failed to tokenize in plain code {src:?}"
        );
    }
}
