//! The self-audit: the workspace that ships this linter must itself be
//! lint-clean. Running this as an ordinary integration test makes
//! `cargo test` enforce the invariant even where the dedicated CI job
//! does not run (local development, downstream forks).

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // crates/lint/../.. is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf();
    let report = gals_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
}
