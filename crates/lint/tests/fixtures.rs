//! Golden tests over the fixture corpus under `tests/fixtures/`.
//!
//! Each rule has one clean fixture (the engine must stay silent) and one
//! violating fixture whose `.expected` sidecar pins the exact
//! `line:col rule` set the engine must report. Fixtures are linted under
//! a *pretend* workspace-relative path so the path-scoped rules
//! (wall-clock crates, the fxmap/env home exemptions) engage exactly as
//! they would on real sources; the workspace walker skips this directory,
//! so the deliberate violations never pollute a real `--check` run.

use gals_lint::rules::lint_source;
use std::fs;
use std::path::PathBuf;

/// (fixture file, pretend workspace-relative path it is linted under).
/// The paths put each fixture where its rule actually bites: wall-clock
/// fixtures inside `crates/core/`, the rest anywhere outside the
/// exempted home modules.
const GOOD: &[(&str, &str)] = &[
    ("determinism_hashmap_good.rs", "crates/serve/src/fixture.rs"),
    (
        "determinism_wallclock_good.rs",
        "crates/core/src/fixture.rs",
    ),
    ("env_discipline_good.rs", "crates/explore/src/fixture.rs"),
    ("lock_poison_good.rs", "crates/explore/src/fixture.rs"),
    ("unsafe_audit_good.rs", "crates/core/tests/fixture.rs"),
    ("unsafe_extern_good.rs", "crates/serve/src/fixture.rs"),
    ("hot_path_alloc_good.rs", "crates/core/src/fixture.rs"),
    ("suppression_hygiene_good.rs", "crates/serve/src/fixture.rs"),
];

const BAD: &[(&str, &str)] = &[
    ("determinism_hashmap_bad.rs", "crates/serve/src/fixture.rs"),
    ("determinism_wallclock_bad.rs", "crates/core/src/fixture.rs"),
    ("env_discipline_bad.rs", "crates/explore/src/fixture.rs"),
    ("lock_poison_bad.rs", "crates/explore/src/fixture.rs"),
    ("unsafe_audit_bad.rs", "crates/core/tests/fixture.rs"),
    ("unsafe_extern_bad.rs", "crates/serve/src/fixture.rs"),
    ("hot_path_alloc_bad.rs", "crates/core/src/fixture.rs"),
    ("suppression_hygiene_bad.rs", "crates/serve/src/fixture.rs"),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(file: &str, pretend: &str) -> String {
    let src = fs::read_to_string(fixture_dir().join(file))
        .unwrap_or_else(|e| panic!("read fixture {file}: {e}"));
    let mut out = String::new();
    for v in lint_source(pretend, &src) {
        out.push_str(&format!("{}:{} {}\n", v.line, v.col, v.rule));
    }
    out
}

#[test]
fn good_fixtures_are_clean() {
    for (file, pretend) in GOOD {
        let got = lint_fixture(file, pretend);
        assert!(
            got.is_empty(),
            "{file} (as {pretend}) should be clean but reported:\n{got}"
        );
    }
}

#[test]
fn bad_fixtures_match_goldens() {
    for (file, pretend) in BAD {
        let got = lint_fixture(file, pretend);
        assert!(!got.is_empty(), "{file} (as {pretend}) reported nothing");
        let golden_path = fixture_dir().join(file.replace(".rs", ".expected"));
        let want = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("read golden {}: {e}", golden_path.display()));
        assert_eq!(
            got, want,
            "{file} (as {pretend}) diverged from its golden; actual output:\n{got}"
        );
    }
}

/// The same bad fixtures linted under paths where their rule does not
/// apply must be clean: scoping is as much a part of each rule as the
/// match itself.
#[test]
fn path_scoping_neutralizes_scoped_rules() {
    for (file, exempt) in [
        // Wall-clock reads are legal outside the simulation crates.
        (
            "determinism_wallclock_bad.rs",
            "crates/bench/src/fixture.rs",
        ),
        // The seeded-map module itself must name HashMap to wrap it.
        ("determinism_hashmap_bad.rs", "crates/common/src/fxmap.rs"),
        // The env wrapper is the one sanctioned std::env call site.
        ("env_discipline_bad.rs", "crates/common/src/env.rs"),
    ] {
        let got = lint_fixture(file, exempt);
        assert!(
            got.is_empty(),
            "{file} under exempt path {exempt} should be clean but reported:\n{got}"
        );
    }
}
