// Fixture: simulated time only — femtosecond counters, no host clocks.

pub type Femtos = u64;

pub fn advance(now: Femtos, step: Femtos) -> Femtos {
    // Instant and SystemTime in prose must not trip the scoped rule.
    now + step
}

pub const DOC: &str = "Instant::now() spelled inside a string is inert";
