// Fixture: raw std::env reads silently swallow malformed overrides.

pub fn window() -> u64 {
    std::env::var("GALS_FIXTURE_WINDOW")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000)
}

pub fn poke() {
    std::env::set_var("GALS_FIXTURE_FLAG", "1");
}
