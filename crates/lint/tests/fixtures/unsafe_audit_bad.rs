// Fixture: unchecked access with no SAFETY justification anywhere near.

pub fn first(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}
