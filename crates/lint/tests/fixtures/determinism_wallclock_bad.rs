// Fixture: host wall-clock reads inside a determinism-critical crate.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
