// Fixture: .lock().unwrap() panics forever after one poisoned lock.
use std::sync::Mutex;

pub fn push(m: &Mutex<Vec<u32>>, x: u32) {
    m.lock().unwrap().push(x);
}

pub fn len(m: &Mutex<Vec<u32>>) -> usize {
    m.lock()
        .unwrap()
        .len()
}
