// Fixture: allocating constructs inside the hot fence — all flagged.

pub fn step(names: &[&str]) -> usize {
    let mut total = 0;
    // lint:hot
    let scratch: Vec<u32> = Vec::new();
    let copies: Vec<String> = names.iter().map(|n| n.to_string()).collect();
    let label = format!("{} entries", copies.len());
    total += scratch.len() + label.len();
    // lint:endhot
    total
}
