// Fixture: a well-formed suppression with a justification is silent.
// lint:allow-file(determinism-hashmap): fixture demonstrates the allow grammar
use std::collections::HashMap;

pub fn flags() -> HashMap<String, String> {
    HashMap::new()
}
