// Fixture: the fenced region only reuses preallocated storage;
// allocation before the fence (construction) is legal.

pub struct Ring {
    slots: Vec<u32>,
    head: usize,
}

impl Ring {
    pub fn with_capacity(cap: usize) -> Ring {
        Ring {
            slots: vec![0; cap],
            head: 0,
        }
    }

    // lint:hot — steady-state stepping must not touch the allocator.
    pub fn push(&mut self, x: u32) {
        let i = self.head % self.slots.len();
        self.slots[i] = x;
        self.head += 1;
    }
    // lint:endhot

    pub fn snapshot(&self) -> Vec<u32> {
        self.slots.clone()
    }
}
