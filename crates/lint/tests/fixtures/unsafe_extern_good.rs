// Fixture: a raw-syscall FFI surface in the serve sys-module idiom —
// the `unsafe extern` declaration block and every call site each carry
// a SAFETY comment stating the invariant that makes them sound.

use std::os::raw::{c_int, c_void};

// SAFETY: signatures mirror the kernel ABI for these syscalls exactly
// (checked against the man pages); linking them is sound and each
// call site below upholds its per-call contract.
unsafe extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

pub fn poller() -> Option<i32> {
    // SAFETY: epoll_create1 has no memory preconditions; the returned
    // fd is owned by the caller, who is responsible for closing it.
    let fd = unsafe { epoll_create1(0) };
    (fd >= 0).then_some(fd)
}

pub fn read_some(fd: i32, buf: &mut [u8]) -> isize {
    // SAFETY: the pointer and length come from a live, exclusively
    // borrowed slice, so the kernel writes only into owned memory.
    unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) }
}

pub fn close_fd(fd: i32) {
    // SAFETY: the caller owns fd and never uses it after this call.
    unsafe { close(fd) };
}
