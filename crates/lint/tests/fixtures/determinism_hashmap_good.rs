// Fixture: seeded FxHash maps everywhere — the engine must stay silent.
use gals_common::fxmap::{FxHashMap, FxHashSet};

pub fn histogram(xs: &[u32]) -> FxHashMap<u32, u32> {
    let mut h = FxHashMap::default();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

pub fn members(xs: &[u32]) -> FxHashSet<u32> {
    xs.iter().copied().collect()
}

pub fn prose() -> &'static str {
    // A HashMap mentioned in a comment is documentation, not code.
    "HashMap and HashSet inside string literals are data"
}
