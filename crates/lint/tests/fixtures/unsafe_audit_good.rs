// Fixture: every unsafe block states the invariant that makes it sound.

pub fn first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
