// Fixture: malformed directives are violations in their own right.
// lint:allow(determinism-hashmap)
// lint:allow(no-such-rule): the rule name is wrong
// lint:frobnicate
// lint:endhot
