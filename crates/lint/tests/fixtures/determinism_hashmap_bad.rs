// Fixture: unseeded std maps — every identifier occurrence is flagged.
use std::collections::{HashMap, HashSet};

pub fn build() -> HashMap<String, u32> {
    let _dedup: HashSet<u32> = HashSet::new();
    HashMap::new()
}
