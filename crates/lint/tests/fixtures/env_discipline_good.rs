// Fixture: all environment access flows through gals_common::env.

pub fn window() -> u64 {
    gals_common::env::parse_env_or("GALS_FIXTURE_WINDOW", 40_000)
}

pub fn cache_path() -> Option<String> {
    gals_common::env::var("GALS_FIXTURE_CACHE")
}

pub fn subset() -> bool {
    gals_common::env::flag("GALS_FIXTURE_SUBSET")
}
