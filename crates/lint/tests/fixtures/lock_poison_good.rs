// Fixture: poisoned locks are recovered, not propagated.
use std::sync::{Mutex, PoisonError};

pub fn drain(m: &Mutex<Vec<u32>>) -> Vec<u32> {
    let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *g)
}
