// Fixture: the same FFI surface with no justification anywhere — the
// `unsafe extern` block and both call sites must each be flagged.

use std::os::raw::c_int;

unsafe extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

pub fn poller() -> i32 {
    unsafe { epoll_create1(0) }
}

pub fn close_fd(fd: i32) {
    unsafe { close(fd) };
}
