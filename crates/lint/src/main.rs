//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! gals-lint --check [PATH]    lint every .rs file under PATH (default .)
//!           --json            machine-readable report on stdout
//!           --list-rules      print the rule table and exit
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut list_rules = false;
    let mut check: Option<PathBuf> = None;
    let mut expect_path = false;

    for arg in &args {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--check" => {
                check = Some(PathBuf::from("."));
                expect_path = true;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if expect_path && !other.starts_with('-') => {
                check = Some(PathBuf::from(other));
                expect_path = false;
            }
            other => {
                eprintln!("gals-lint: unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in gals_lint::rules::RULES {
            println!("{:<22} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = check else {
        eprintln!("gals-lint: nothing to do\n{}", usage());
        return ExitCode::from(2);
    };

    match gals_lint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gals-lint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage: gals-lint [--json] [--list-rules] --check [PATH]\n"
}
