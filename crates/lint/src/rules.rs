//! The rule engine: token-sequence matchers for the six invariant
//! rules, plus the suppression / hot-fence directive grammar.
//!
//! # Rules
//!
//! | id | invariant |
//! |----|-----------|
//! | `determinism-hashmap` | no `std` `HashMap`/`HashSet` outside `gals_common::fxmap` — unseeded `RandomState` iteration order is a determinism hazard |
//! | `determinism-wallclock` | no `Instant`/`SystemTime` inside `gals-core`/`gals-control`/`gals-workloads`/`gals-cache` |
//! | `env-discipline` | no raw `std::env::var` family outside `gals_common::env` |
//! | `lock-poison` | no `.lock().unwrap()` — recover with `PoisonError::into_inner` |
//! | `unsafe-audit` | every `unsafe` carries a `// SAFETY:` comment (same line or ≤ 3 lines above) |
//! | `hot-path-alloc` | no allocating calls inside `// lint:hot` … `// lint:endhot` fences |
//!
//! `suppression-hygiene` is the engine's meta-rule: malformed or
//! unjustified directives are themselves violations, and it cannot be
//! suppressed.
//!
//! # Directives (comments)
//!
//! * `lint:allow(rule[, rule…]): <justification>` — suppresses the named
//!   rules on the directive's line *and the next line* (so both trailing
//!   and line-above placement work). The justification is mandatory.
//! * `lint:allow-file(rule[, rule…]): <justification>` — suppresses the
//!   named rules for the whole file; by convention placed in the header.
//! * `lint:hot` / `lint:endhot` — fence an allocation-free hot region.
//!   Markers live on their own lines; the fenced region is the lines
//!   strictly between them.

use crate::lexer::{lex, Tok, TokKind};

/// Static description of one rule (drives `--list-rules` and the README
/// table).
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// The six source-level rules, in reporting-priority order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism-hashmap",
        summary: "std HashMap/HashSet outside gals_common::fxmap (unseeded \
                  RandomState iteration order is a determinism hazard)",
        hint: "use gals_common::fxmap::{FxHashMap, FxHashSet} (seeded, \
               deterministic) or a BTreeMap for ordered iteration",
    },
    RuleInfo {
        id: "determinism-wallclock",
        summary: "wall-clock time (Instant/SystemTime) in a determinism-critical \
                  crate (gals-core/-control/-workloads/-cache)",
        hint: "simulated time is Femtos; thread wall-clock in from the \
               caller (explore/serve/bench own the real clocks)",
    },
    RuleInfo {
        id: "env-discipline",
        summary: "raw std::env access outside gals_common::env (malformed \
                  overrides get silently swallowed)",
        hint: "use gals_common::env::parse_env_or (typed, loud on malformed \
               values) or gals_common::env::var for strings",
    },
    RuleInfo {
        id: "lock-poison",
        summary: ".lock().unwrap() propagates poison panics across threads",
        hint: "recover the guard: .lock().unwrap_or_else(std::sync::PoisonError::into_inner)",
    },
    RuleInfo {
        id: "unsafe-audit",
        summary: "unsafe without a // SAFETY: comment on the same line or \
                  within 3 lines above",
        hint: "state the invariant that makes this sound in a // SAFETY: comment",
    },
    RuleInfo {
        id: "hot-path-alloc",
        summary: "allocating construct inside a lint:hot fence (the static \
                  twin of alloc_steady_state.rs)",
        hint: "preallocate at construction and reuse; if the allocation is \
               provably off the steady-state path, lint:allow it with the proof",
    },
];

/// The meta-rule id for malformed/unjustified directives.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

fn rule_info(id: &'static str) -> &'static RuleInfo {
    RULES.iter().find(|r| r.id == id).expect("known rule id")
}

/// One reported violation, pointing at a source coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of [`RULES`] or [`SUPPRESSION_HYGIENE`]).
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub hint: &'static str,
}

/// Crates whose sources must stay free of wall-clock reads: the
/// simulation result must be a pure function of (config, trace, seed).
const WALLCLOCK_SCOPED: &[&str] = &[
    "crates/core/",
    "crates/control/",
    "crates/workloads/",
    "crates/cache/",
];

/// The sanctioned homes of the primitives the rules ban elsewhere.
const FXMAP_HOME: &str = "crates/common/src/fxmap.rs";
const ENV_HOME: &str = "crates/common/src/env.rs";

/// Parsed suppression / fence state for one file.
struct Directives {
    /// Rules allowed file-wide.
    file_allows: Vec<&'static str>,
    /// (line, rule): allowed on `line` and `line + 1`.
    line_allows: Vec<(u32, &'static str)>,
    /// Closed hot fences as (start_line, end_line), exclusive bounds.
    fences: Vec<(u32, u32)>,
    /// Directive-grammar violations (unjustified allow, unknown rule,
    /// unbalanced fence, unknown directive).
    hygiene: Vec<Violation>,
}

fn parse_directives(toks: &[Tok<'_>]) -> Directives {
    let mut file_allows: Vec<&'static str> = Vec::new();
    let mut line_allows: Vec<(u32, &'static str)> = Vec::new();
    let mut fences: Vec<(u32, u32)> = Vec::new();
    let mut hygiene: Vec<Violation> = Vec::new();
    let mut open_fence: Option<(u32, u32)> = None; // (line, col)

    for t in toks.iter().filter(|t| t.is_comment()) {
        // Strip the doc-comment markers (`///x` lexes to "/x", `//!x`
        // to "!x") before looking for the directive prefix.
        let text = t.text.trim_start_matches(['/', '!', '*']).trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            // Not a directive comment. A "lint:" deeper inside a
            // sentence is prose, not a directive; requiring the prefix
            // keeps e.g. "see the lint:allow syntax" documentation legal.
            continue;
        };
        let mut bad = |msg: String| {
            hygiene.push(Violation {
                rule: SUPPRESSION_HYGIENE,
                line: t.line,
                col: t.col,
                message: msg,
                hint: "directives: lint:allow(rule): why | lint:allow-file(rule): why \
                       | lint:hot | lint:endhot",
            });
        };
        if rest == "hot" || rest.starts_with("hot ") || rest.starts_with("hot:") {
            if let Some((line, _)) = open_fence {
                bad(format!(
                    "lint:hot while the fence opened on line {line} is still open"
                ));
            } else {
                open_fence = Some((t.line, t.col));
            }
        } else if rest == "endhot" || rest.starts_with("endhot ") || rest.starts_with("endhot:") {
            match open_fence.take() {
                Some((start, _)) => fences.push((start, t.line)),
                None => bad("lint:endhot without an open lint:hot fence".to_string()),
            }
        } else if let Some(args) = rest.strip_prefix("allow-file(") {
            parse_allow(args, true, &mut file_allows, &mut bad);
        } else if let Some(args) = rest.strip_prefix("allow(") {
            let mut here: Vec<&'static str> = Vec::new();
            parse_allow(args, false, &mut here, &mut bad);
            line_allows.extend(here.into_iter().map(|r| (t.line, r)));
        } else {
            bad(format!(
                "unknown lint directive \"lint:{}\"",
                rest.split_whitespace().next().unwrap_or("")
            ));
        }
    }

    if let Some((line, col)) = open_fence {
        hygiene.push(Violation {
            rule: SUPPRESSION_HYGIENE,
            line,
            col,
            message: "lint:hot fence is never closed (missing lint:endhot)".to_string(),
            hint: "close the fence at the bottom of the hot region",
        });
    }

    Directives {
        file_allows,
        line_allows,
        fences,
        hygiene,
    }
}

/// Parses the `rule[, rule…]): justification` tail of an allow
/// directive into `allows`, reporting grammar problems through `bad`.
fn parse_allow(
    args: &str,
    file_wide: bool,
    allows: &mut Vec<&'static str>,
    bad: &mut impl FnMut(String),
) {
    let Some(close) = args.find(')') else {
        bad("lint:allow missing closing parenthesis".to_string());
        return;
    };
    let (list, tail) = args.split_at(close);
    let justification = tail[1..].trim_start_matches([':', '-', ' ']).trim();
    if list.trim().is_empty() {
        bad("lint:allow with an empty rule list".to_string());
    }
    for raw in list.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            continue;
        }
        match RULES.iter().find(|r| r.id == id) {
            Some(r) => allows.push(r.id),
            None => bad(format!("lint:allow names unknown rule \"{id}\"")),
        }
    }
    if justification
        .chars()
        .filter(|c| c.is_alphanumeric())
        .count()
        < 3
    {
        bad(format!(
            "suppression without a justification — every lint:allow{} must say why",
            if file_wide { "-file" } else { "" }
        ));
    }
}

/// Matches on the non-comment token stream.
struct Matcher<'a> {
    code: Vec<Tok<'a>>,
}

impl<'a> Matcher<'a> {
    fn ident(&self, i: usize, text: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    fn any_ident(&self, i: usize, texts: &[&str]) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && texts.contains(&t.text))
    }

    fn punct(&self, i: usize, ch: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    }

    fn path_sep(&self, i: usize) -> bool {
        self.punct(i, ":") && self.punct(i + 1, ":")
    }

    /// `.name()` with no arguments starting at `i` (the dot).
    fn nullary_method(&self, i: usize, name: &str) -> bool {
        self.punct(i, ".")
            && self.ident(i + 1, name)
            && self.punct(i + 2, "(")
            && self.punct(i + 3, ")")
    }
}

/// Lints one file's source. `rel_path` is the workspace-relative path
/// with `/` separators — rule scoping (wall-clock crates, the fxmap/env
/// exemptions) keys off it.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let d = parse_directives(&toks);

    // Comment lines that satisfy the SAFETY audit.
    let safety_lines: Vec<u32> = toks
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect();

    let m = Matcher {
        code: toks.iter().filter(|t| !t.is_comment()).copied().collect(),
    };

    let in_wallclock_scope = WALLCLOCK_SCOPED.iter().any(|p| rel_path.starts_with(p));
    let is_fxmap_home = rel_path == FXMAP_HOME;
    let is_env_home = rel_path == ENV_HOME;
    let in_fence = |line: u32| d.fences.iter().any(|&(s, e)| line > s && line < e);

    let mut out: Vec<Violation> = Vec::new();
    let mut push = |id: &'static str, t: &Tok<'_>, message: String| {
        out.push(Violation {
            rule: id,
            line: t.line,
            col: t.col,
            message,
            hint: rule_info(id).hint,
        });
    };

    for i in 0..m.code.len() {
        let t = &m.code[i];

        // determinism-hashmap
        if !is_fxmap_home
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(
                "determinism-hashmap",
                t,
                format!("{} has unseeded RandomState iteration order", t.text),
            );
        }

        // determinism-wallclock
        if in_wallclock_scope
            && t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
        {
            push(
                "determinism-wallclock",
                t,
                format!("{} read in a determinism-critical crate", t.text),
            );
        }

        // env-discipline: `env :: var…`, unless the path is
        // `gals_common::env::…` (the sanctioned module itself).
        if !is_env_home
            && t.kind == TokKind::Ident
            && t.text == "env"
            && m.path_sep(i + 1)
            && m.any_ident(
                i + 3,
                &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"],
            )
        {
            let via_gals_common = i >= 3 && m.ident(i - 3, "gals_common") && m.path_sep(i - 2);
            if !via_gals_common {
                push(
                    "env-discipline",
                    t,
                    format!(
                        "raw std::env::{} bypasses gals_common::env",
                        m.code[i + 3].text
                    ),
                );
            }
        }

        // lock-poison: `. lock ( ) . unwrap ( )`
        if m.nullary_method(i, "lock") && m.nullary_method(i + 4, "unwrap") {
            push(
                "lock-poison",
                &m.code[i + 5],
                ".lock().unwrap() panics forever after one poisoned lock".to_string(),
            );
        }

        // unsafe-audit
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            let covered = safety_lines.iter().any(|&l| l <= t.line && t.line - l <= 3);
            if !covered {
                push(
                    "unsafe-audit",
                    t,
                    "unsafe without a // SAFETY: comment".to_string(),
                );
            }
        }

        // hot-path-alloc
        if in_fence(t.line) {
            let flagged: Option<String> = if t.kind == TokKind::Ident
                && ["Vec", "Box", "Rc", "Arc", "String", "VecDeque", "BTreeMap"].contains(&t.text)
                && m.path_sep(i + 1)
                && m.any_ident(i + 3, &["new", "with_capacity", "from"])
            {
                Some(format!("{}::{}", t.text, m.code[i + 3].text))
            } else if t.kind == TokKind::Ident
                && (t.text == "vec" || t.text == "format")
                && m.punct(i + 1, "!")
            {
                Some(format!("{}!", t.text))
            } else if m.nullary_method(i, "to_string")
                || m.nullary_method(i, "to_owned")
                || m.nullary_method(i, "to_vec")
                || m.nullary_method(i, "clone")
            {
                Some(format!(".{}()", m.code[i + 1].text))
            } else if m.punct(i, ".") && m.ident(i + 1, "collect") {
                Some(".collect".to_string())
            } else {
                None
            };
            if let Some(what) = flagged {
                push(
                    "hot-path-alloc",
                    t,
                    format!("{what} allocates inside a lint:hot region"),
                );
            }
        }
    }

    // Apply suppressions (hygiene violations are never suppressible).
    let allowed = |v: &Violation| {
        d.file_allows.contains(&v.rule)
            || d.line_allows
                .iter()
                .any(|&(l, r)| r == v.rule && (v.line == l || v.line == l + 1))
    };
    let mut all: Vec<Violation> = out.into_iter().filter(|v| !allowed(v)).collect();
    all.extend(d.hygiene);
    all.sort_by_key(|v| (v.line, v.col, v.rule));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hashmap_flagged_everywhere_but_fxmap_home() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_hit("crates/serve/src/x.rs", src),
            ["determinism-hashmap"]
        );
        assert!(rules_hit(FXMAP_HOME, src).is_empty());
    }

    #[test]
    fn wallclock_scoped_to_simulation_crates() {
        let src = "let t = Instant::now();\n";
        assert_eq!(
            rules_hit("crates/core/src/sim.rs", src),
            ["determinism-wallclock"]
        );
        assert!(rules_hit("crates/bench/src/bin/throughput.rs", src).is_empty());
    }

    #[test]
    fn env_via_gals_common_is_sanctioned() {
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", "std::env::var(\"X\");"),
            ["env-discipline"]
        );
        assert!(rules_hit(
            "crates/serve/src/server.rs",
            "gals_common::env::var(\"X\");"
        )
        .is_empty());
        assert!(rules_hit(ENV_HOME, "std::env::var(name)").is_empty());
    }

    #[test]
    fn lock_unwrap_multiline_still_caught() {
        assert_eq!(
            rules_hit("crates/x/src/a.rs", "m\n  .lock()\n  .unwrap();"),
            ["lock-poison"]
        );
        assert!(rules_hit(
            "crates/x/src/a.rs",
            "m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_needs_nearby_safety_comment() {
        assert_eq!(
            rules_hit("crates/x/src/a.rs", "unsafe { go() }"),
            ["unsafe-audit"]
        );
        assert!(rules_hit(
            "crates/x/src/a.rs",
            "// SAFETY: slot is in bounds by construction\nunsafe { go() }"
        )
        .is_empty());
        // Too far away does not count.
        assert_eq!(
            rules_hit(
                "crates/x/src/a.rs",
                "// SAFETY: stale\n\n\n\n\nunsafe { go() }"
            ),
            ["unsafe-audit"]
        );
    }

    #[test]
    fn hot_fence_flags_allocs_only_inside() {
        let src = "let a = Vec::new();\n// lint:hot\nlet b = Vec::new();\nlet c = x.clone();\n// lint:endhot\nlet d = format!(\"x\");\n";
        let v = lint_source("crates/x/src/a.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 4);
    }

    #[test]
    fn allow_requires_justification() {
        let src = "// lint:allow(determinism-hashmap)\nuse std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), [SUPPRESSION_HYGIENE]);
        let src =
            "// lint:allow(determinism-hashmap): CLI flag table, order never observed\nuse std::collections::HashMap;\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn allow_file_and_trailing_allow() {
        let src = "//! lint:allow-file(determinism-wallclock): example measures wall time\nuse std::time::Instant;\nlet t = Instant::now();\n";
        assert!(rules_hit("crates/core/examples/e.rs", src).is_empty());
        let src = "let m = x.lock().unwrap(); // lint:allow(lock-poison): single-threaded test\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unknown_rule_and_unbalanced_fence_are_hygiene() {
        assert_eq!(
            rules_hit(
                "crates/x/src/a.rs",
                "// lint:allow(no-such-rule): because\n"
            ),
            [SUPPRESSION_HYGIENE]
        );
        assert_eq!(
            rules_hit("crates/x/src/a.rs", "// lint:hot\nlet x = 1;\n"),
            [SUPPRESSION_HYGIENE]
        );
        assert_eq!(
            rules_hit("crates/x/src/a.rs", "// lint:endhot\n"),
            [SUPPRESSION_HYGIENE]
        );
    }

    #[test]
    fn directives_inside_strings_are_inert() {
        let src = "let s = \"// lint:allow(determinism-hashmap): nope\";\nuse std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), ["determinism-hashmap"]);
    }
}
