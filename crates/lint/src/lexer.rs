//! A hand-rolled Rust lexer, just deep enough to be trustworthy.
//!
//! The rule engine in [`crate::rules`] matches on *token* sequences, so
//! the one job of this module is to never mistake the inside of a string
//! literal, a character literal, or a (possibly nested) comment for
//! code. The full grammar it understands:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   nested to arbitrary depth, `/** */`, `/*! */`);
//! * string literals with escapes (`"a\"b"`), byte strings (`b"..."`),
//!   C strings (`c"..."`), and raw strings of every hash depth
//!   (`r"..."`, `r#"..."#`, `br##"..."##`, `cr#"..."#`);
//! * character and byte-character literals (`'x'`, `'\''`, `'\u{1F4A9}'`,
//!   `b'\n'`) disambiguated from lifetimes (`'a`, `'static`, `'_`);
//! * identifiers and keywords (one token kind — the rules match on
//!   text), raw identifiers (`r#match`), numeric literals (enough to not
//!   split `1_000u64` or glue `x.0.clone()` together), and single-byte
//!   punctuation.
//!
//! Every token carries its 1-based line and column so violations point
//! at real source coordinates. The lexer never fails: unterminated
//! literals and comments degrade into a token that runs to end of file,
//! which is the right behavior for a linter (rustc will reject the file
//! anyway; we must still not misread the rest as code).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    CharLit,
    /// String, byte-string, or C-string literal with escapes.
    StrLit,
    /// Raw (or raw-byte / raw-C) string literal, any hash depth.
    RawStrLit,
    /// Numeric literal (`42`, `1_000u64`, `0xFF`, `1.5e-3`).
    NumLit,
    /// One byte of punctuation (`:`, `.`, `!`, `(`, …).
    Punct,
    /// `//…` comment, text *without* the leading slashes.
    LineComment,
    /// `/*…*/` comment (nesting folded in), text without delimiters.
    BlockComment,
}

/// One lexed token: kind, source text, and 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    /// For comments, the *interior* text; for everything else, the full
    /// source slice of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
}

impl Tok<'_> {
    /// True for the comment kinds (the rule engine reads directives from
    /// these and skips them when matching code).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Advances one byte, tracking line/col. Multi-byte UTF-8
    /// continuation bytes do not bump the column, so columns count
    /// characters-ish on ASCII (exact where it matters: rule keywords
    /// are ASCII).
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if !self.eof() {
                self.bump();
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a flat token stream (whitespace dropped, comments
/// kept — the rule engine needs them for directives and `SAFETY:`
/// audits).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut c = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while !c.eof() {
        let b = c.peek(0);

        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        let (line, col, start) = (c.line, c.col, c.pos);

        // Comments.
        if b == b'/' && c.peek(1) == b'/' {
            c.bump_n(2);
            let text_start = c.pos;
            while !c.eof() && c.peek(0) != b'\n' {
                c.bump();
            }
            out.push(Tok {
                kind: TokKind::LineComment,
                text: &c.src[text_start..c.pos],
                line,
                col,
            });
            continue;
        }
        if b == b'/' && c.peek(1) == b'*' {
            c.bump_n(2);
            let text_start = c.pos;
            let mut depth = 1usize;
            let mut text_end = c.pos;
            while !c.eof() {
                if c.peek(0) == b'/' && c.peek(1) == b'*' {
                    depth += 1;
                    c.bump_n(2);
                } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                    depth -= 1;
                    c.bump_n(2);
                    if depth == 0 {
                        text_end = c.pos - 2;
                        break;
                    }
                } else {
                    c.bump();
                }
                text_end = c.pos;
            }
            out.push(Tok {
                kind: TokKind::BlockComment,
                text: &c.src[text_start..text_end],
                line,
                col,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings / C strings.
        // Prefixes: r" r#" r#ident  b" b' br" br#"  c" cr" cr#"
        if is_ident_start(b) {
            // Look ahead for a literal prefix before treating this as a
            // plain identifier.
            let p1 = c.peek(1);
            let p2 = c.peek(2);
            match b {
                b'r' | b'b' | b'c' if p1 == b'"' => {
                    // r"…" / b"…" / c"…" — b and c cook escapes like a
                    // normal string; r is raw with zero hashes.
                    c.bump(); // prefix
                    if b == b'r' {
                        lex_raw_str(&mut c, 0);
                        out.push(tok_at(&c, start, line, col, TokKind::RawStrLit));
                    } else {
                        lex_cooked_str(&mut c);
                        out.push(tok_at(&c, start, line, col, TokKind::StrLit));
                    }
                    continue;
                }
                b'r' if p1 == b'#' && is_ident_start(p2) && p2 != b'"' => {
                    // Raw identifier r#foo: token text includes r#.
                    c.bump_n(2);
                    while is_ident_continue(c.peek(0)) {
                        c.bump();
                    }
                    out.push(tok_at(&c, start, line, col, TokKind::Ident));
                    continue;
                }
                b'r' | b'c' if p1 == b'#' && (p2 == b'"' || p2 == b'#') => {
                    // r#"…"# and deeper; cr#"…"# reaches here via 'c'
                    // only when followed by #" — but c#ident is not
                    // valid Rust, so hashes after c always mean a raw C
                    // string. For r, hashes may instead start a raw
                    // identifier (r#match); those have an ident char
                    // after the single hash, handled below.
                    let mut hashes = 0usize;
                    while c.peek(1 + hashes) == b'#' {
                        hashes += 1;
                    }
                    if c.peek(1 + hashes) == b'"' {
                        c.bump(); // prefix
                        c.bump_n(hashes);
                        lex_raw_str(&mut c, hashes);
                        out.push(tok_at(&c, start, line, col, TokKind::RawStrLit));
                        continue;
                    }
                    // Not a raw string (e.g. r##x): fall through to a
                    // plain identifier; raw identifiers were handled by
                    // the arm above.
                }
                b'b' if p1 == b'\'' => {
                    // Byte char b'x'.
                    c.bump(); // b
                    c.bump(); // '
                    lex_char_body(&mut c);
                    out.push(tok_at(&c, start, line, col, TokKind::CharLit));
                    continue;
                }
                b'b' if p1 == b'r' && (p2 == b'"' || p2 == b'#') => {
                    // Raw byte string br"…" / br#"…"#.
                    let mut hashes = 0usize;
                    while c.peek(2 + hashes) == b'#' {
                        hashes += 1;
                    }
                    if c.peek(2 + hashes) == b'"' {
                        c.bump_n(2 + hashes);
                        lex_raw_str(&mut c, hashes);
                        out.push(tok_at(&c, start, line, col, TokKind::RawStrLit));
                        continue;
                    }
                    // br not followed by a string: plain identifier.
                }
                b'c' if p1 == b'r' && (p2 == b'"' || p2 == b'#') => {
                    let mut hashes = 0usize;
                    while c.peek(2 + hashes) == b'#' {
                        hashes += 1;
                    }
                    if c.peek(2 + hashes) == b'"' {
                        c.bump_n(2 + hashes);
                        lex_raw_str(&mut c, hashes);
                        out.push(tok_at(&c, start, line, col, TokKind::RawStrLit));
                        continue;
                    }
                }
                _ => {}
            }

            // Plain identifier / keyword.
            while is_ident_continue(c.peek(0)) {
                c.bump();
            }
            out.push(tok_at(&c, start, line, col, TokKind::Ident));
            continue;
        }

        // Cooked string literal.
        if b == b'"' {
            lex_cooked_str(&mut c);
            out.push(tok_at(&c, start, line, col, TokKind::StrLit));
            continue;
        }

        // Lifetime vs char literal.
        if b == b'\'' {
            // Lifetime: 'ident NOT closed by another quote ('a, 'static,
            // '_). Char literal otherwise ('x', '\n', '\u{…}'; also the
            // pathological 'a' where an ident-looking body *is* closed
            // by a quote).
            if is_ident_start(c.peek(1)) && c.peek(1) != b'\'' {
                // Scan the ident run to see whether a quote closes it.
                let mut k = 2;
                while is_ident_continue(c.peek(k)) {
                    k += 1;
                }
                if c.peek(k) != b'\'' {
                    // Lifetime.
                    c.bump(); // '
                    while is_ident_continue(c.peek(0)) {
                        c.bump();
                    }
                    out.push(tok_at(&c, start, line, col, TokKind::Lifetime));
                    continue;
                }
            }
            c.bump(); // '
            lex_char_body(&mut c);
            out.push(tok_at(&c, start, line, col, TokKind::CharLit));
            continue;
        }

        // Numeric literal. Consume the alnum/underscore run (covers
        // 0xFF, 1_000u64, suffixed forms); take a `.` only when a digit
        // follows, so tuple access `x.0.clone()` still yields a `.`
        // punct before `clone`. An exponent sign (1e-5) is left as
        // separate punct+number — no rule cares.
        if b.is_ascii_digit() {
            while is_ident_continue(c.peek(0)) {
                c.bump();
            }
            if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
                c.bump();
                while is_ident_continue(c.peek(0)) {
                    c.bump();
                }
            }
            out.push(tok_at(&c, start, line, col, TokKind::NumLit));
            continue;
        }

        // Everything else: one byte of punctuation.
        c.bump();
        out.push(tok_at(&c, start, line, col, TokKind::Punct));
    }

    out
}

fn tok_at<'a>(c: &Cursor<'a>, start: usize, line: u32, col: u32, kind: TokKind) -> Tok<'a> {
    Tok {
        kind,
        text: &c.src[start..c.pos],
        line,
        col,
    }
}

/// Consumes a cooked string body starting at the opening quote.
fn lex_cooked_str(c: &mut Cursor<'_>) {
    debug_assert_eq!(c.peek(0), b'"');
    c.bump(); // opening quote
    while !c.eof() {
        match c.peek(0) {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Consumes a raw string body (cursor just past `r##…"`’s opening
/// quote position — i.e. pointing at the quote).
fn lex_raw_str(c: &mut Cursor<'_>, hashes: usize) {
    debug_assert_eq!(c.peek(0), b'"');
    c.bump(); // opening quote
    while !c.eof() {
        if c.peek(0) == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if c.peek(1 + k) != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                c.bump_n(1 + hashes);
                return;
            }
        }
        c.bump();
    }
}

/// Consumes a char-literal body (cursor just past the opening quote).
fn lex_char_body(c: &mut Cursor<'_>) {
    while !c.eof() {
        match c.peek(0) {
            b'\\' => c.bump_n(2),
            b'\'' => {
                c.bump();
                return;
            }
            b'\n' => return, // unterminated; don't eat the next line
            _ => c.bump(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_stream() {
        let ts = kinds("let x: u64 = 42;");
        assert_eq!(ts[0], (TokKind::Ident, "let"));
        assert_eq!(ts[1], (TokKind::Ident, "x"));
        assert_eq!(ts[2], (TokKind::Punct, ":"));
        assert_eq!(ts[3], (TokKind::Ident, "u64"));
        assert_eq!(ts[4], (TokKind::Punct, "="));
        assert_eq!(ts[5], (TokKind::NumLit, "42"));
        assert_eq!(ts[6], (TokKind::Punct, ";"));
    }

    #[test]
    fn strings_hide_keywords() {
        assert_eq!(idents(r#"let s = "HashMap::new unsafe";"#), ["let", "s"]);
        assert_eq!(idents(r#"let s = b"Instant::now";"#), ["let", "s"]);
        assert_eq!(idents("let s = \"esc \\\" HashMap\";"), ["let", "s"]);
    }

    #[test]
    fn raw_strings_all_depths() {
        assert_eq!(idents(r###"let s = r"HashMap";"###), ["let", "s"]);
        assert_eq!(idents(r###"let s = r#"un"safe"#;"###), ["let", "s"]);
        assert_eq!(
            idents("let s = r##\"quote \"# still inside\"##;"),
            ["let", "s"]
        );
        assert_eq!(idents(r###"let s = br#"env::var"#;"###), ["let", "s"]);
    }

    #[test]
    fn raw_ident_is_ident() {
        let ts = kinds("let r#match = 1;");
        assert_eq!(ts[1], (TokKind::Ident, "r#match"));
    }

    #[test]
    fn line_and_block_comments() {
        let ts = kinds("a // HashMap trailing\nb");
        assert_eq!(ts[0], (TokKind::Ident, "a"));
        assert_eq!(ts[1], (TokKind::LineComment, " HashMap trailing"));
        assert_eq!(ts[2], (TokKind::Ident, "b"));

        let ts = kinds("a /* outer /* nested HashMap */ still */ b");
        assert_eq!(ts[0].0, TokKind::Ident);
        assert_eq!(ts[1].0, TokKind::BlockComment);
        assert!(ts[1].1.contains("nested HashMap"));
        assert_eq!(ts[2], (TokKind::Ident, "b"));
    }

    #[test]
    fn lifetime_vs_char() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = ts.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        let chars: Vec<_> = ts.iter().filter(|(k, _)| *k == TokKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let ts = kinds("&'static str; &'_ str; 'x'");
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::CharLit).count(), 1);
    }

    #[test]
    fn char_escapes() {
        // '\'' and '\u{1F4A9}' must not derail the stream.
        let ts = kinds(r"let a = '\''; let b = '\u{1F4A9}'; done");
        assert_eq!(ts.last().unwrap(), &(TokKind::Ident, "done"));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::CharLit).count(), 2);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let ts = kinds("x.0.clone()");
        let texts: Vec<&str> = ts.iter().map(|(_, t)| *t).collect();
        assert_eq!(texts, ["x", ".", "0", ".", "clone", "(", ")"]);
        let ts = kinds("1.5e-3 + 0xFFu64 + 1_000");
        assert_eq!(ts[0].0, TokKind::NumLit);
        assert_eq!(ts[0].1, "1.5e");
    }

    #[test]
    fn positions_are_one_based() {
        let ts = lex("ab\n  cd");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let s = \"never closed");
        lex("let s = r#\"never closed");
        lex("/* never closed");
        lex("let c = '");
    }
}
