//! `gals-lint` — workspace-aware static analysis for the invariants the
//! runtime suites can only spot-check.
//!
//! The workspace rests on properties that must hold *everywhere*, not
//! just on the paths the tests happen to exercise: bit-determinism under
//! both simulator loops, zero steady-state heap allocations per
//! instruction, seeded FxHash maps on every hot path, and env access
//! that fails loudly. Runtime tests catch violations after they ship;
//! this pass catches the whole class at review time by scanning every
//! `.rs` file in the workspace with a hand-rolled lexer (no registry
//! access, so no syn/clippy plugins) and a token-sequence rule engine.
//!
//! * [`lexer`] — the tokenizer (comments, strings, raw strings,
//!   lifetimes vs chars — everything that could hide or fake a keyword).
//! * [`rules`] — the six rules, the `lint:allow` suppression grammar,
//!   and the `lint:hot` fence parser.
//! * [`lint_workspace`] — the directory walker and report assembly; the
//!   `gals-lint` binary is a thin CLI over it.
//!
//! Run it as `cargo run -p gals-lint -- --check .` (add `--json` for
//! machine-readable output that future tooling can diff across PRs).

pub mod lexer;
pub mod rules;

use rules::Violation;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A workspace lint run: every violation with its file, plus scan stats.
#[derive(Debug)]
pub struct Report {
    /// (workspace-relative path, violation), sorted by path then line.
    pub violations: Vec<(String, Violation)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report (one line per violation plus a
    /// hint line, then a summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (file, v) in &self.violations {
            out.push_str(&format!(
                "{file}:{}:{}: {}: {}\n    hint: {}\n",
                v.line, v.col, v.rule, v.message, v.hint
            ));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "gals-lint: {} files scanned, 0 violations\n",
                self.files_scanned
            ));
        } else {
            out.push_str(&format!(
                "gals-lint: {} files scanned, {} violation{} in {} file{}\n",
                self.files_scanned,
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" },
                self.distinct_files(),
                if self.distinct_files() == 1 { "" } else { "s" },
            ));
        }
        out
    }

    /// Renders the machine-readable report (`--json`): stable schema so
    /// tooling can diff violation counts across PRs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"gals-lint-v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"violation_count\": {},\n",
            self.violations.len()
        ));
        out.push_str("  \"counts_by_rule\": {");
        let mut rule_ids: Vec<&str> = self.violations.iter().map(|(_, v)| v.rule).collect();
        rule_ids.sort_unstable();
        rule_ids.dedup();
        for (i, id) in rule_ids.iter().enumerate() {
            let n = self
                .violations
                .iter()
                .filter(|(_, v)| v.rule == *id)
                .count();
            out.push_str(&format!(
                "{}\"{}\": {}",
                if i == 0 { "" } else { ", " },
                id,
                n
            ));
        }
        out.push_str("},\n  \"violations\": [\n");
        for (i, (file, v)) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
                 \"message\": \"{}\", \"hint\": \"{}\"}}{}\n",
                json_escape(file),
                v.line,
                v.col,
                v.rule,
                json_escape(&v.message),
                json_escape(v.hint),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn distinct_files(&self) -> usize {
        let mut files: Vec<&str> = self.violations.iter().map(|(f, _)| f.as_str()).collect();
        files.sort_unstable();
        files.dedup();
        files.len()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directory names never descended into: build output, VCS state, and
/// the lint crate's own deliberately-violating fixture corpus.
fn skip_dir(path: &Path, name: &str) -> bool {
    if name == "target" || name.starts_with('.') {
        return true;
    }
    name == "fixtures" && path.ends_with("crates/lint/tests/fixtures")
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    // Deterministic scan order regardless of filesystem enumeration.
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !skip_dir(&path, &name) {
                walk(&path, files)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` (the workspace checkout).
///
/// # Errors
///
/// Fails only on filesystem errors (unreadable directory or file);
/// violations are a *successful* run with a non-clean [`Report`].
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        for v in rules::lint_source(&rel, &src) {
            violations.push((rel.clone(), v));
        }
    }
    violations
        .sort_by(|a, b| (a.0.as_str(), a.1.line, a.1.col).cmp(&(b.0.as_str(), b.1.line, b.1.col)));

    Ok(Report {
        violations,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn fixture_dir_is_skipped() {
        assert!(skip_dir(
            Path::new("/x/crates/lint/tests/fixtures"),
            "fixtures"
        ));
        assert!(!skip_dir(Path::new("/x/crates/serve/fixtures"), "fixtures"));
        assert!(skip_dir(Path::new("/x/target"), "target"));
        assert!(skip_dir(Path::new("/x/.git"), ".git"));
    }
}
