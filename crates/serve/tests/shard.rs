//! Integration tests of the consistent-hash sharded fleet: router
//! determinism, per-shard trace-pool disjointness, and fleet ≡
//! single-server ≡ direct bit-identity.

use std::collections::BTreeMap;

use gals_core::{MachineConfig, McdConfig, Simulator};
use gals_serve::{
    Request, RequestKind, RoutedClient, ServeConfig, Server, ShardRouter, ShardedFleet,
};
use gals_workloads::suite;

const BENCHES: [&str; 6] = ["gzip", "art", "em3d", "health", "bisort", "equake"];

fn prog_request(id: &str, bench: &str, cfg: usize, window: u64) -> Request {
    Request::new(
        id,
        RequestKind::RunConfig {
            bench: bench.to_string(),
            mode: "prog".to_string(),
            cfg: Some(cfg),
            policy: None,
            window,
        },
    )
}

#[test]
fn router_spreads_the_suite() {
    // Not a tautology: with too few virtual nodes a small fleet can
    // leave a shard empty. The suite is ~30 benchmarks; every shard of
    // a small fleet must own at least one.
    for shards in 2..=4 {
        let router = ShardRouter::new(shards);
        let mut owned = vec![0usize; shards];
        for bench in suite::names() {
            owned[router.route(&bench)] += 1;
        }
        assert!(
            owned.iter().all(|&n| n > 0),
            "{shards} shards, ownership {owned:?}: empty shard"
        );
    }
}

/// The acceptance case: an N ≥ 2 fleet serves bit-identically to a
/// single server (and to the direct simulator), while each shard's
/// trace pool holds exactly the benchmarks the router assigned it —
/// provably disjoint residency.
#[test]
fn fleet_is_bit_identical_with_disjoint_trace_pools() {
    const SHARDS: usize = 3;
    let window = 500;
    let fleet = ShardedFleet::start(&ServeConfig::default(), SHARDS).unwrap();
    let mut routed = RoutedClient::connect(&fleet.addrs()).unwrap();
    assert_eq!(routed.route(&Request::new("s", RequestKind::Status)), 0);

    // Collect served runtimes per (bench, cfg) through the fleet.
    let mut fleet_results: BTreeMap<(String, usize), f64> = BTreeMap::new();
    for (i, bench) in BENCHES.iter().enumerate() {
        for r in 0..2 {
            let cfg = (i * 29 + r * 7) % McdConfig::enumerate().len();
            let id = format!("f{i}-{r}");
            let responses = routed
                .request(&prog_request(&id, bench, cfg, window))
                .unwrap();
            match &responses[0] {
                gals_serve::Response::Partial { runtime_ns, .. } => {
                    fleet_results.insert((bench.to_string(), cfg), *runtime_ns);
                }
                other => panic!("{id}: expected partial, got {other:?}"),
            }
        }
    }

    // Residency: each shard's trace pool must hold exactly the
    // benchmarks the router sent it — no overlap, nothing foreign.
    let router = fleet.router().clone();
    let mut expected: Vec<Vec<&str>> = vec![Vec::new(); SHARDS];
    for bench in BENCHES {
        expected[router.route(bench)].push(bench);
    }
    let mut seen_anywhere: Vec<String> = Vec::new();
    for (s, shard_benches) in expected.iter().enumerate() {
        let mut resident = fleet.shard(s).trace_pool_benchmarks();
        resident.sort();
        let mut exp: Vec<String> = shard_benches.iter().map(|b| b.to_string()).collect();
        exp.sort();
        assert_eq!(
            resident, exp,
            "shard {s} pool must hold exactly its routed benchmarks"
        );
        for bench in &resident {
            assert!(
                !seen_anywhere.contains(bench),
                "{bench} resident on two shards"
            );
            seen_anywhere.push(bench.clone());
        }
    }
    // The fleet actually sharded: with 6 benchmarks over 3 shards,
    // no shard simulated everything.
    assert!(
        (0..SHARDS).filter(|&s| !expected[s].is_empty()).count() >= 2,
        "routing degenerated to one shard"
    );
    fleet.shutdown();

    // Single-server pass over the same work.
    let single = Server::start(ServeConfig::default()).unwrap();
    let mut client = gals_serve::Client::connect(single.local_addr()).unwrap();
    for ((bench, cfg), fleet_runtime) in &fleet_results {
        let responses = client
            .request(&prog_request("s", bench, *cfg, window))
            .unwrap();
        let served = match &responses[0] {
            gals_serve::Response::Partial { runtime_ns, .. } => *runtime_ns,
            other => panic!("expected partial, got {other:?}"),
        };
        assert_eq!(
            fleet_runtime.to_bits(),
            served.to_bits(),
            "{bench}/{cfg}: fleet and single-server results must be bit-identical"
        );
        // And both match the direct simulator.
        let direct = Simulator::new(MachineConfig::program_adaptive(
            McdConfig::enumerate()[*cfg],
        ))
        .run(&mut suite::by_name(bench).unwrap().stream(), window)
        .runtime_ns();
        assert_eq!(fleet_runtime.to_bits(), direct.to_bits(), "{bench}/{cfg}");
    }
    single.shutdown();
}
