//! Integration tests of the epoll reactor transport: bit-identity
//! under many multiplexed connections, slow-reader backpressure
//! (bounded memory, other clients unaffected), per-connection fairness
//! quotas, oversize-line rejection, graceful-shutdown frame flushing,
//! and reactor ≡ threads transport equivalence.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator};
use gals_serve::protocol::MAX_LINE_LEN;
use gals_serve::{Client, Request, RequestKind, Response, ServeConfig, Server, Transport};
use gals_workloads::suite;

fn reactor_config() -> ServeConfig {
    ServeConfig {
        transport: Transport::Reactor,
        ..ServeConfig::default()
    }
}

fn prog_request(id: &str, bench: &str, cfg: usize, window: u64) -> Request {
    Request::new(
        id,
        RequestKind::RunConfig {
            bench: bench.to_string(),
            mode: "prog".to_string(),
            cfg: Some(cfg),
            policy: None,
            window,
        },
    )
}

fn phase_request(id: &str, bench: &str, window: u64) -> Request {
    Request::new(
        id,
        RequestKind::RunConfig {
            bench: bench.to_string(),
            mode: "phase".to_string(),
            cfg: None,
            policy: Some(ControlPolicy::PaperArgmin),
            window,
        },
    )
}

fn direct_prog(bench: &str, cfg: usize, window: u64) -> f64 {
    let mcd = McdConfig::enumerate()[cfg];
    Simulator::new(MachineConfig::program_adaptive(mcd))
        .run(&mut suite::by_name(bench).unwrap().stream(), window)
        .runtime_ns()
}

fn partial_runtime(responses: &[Response]) -> f64 {
    match &responses[0] {
        Response::Partial { runtime_ns, .. } => *runtime_ns,
        other => panic!("expected partial, got {other:?}"),
    }
}

/// The tentpole acceptance case: 64 connections multiplexed onto one
/// reactor thread, all in flight at once, every served result
/// bit-identical to the direct simulator run of the same
/// configuration.
#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor requires epoll")]
fn bit_identity_under_64_multiplexed_connections() {
    const CONNS: usize = 64;
    const CFGS: usize = 16;
    let window = 600;
    let server = Server::start(reactor_config()).unwrap();
    assert_eq!(server.transport(), Transport::Reactor);
    let addr = server.local_addr();
    // Precompute the direct runtimes once (the 64 connections reuse 16
    // configurations, which also exercises in-flight dedupe under the
    // reactor).
    let direct: Arc<Vec<f64>> = Arc::new(
        (0..CFGS)
            .map(|c| direct_prog("art", c * 13, window))
            .collect(),
    );
    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            let direct = direct.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for r in 0..2 {
                    let cfg = (c + r * 7) % CFGS;
                    let id = format!("c{c}-r{r}");
                    let responses = client
                        .request(&prog_request(&id, "art", cfg * 13, window))
                        .unwrap();
                    assert_eq!(responses.len(), 2, "one partial + done for {id}");
                    let served = partial_runtime(&responses);
                    assert_eq!(
                        served.to_bits(),
                        direct[cfg].to_bits(),
                        "{id}: served must be bit-identical to direct"
                    );
                    assert!(
                        matches!(
                            responses.last(),
                            Some(Response::Done {
                                results: 1,
                                expired: 0,
                                ..
                            })
                        ),
                        "{id}: clean done frame"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // 16 distinct configurations: dedupe + cache must hold the
    // simulation count at CFGS despite 128 requests.
    assert_eq!(server.simulated_count(), CFGS as u64);
    server.shutdown();
}

/// A reader that stops reading must be bounded and isolated: its
/// outbound queue hitting the byte bound kills *that* connection
/// (cancelling its queued jobs) while a concurrent well-behaved client
/// keeps getting correct results.
#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor requires epoll")]
fn slow_reader_is_bounded_and_isolated() {
    let cfg = ServeConfig {
        // Tight bound: a few frames of headroom beyond one maximal
        // line (the config floor), far below the flood's volume.
        max_outbound_bytes: MAX_LINE_LEN + 1024,
        ..reactor_config()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    // The abuser: floods sync sweeps (1,024 frames ≈ 90 KiB each) and
    // never reads a byte. The volume must exceed what the kernel can
    // silently absorb for an unread socket — tcp_wmem autotunes the
    // send buffer to 4 MiB here — or the bounded queue never fills.
    // Dedupe makes the repeats nearly free: only the first sweep
    // simulates; the rest resolve from cache/in-flight claims.
    let mut abuser = TcpStream::connect(addr).unwrap();
    for i in 0..100 {
        let req = Request::new(
            format!("flood{i}"),
            RequestKind::Sweep {
                bench: "em3d".to_string(),
                mode: "sync".to_string(),
                window: 200,
            },
        );
        abuser.write_all(req.to_line().as_bytes()).unwrap();
        abuser.write_all(b"\n").unwrap();
    }
    abuser.flush().unwrap();

    // Meanwhile a polite client gets correct service.
    let mut client = Client::connect(addr).unwrap();
    let responses = client.request(&prog_request("ok", "gzip", 5, 500)).unwrap();
    assert_eq!(
        partial_runtime(&responses).to_bits(),
        direct_prog("gzip", 5, 500).to_bits(),
        "victim of a noisy neighbor must still get exact results"
    );

    // The server must sever the abuser: once its bounded queue
    // overflows the socket closes (reads see EOF/reset, not timeout).
    abuser
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let start = Instant::now();
    let mut sink = [0u8; 16 * 1024];
    let severed = loop {
        match abuser.read(&mut sink) {
            Ok(0) => break true,
            Ok(_) => {} // Draining what was flushed before the kill.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if start.elapsed() > Duration::from_secs(30) {
                    break false;
                }
            }
            Err(_) => break true, // Reset counts as severed.
        }
    };
    assert!(severed, "slow reader must be disconnected, not buffered");
    // Its undone work was cancelled, not simulated to completion for
    // nobody: the flood queued ~102K jobs and the kill happened
    // mid-stream with sweeps still pending.
    assert!(
        server.cancelled_count() > 0,
        "queued jobs of the dead connection must cancel"
    );
    server.shutdown();
}

/// The per-connection in-flight quota trickles an oversized pipeline
/// through without deadlock or loss: every request completes, in
/// order, with correct results.
#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor requires epoll")]
fn fairness_quota_trickles_pipelined_requests() {
    const REQUESTS: usize = 40;
    let cfg = ServeConfig {
        conn_inflight_limit: 4,
        ..reactor_config()
    };
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Pipeline everything up front: 40 single-job requests against a
    // quota of 4 in-flight jobs.
    for r in 0..REQUESTS {
        client
            .send(&prog_request(&format!("q{r}"), "bisort", r * 3, 400))
            .unwrap();
    }
    let mut done = 0;
    let mut partials = 0;
    while done < REQUESTS {
        match client.read_response().unwrap() {
            Response::Partial { id, runtime_ns, .. } => {
                let r: usize = id[1..].parse().unwrap();
                assert_eq!(
                    runtime_ns.to_bits(),
                    direct_prog("bisort", r * 3, 400).to_bits(),
                    "{id} exact"
                );
                partials += 1;
            }
            Response::Done { .. } => done += 1,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(partials, REQUESTS);
    server.shutdown();
}

/// A request line over the protocol bound earns an error frame and is
/// discarded whole; the connection survives and serves the next
/// request on both transports.
#[test]
fn oversize_line_is_rejected_connection_survives() {
    for transport in [Transport::Reactor, Transport::Threads] {
        if transport == Transport::Reactor && !cfg!(target_os = "linux") {
            continue;
        }
        let server = Server::start(ServeConfig {
            transport,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let giant = "x".repeat(MAX_LINE_LEN + 100);
        client.send_raw(&giant).unwrap();
        match client.read_response().unwrap() {
            Response::Error { message, .. } => {
                assert!(message.contains("exceeds"), "{transport:?}: {message}")
            }
            other => panic!("{transport:?}: expected error frame, got {other:?}"),
        }
        let responses = client
            .request(&prog_request("after", "gzip", 2, 300))
            .unwrap();
        assert_eq!(
            partial_runtime(&responses).to_bits(),
            direct_prog("gzip", 2, 300).to_bits(),
            "{transport:?}: connection must survive an oversize line"
        );
        server.shutdown();
    }
}

/// Graceful shutdown at connection scale: 32 live connections with
/// admitted work; `shutdown()` must flush every owed frame — each
/// request's partial and done — before any socket closes.
#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor requires epoll")]
fn shutdown_flushes_owed_frames_on_live_connections() {
    const CONNS: usize = 32;
    let server = Server::start(reactor_config()).unwrap();
    let addr = server.local_addr();
    let mut clients: Vec<Client> = (0..CONNS)
        .map(|c| {
            let mut client = Client::connect(addr).unwrap();
            client
                .send(&prog_request(&format!("s{c}"), "health", c % 8, 700))
                .unwrap();
            client
        })
        .collect();
    // Give the reactor a beat to admit, then shut down concurrently
    // while nobody has read a single frame yet.
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || server.shutdown());
    for (c, client) in clients.iter_mut().enumerate() {
        let got_done;
        let mut got_result = false;
        loop {
            match client.read_response() {
                Ok(Response::Partial { id, runtime_ns, .. }) => {
                    assert_eq!(id, format!("s{c}"));
                    assert_eq!(
                        runtime_ns.to_bits(),
                        direct_prog("health", c % 8, 700).to_bits()
                    );
                    got_result = true;
                }
                Ok(Response::Done { .. }) => {
                    got_done = true;
                    break;
                }
                Ok(other) => panic!("conn {c}: unexpected frame {other:?}"),
                Err(e) => panic!("conn {c}: owed frames lost: {e}"),
            }
        }
        assert!(got_done && got_result, "conn {c} owed partial + done");
    }
    shutdown.join().unwrap();
}

/// The transport swap must be invisible on the wire: the same request
/// stream through a reactor server and a threads server produces
/// bit-identical runtimes (and both match the direct path).
#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "comparison needs both transports")]
fn transports_are_bit_identical() {
    let mut by_transport: Vec<Vec<f64>> = Vec::new();
    for transport in [Transport::Reactor, Transport::Threads] {
        let server = Server::start(ServeConfig {
            transport,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut runtimes = Vec::new();
        for (i, bench) in ["gzip", "art", "em3d"].iter().enumerate() {
            let responses = client
                .request(&prog_request(&format!("t{i}"), bench, i * 11, 450))
                .unwrap();
            runtimes.push(partial_runtime(&responses));
            let responses = client
                .request(&phase_request(&format!("p{i}"), bench, 450))
                .unwrap();
            runtimes.push(partial_runtime(&responses));
        }
        server.shutdown();
        by_transport.push(runtimes);
    }
    let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&by_transport[0]),
        bits(&by_transport[1]),
        "reactor and threads transports must serve identical results"
    );
}
