//! End-to-end tests of the `gals-serve` wire protocol and server
//! semantics: malformed input, concurrent clients, batching/dedupe,
//! determinism against the direct explorer path, and clean shutdown
//! with in-flight work.

use std::net::{Shutdown, TcpStream};

use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator};
use gals_serve::{Client, Request, RequestKind, Response, ServeConfig, Server};
use gals_workloads::suite;

fn start_server() -> Server {
    Server::start(ServeConfig::default()).expect("bind ephemeral port")
}

fn phase_request(id: &str, bench: &str, window: u64) -> Request {
    Request {
        id: id.to_string(),
        kind: RequestKind::RunConfig {
            bench: bench.to_string(),
            mode: "phase".to_string(),
            cfg: None,
            policy: Some(ControlPolicy::PaperArgmin),
            window,
        },
    }
}

#[test]
fn malformed_requests_get_error_lines() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for bad in [
        "not json at all",
        "{\"op\":\"teleport\",\"id\":\"x\"}",
        "{\"op\":\"run_config\",\"id\":\"x\",\"bench\":\"gzip\",\"mode\":\"sync\"}",
        "{\"op\":\"run_config\",\"id\":\"x\",\"bench\":\"no_such_bench\",\"mode\":\"phase\"}",
        "{\"op\":\"run_config\",\"id\":\"x\",\"bench\":\"gzip\",\"mode\":\"sync\",\"cfg\":999999}",
    ] {
        client.send_raw(bad).unwrap();
        match client.read_response().unwrap() {
            Response::Error { message, .. } => {
                assert!(!message.is_empty(), "{bad:?} should carry a reason")
            }
            other => panic!("{bad:?} should produce an error line, got {other:?}"),
        }
    }
    // The connection survives malformed traffic: a well-formed request
    // still works.
    let responses = client
        .request(&phase_request("ok", "adpcm_encode", 500))
        .unwrap();
    assert!(matches!(responses.last(), Some(Response::Done { .. })));
    server.shutdown();
}

#[test]
fn truncated_request_line_is_reported() {
    let server = start_server();
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).unwrap();
    use std::io::Write;
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"{\"op\":\"run_config\",\"id\":\"t\",\"ben")
        .unwrap();
    w.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    use std::io::Read;
    let mut buf = String::new();
    let mut r = stream.try_clone().unwrap();
    r.read_to_string(&mut buf).unwrap();
    let resp = Response::parse(buf.trim()).unwrap();
    match resp {
        Response::Error { message, .. } => assert!(message.contains("truncated"), "{message}"),
        other => panic!("expected truncation error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_simulation() {
    let server = start_server();
    let addr = server.local_addr();
    const CLIENTS: usize = 10;
    let window = 800;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let responses = client
                    .request(&phase_request(&format!("c{c}"), "gzip", window))
                    .unwrap();
                assert_eq!(responses.len(), 2, "one result + done");
                match &responses[0] {
                    Response::Result { runtime_ns, id, .. } => {
                        assert_eq!(id, &format!("c{c}"));
                        *runtime_ns
                    }
                    other => panic!("expected result, got {other:?}"),
                }
            })
        })
        .collect();
    let runtimes: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        runtimes.windows(2).all(|w| w[0] == w[1]),
        "all clients must see the identical deterministic runtime: {runtimes:?}"
    );
    // Ten clients, one distinct configuration: exactly one simulation
    // ran; everyone else was served by batching dedupe or the cache.
    assert_eq!(server.simulated_count(), 1);

    // And the status op agrees.
    let mut client = Client::connect(addr).unwrap();
    let responses = client
        .request(&Request {
            id: "st".into(),
            kind: RequestKind::Status,
        })
        .unwrap();
    match &responses[0] {
        Response::Status { counters, .. } => {
            let get = |name: &str| {
                counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("missing counter {name}"))
            };
            assert_eq!(get("simulated"), 1.0);
            assert!(get("requests") >= CLIENTS as f64);
            assert!(get("workers") >= 1.0);
        }
        other => panic!("expected status, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn server_results_bit_identical_to_direct_runs() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let window = 1_500;

    // Through the server.
    let responses = client
        .request(&phase_request("d1", "apsi", window))
        .unwrap();
    let served = match &responses[0] {
        Response::Result { runtime_ns, .. } => *runtime_ns,
        other => panic!("expected result, got {other:?}"),
    };

    // Directly through the simulator (what Explorer sweeps execute).
    let spec = suite::by_name("apsi").unwrap();
    let direct = Simulator::new(
        MachineConfig::phase_adaptive(McdConfig::smallest())
            .with_control(ControlPolicy::PaperArgmin),
    )
    .run(&mut spec.stream(), window)
    .runtime_ns();

    assert_eq!(
        served.to_bits(),
        direct.to_bits(),
        "server path must be bit-identical to the direct path"
    );
    server.shutdown();
}

#[test]
fn sweep_streams_every_config_and_policy_compare_runs() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let responses = client
        .request(&Request {
            id: "sw".into(),
            kind: RequestKind::Sweep {
                bench: "adpcm_encode".into(),
                mode: "prog".into(),
                window: 200,
            },
        })
        .unwrap();
    assert_eq!(responses.len(), 257, "256 results + done");
    assert!(matches!(
        responses.last(),
        Some(Response::Done { results: 256, .. })
    ));
    let mut keys: Vec<&str> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Result { key, .. } => Some(key.as_str()),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), 256, "every configuration exactly once");

    let responses = client
        .request(&Request {
            id: "pc".into(),
            kind: RequestKind::PolicyCompare {
                bench: "adpcm_encode".into(),
                policies: vec![ControlPolicy::PaperArgmin, ControlPolicy::Static],
                window: 200,
            },
        })
        .unwrap();
    assert_eq!(responses.len(), 3, "two results + done");
    server.shutdown();
}

#[test]
fn repeat_requests_are_served_from_cache() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let req = phase_request("r1", "art", 600);
    let first = client.request(&req).unwrap();
    let again = client.request(&phase_request("r2", "art", 600)).unwrap();
    let (a, cached_a) = match &first[0] {
        Response::Result {
            runtime_ns, cached, ..
        } => (*runtime_ns, *cached),
        other => panic!("{other:?}"),
    };
    let (b, cached_b) = match &again[0] {
        Response::Result {
            runtime_ns, cached, ..
        } => (*runtime_ns, *cached),
        other => panic!("{other:?}"),
    };
    assert_eq!(a, b);
    assert!(!cached_a, "first request simulates");
    assert!(cached_b, "repeat is a cache hit");
    assert_eq!(server.simulated_count(), 1);
    server.shutdown();
}

#[test]
fn clean_shutdown_completes_in_flight_work() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // A whole program-adaptive sweep is in flight when shutdown begins.
    client
        .send(&Request {
            id: "inflight".into(),
            kind: RequestKind::Sweep {
                bench: "gzip".into(),
                mode: "prog".into(),
                window: 150,
            },
        })
        .unwrap();
    // Wait for the batch to start streaming, then shut down mid-stream.
    let first = client.read_response().unwrap();
    assert!(matches!(first, Response::Result { .. }));
    let shutdown_handle = std::thread::spawn(move || server.shutdown());
    let mut results = 1u64;
    loop {
        match client.read_response().unwrap() {
            Response::Result { .. } => results += 1,
            Response::Done { results: n, .. } => {
                assert_eq!(n, 256);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(results, 256, "every in-flight result was delivered");
    shutdown_handle.join().unwrap();
}
